//! Adaptivity: ACT learning *new code* online (the §II-C / Table VI
//! story). A kernel is extended with a function absent from training; ACT,
//! deployed with the old weights, flags the new code's dependences at
//! first, flips into online training, learns them, and patches the updated
//! weights back — so subsequent runs are quiet again. When the new code
//! carries an injected bug, the bug still surfaces in the debug buffer.
//!
//! Run with `cargo run --release -p act-bench --example adaptivity`.

use act_bench::{act_cfg_for, machine_cfg, train_workload};
use act_core::diagnosis::run_with_act;
use act_core::weights::shared;
use act_workloads::registry;
use act_workloads::spec::Params;

fn main() {
    let w = registry::by_name("lu:touch_a").expect("injected workload exists");
    let mut cfg = act_cfg_for(w.as_ref());
    // These runs make only a couple hundred predictions each; check the
    // misprediction rate often enough that the testing→training flip can
    // happen within a run.
    cfg.check_interval = 10;

    // Train on the base program (no `touch_a` yet).
    let trained = train_workload(w.as_ref(), 10, &cfg);
    let store = shared(trained.store.clone());
    println!("trained on the base program; topology {}", trained.report.topology);

    // Deploy on the extended program. The first runs see never-trained
    // dependences from `touch_a`; online training absorbs them and the
    // improved weights persist in the store (binary patching).
    for round in 0..4u64 {
        let built = w.build(&Params { seed: 50 + round, new_code: true, ..w.default_params() });
        let run = run_with_act(&built.program, machine_cfg(50 + round), &cfg, &store);
        let flagged: u64 = run.module_stats.iter().map(|s| s.invalids).sum();
        let learned: u64 = run.module_stats.iter().map(|s| s.train_updates).sum();
        println!(
            "run {}: {} — {} sequences flagged, {} online weight updates",
            round + 1,
            run.outcome,
            flagged,
            learned
        );
    }

    // Now the injected bug triggers; despite the adaptation so far, the
    // buggy read still lands in the debug buffer. (Run many more adaptation
    // rounds and it eventually would not: §III-C's online training treats
    // every dependence as correct, and the paper accepts that an invalid
    // one may be absorbed — "some of them might, in fact, be invalid".)
    let built = w.build(&Params { seed: 99, new_code: true, ..w.default_params().triggered() });
    let run = run_with_act(&built.program, machine_cfg(99), &cfg, &store);
    let bug = built.bug.as_ref().unwrap();
    println!("triggered run: {}", run.outcome);
    match run.debug_position_where(|e| bug.matches_any(&e.deps)) {
        Some(pos) => println!("injected bug found in the debug buffer at position {pos}"),
        None => println!("injected bug not captured"),
    }
}
