//! Concurrency-bug diagnosis: the motivating scenario from the paper's
//! introduction — an atomicity violation (the Fig 2(c) pattern modeled on
//! Apache's ref-counted-buffer bug) and an order violation (PBZip2's
//! premature queue teardown), each diagnosed from a *single* production
//! failure.
//!
//! Run with `cargo run --release -p act-bench --example concurrency_diagnosis`.

use act_bench::{act_cfg_for, collect_clean_traces, find_act_failure, train_workload};
use act_core::diagnosis::diagnose;
use act_core::weights::shared;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::registry;

fn diagnose_one(name: &str) {
    println!("==== {name} ====");
    let w = registry::by_name(name).expect("workload exists");
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), 10, &cfg);
    let store = shared(trained.store.clone());

    let failure = find_act_failure(w.as_ref(), &store, &cfg, 20).expect("failure manifests");
    println!("failure: {}", failure.run.outcome);
    println!(
        "retirement stalls from the NN input FIFO: {} cycles",
        failure.run.machine_stats.total_attach_stalls()
    );

    let mut set = CorrectSet::default();
    for t in collect_clean_traces(w.as_ref(), 100..120) {
        for s in positive_sequences(&observed_deps(&t), trained.report.seq_len) {
            set.insert(&s.deps);
        }
    }
    let diag = diagnose(&failure.run, &set);
    let program = &failure.built.program;
    let bug = failure.built.bug.as_ref().unwrap();
    println!("bug class: {:?} — {}", bug.class, bug.description);
    for (i, cand) in diag.ranked.iter().take(3).enumerate() {
        let text: Vec<String> = cand
            .deps
            .iter()
            .map(|d| {
                format!("{}->{}", program.describe_pc(d.store_pc), program.describe_pc(d.load_pc))
            })
            .collect();
        let hit = if bug.matches_any(&cand.deps) { "  <-- root cause" } else { "" };
        println!("  rank {}: [{}]{hit}", i + 1, text.join(", "));
    }
    println!();
}

fn main() {
    diagnose_one("apache");
    diagnose_one("pbzip2");
}
