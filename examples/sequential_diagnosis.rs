//! Sequential-bug diagnosis: ACT is not limited to concurrency bugs. This
//! example diagnoses the paper's gzip semantic bug (Fig 2(d): a stale file
//! descriptor when `-` appears mid-input) and the ptx buffer overflow
//! (Fig 2(e): odd trailing backslashes walk off the buffer) — bugs the
//! Aviso-style baseline cannot see at all because they produce no
//! inter-thread events.
//!
//! Run with `cargo run --release -p act-bench --example sequential_diagnosis`.

use act_bench::{
    act_cfg_for, aviso_diagnose, collect_clean_traces, find_act_failure, train_workload,
};
use act_core::diagnosis::diagnose;
use act_core::weights::shared;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::registry;

fn main() {
    for name in ["gzip", "ptx"] {
        println!("==== {name} ====");
        let w = registry::by_name(name).expect("workload exists");
        let cfg = act_cfg_for(w.as_ref());
        let trained = train_workload(w.as_ref(), 10, &cfg);
        let store = shared(trained.store.clone());

        let failure = find_act_failure(w.as_ref(), &store, &cfg, 20).expect("bug triggers");
        println!(
            "failure: {} (expected {:?}, got {:?})",
            failure.run.outcome,
            failure.built.expected_output,
            failure.run.outcome.output()
        );

        let mut set = CorrectSet::default();
        for t in collect_clean_traces(w.as_ref(), 100..120) {
            for s in positive_sequences(&observed_deps(&t), trained.report.seq_len) {
                set.insert(&s.deps);
            }
        }
        let diag = diagnose(&failure.run, &set);
        let bug = failure.built.bug.as_ref().unwrap();
        let program = &failure.built.program;
        match diag.rank_where(|s| bug.matches_any(&s.deps)) {
            Some(rank) => {
                let cand = &diag.ranked[rank - 1];
                let text: Vec<String> = cand
                    .deps
                    .iter()
                    .map(|d| {
                        format!(
                            "{}->{}",
                            program.describe_pc(d.store_pc),
                            program.describe_pc(d.load_pc)
                        )
                    })
                    .collect();
                println!("ACT rank {rank}: [{}]", text.join(", "));
            }
            None => println!("ACT did not rank the root cause"),
        }
        // Aviso cannot handle sequential bugs by construction.
        assert!(aviso_diagnose(w.as_ref(), 3).is_none());
        println!("Aviso: not applicable (no inter-thread events)\n");
    }
}
