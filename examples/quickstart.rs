//! Quickstart: the full ACT loop on one real bug.
//!
//! 1. Train ACT offline from traces of correct runs.
//! 2. Run production with ACT modules attached until the bug bites.
//! 3. Diagnose from the debug buffer — without reproducing the failure.
//!
//! Run with `cargo run --release -p act-bench --example quickstart`.

use act_bench::{act_cfg_for, find_act_failure, train_workload};
use act_core::diagnosis::diagnose;
use act_core::weights::shared;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::registry;

fn main() {
    let workload = registry::by_name("apache").expect("apache workload exists");
    let cfg = act_cfg_for(workload.as_ref());

    // 1. Offline training on 10 correct executions.
    println!("training ACT on correct runs of `{}`...", workload.name());
    let trained = train_workload(workload.as_ref(), 10, &cfg);
    println!(
        "  topology {} over {}-dependence sequences; held-out FP {:.2}%",
        trained.report.topology,
        trained.report.seq_len,
        100.0 * trained.report.test_fp_rate
    );

    // 2. Production: run the triggering configuration until it fails.
    let store = shared(trained.store.clone());
    let failure = find_act_failure(workload.as_ref(), &store, &cfg, 20)
        .expect("the bug manifests within a few runs");
    println!("production failure: {}", failure.run.outcome);
    println!("  debug buffer holds {} flagged sequence(s)", failure.run.debug.len());

    // 3. Postprocess: Correct Set from fresh correct runs, prune, rank.
    let traces = act_bench::collect_clean_traces(workload.as_ref(), 100..120);
    let mut set = CorrectSet::default();
    for t in &traces {
        for s in positive_sequences(&observed_deps(t), trained.report.seq_len) {
            set.insert(&s.deps);
        }
    }
    let diag = diagnose(&failure.run, &set);
    println!("diagnosis ({} candidates after pruning {}):", diag.ranked.len(), diag.pruned);
    let program = &failure.built.program;
    for (i, cand) in diag.ranked.iter().take(5).enumerate() {
        let names: Vec<String> = cand
            .deps
            .iter()
            .map(|d| {
                format!(
                    "{} -> {}{}",
                    program.describe_pc(d.store_pc),
                    program.describe_pc(d.load_pc),
                    if d.inter_thread { " (inter-thread)" } else { "" }
                )
            })
            .collect();
        println!("  #{}: [{}]  (nn output {:.3})", i + 1, names.join(", "), cand.output);
    }
    let bug = failure.built.bug.as_ref().unwrap();
    match diag.rank_where(|s| bug.matches_any(&s.deps)) {
        Some(rank) => println!("ground-truth root cause found at rank {rank}"),
        None => println!("ground-truth root cause NOT in the ranking"),
    }
}
