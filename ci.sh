#!/bin/sh
# Tier-1 verification — everything here must pass fully offline (the
# workspace has zero registry dependencies; see DESIGN.md §6).
set -eux

cargo fmt --all --check
cargo build --release
cargo test -q --release

# Hot-path benchmark: quick suite must run, and the artifact must exist
# and parse against the schema (DESIGN.md §7). Numbers are not gated here
# (CI hosts are too noisy); the trajectory lives in BENCH_hotpath.json.
cargo run --release -p act-bench --bin perf -- --quick \
    --baseline BENCH_baseline.json --out BENCH_hotpath.quick.json
test -s BENCH_hotpath.quick.json
cargo run --release -p act-bench --bin perf -- --validate BENCH_hotpath.quick.json
cargo run --release -p act-bench --bin perf -- --validate BENCH_hotpath.json

# Observability overhead: the obs-instrumented classify bench must run on
# its own (exercises --only and the act-obs hot path). The <3% budget is
# gated on the reference host, not here (CI hosts are too noisy).
cargo run --release -p act-bench --bin perf -- --quick --only obs_classify \
    --out BENCH_obs.quick.json
test -s BENCH_obs.quick.json

# Daemon smoke test: boot act-serve on loopback, train + diagnose over the
# wire, assert the ranked suspect list is non-empty, shut down cleanly.
ACT=target/release/act
ADDR=127.0.0.1:7461
"$ACT" serve --addr "$ADDR" --workers 2 --queue-depth 8 \
    --event-log act-serve-events.jsonl &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
sleep 1
"$ACT" request train seq --addr "$ADDR" | grep "trained seq"
"$ACT" request diagnose seq --addr "$ADDR" | tee /tmp/act-smoke-diagnosis.txt
grep "^diagnosis workload=seq" /tmp/act-smoke-diagnosis.txt
grep "^#1 " /tmp/act-smoke-diagnosis.txt
"$ACT" request status --addr "$ADDR" | tee /tmp/act-smoke-status.txt
grep "cache_hits 1" /tmp/act-smoke-status.txt
# STATUS v2: the metrics table rides along with the legacy counter block.
grep -- "-- metrics --" /tmp/act-smoke-status.txt
grep "cache_hit_rate" /tmp/act-smoke-status.txt
grep "req_diagnose" /tmp/act-smoke-status.txt
grep "service_us" /tmp/act-smoke-status.txt
"$ACT" request shutdown --addr "$ADDR"
wait "$SERVE_PID"
trap - EXIT

# The event log is valid JSONL and recorded the daemon lifecycle.
test -s act-serve-events.jsonl
grep '"target":"serve.start"' act-serve-events.jsonl
grep '"target":"serve.shutdown"' act-serve-events.jsonl
