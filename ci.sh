#!/bin/sh
# Tier-1 verification — everything here must pass fully offline (the
# workspace has zero registry dependencies; see DESIGN.md §6).
set -eux

cargo fmt --all --check
cargo build --release
cargo test -q --release
