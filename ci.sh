#!/bin/sh
# Tier-1 verification — everything here must pass fully offline (the
# workspace has zero registry dependencies; see DESIGN.md §6).
set -eux

cargo fmt --all --check
cargo build --release
cargo test -q --release

# Hot-path benchmark: quick suite must run, and the artifact must exist
# and parse against the schema (DESIGN.md §7). Numbers are not gated here
# (CI hosts are too noisy); the trajectory lives in BENCH_hotpath.json.
cargo run --release -p act-bench --bin perf -- --quick \
    --baseline BENCH_baseline.json --out BENCH_hotpath.quick.json
test -s BENCH_hotpath.quick.json
cargo run --release -p act-bench --bin perf -- --validate BENCH_hotpath.quick.json
cargo run --release -p act-bench --bin perf -- --validate BENCH_hotpath.json

# Perf gate: the batched hot path must not regress. The verdict is
# restricted to the two headline benches (classify kernel throughput and
# coalesced diagnose rps) at 10% against the committed reference numbers,
# and because one run can land in a transient slow regime on a shared
# host, the gate gets three attempts — a real regression fails all three.
gate_ok=0
for gate_attempt in 1 2 3; do
    if cargo run --release -p act-bench --bin perf -- --quick \
        --only classify_predictions,batched_diagnose \
        --gate BENCH_hotpath.json --gate-pct 10 \
        --gate-bench classify_predictions_per_sec,batched_diagnose_rps \
        --out BENCH_gate.quick.json; then
        gate_ok=1
        break
    fi
done
test "$gate_ok" = 1

# Observability overhead: the obs-instrumented classify bench must run on
# its own (exercises --only and the act-obs hot path). The <3% budget is
# gated on the reference host, not here (CI hosts are too noisy).
cargo run --release -p act-bench --bin perf -- --quick --only obs_classify \
    --out BENCH_obs.quick.json
test -s BENCH_obs.quick.json

# Corpus store: the codec benches must run, and a CLI round trip through a
# real corpus must be lossless (DESIGN.md §9).
cargo run --release -p act-bench --bin perf -- --quick --only store_ \
    --out BENCH_store.quick.json
test -s BENCH_store.quick.json
STORE_DIR=$(mktemp -d)
target/release/act store init "$STORE_DIR/corpus"
target/release/act store put "$STORE_DIR/corpus" seq --runs 2 | grep "2 correct-run traces"
target/release/act store ls "$STORE_DIR/corpus" | grep "seq-0"
target/release/act store stat "$STORE_DIR/corpus" | grep "live entries"
target/release/act store get "$STORE_DIR/corpus" seq-0 --out "$STORE_DIR/seq-0.trace"
target/release/act store put "$STORE_DIR/corpus" seq \
    --trace "$STORE_DIR/seq-0.trace" --key seq-copy
target/release/act store get "$STORE_DIR/corpus" seq-copy --out "$STORE_DIR/back.trace"
cmp "$STORE_DIR/seq-0.trace" "$STORE_DIR/back.trace"
target/release/act store compact "$STORE_DIR/corpus" | grep "compacted"
rm -rf "$STORE_DIR"

# Daemon smoke test: boot act-serve on loopback, train + diagnose over the
# wire, assert the ranked suspect list is non-empty, shut down cleanly.
ACT=target/release/act
ADDR=127.0.0.1:7461
SERVE_CORPUS=$(mktemp -d)
"$ACT" serve --addr "$ADDR" --workers 2 --queue-depth 8 \
    --corpus "$SERVE_CORPUS/corpus" \
    --event-log act-serve-events.jsonl &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
sleep 1
"$ACT" request train seq --addr "$ADDR" | grep "trained seq"
# Corpus over the wire (protocol v3): ingest, read back losslessly.
"$ACT" trace seq --out "$SERVE_CORPUS/traces" --runs 1
"$ACT" request trace-put seq --addr "$ADDR" \
    --trace "$SERVE_CORPUS/traces/seq-0.trace" | grep "stored seq-0"
"$ACT" request trace-get --key seq-0 --addr "$ADDR" \
    --out "$SERVE_CORPUS/back.trace"
cmp "$SERVE_CORPUS/traces/seq-0.trace" "$SERVE_CORPUS/back.trace"
"$ACT" request diagnose seq --addr "$ADDR" | tee /tmp/act-smoke-diagnosis.txt
grep "^diagnosis workload=seq" /tmp/act-smoke-diagnosis.txt
grep "^#1 " /tmp/act-smoke-diagnosis.txt
"$ACT" request status --addr "$ADDR" | tee /tmp/act-smoke-status.txt
grep "cache_hits 1" /tmp/act-smoke-status.txt
# STATUS v2: the metrics table rides along with the legacy counter block.
grep -- "-- metrics --" /tmp/act-smoke-status.txt
grep "cache_hit_rate" /tmp/act-smoke-status.txt
grep "req_diagnose" /tmp/act-smoke-status.txt
grep "service_us" /tmp/act-smoke-status.txt
"$ACT" request shutdown --addr "$ADDR"
wait "$SERVE_PID"
trap - EXIT
rm -rf "$SERVE_CORPUS"

# The event log is valid JSONL and recorded the daemon lifecycle.
test -s act-serve-events.jsonl
grep '"target":"serve.start"' act-serve-events.jsonl
grep '"target":"serve.shutdown"' act-serve-events.jsonl

# Gateway smoke test: two backends behind act-gate, one killed mid-fleet.
# Requests keep succeeding through failover and STATUS aggregates what is
# left standing (DESIGN.md §10).
B1=127.0.0.1:7462
B2=127.0.0.1:7463
GATE=127.0.0.1:7464
"$ACT" serve --addr "$B1" --workers 2 --queue-depth 8 &
B1_PID=$!
"$ACT" serve --addr "$B2" --workers 2 --queue-depth 8 &
B2_PID=$!
"$ACT" gate --backends "$B1,$B2" --listen "$GATE" --workers 2 \
    --event-log act-gate-events.jsonl &
GATE_PID=$!
trap 'kill "$GATE_PID" "$B1_PID" "$B2_PID" 2>/dev/null || true' EXIT
sleep 1
# Models shard across the fleet; clients talk only to the gateway.
"$ACT" request train seq --addr "$GATE" | grep "trained seq"
"$ACT" request train seq --seed 1 --addr "$GATE" | grep "trained seq"
"$ACT" request status --addr "$GATE" | tee /tmp/act-gate-status.txt
grep "act-gate status" /tmp/act-gate-status.txt
grep "backends_up 2" /tmp/act-gate-status.txt
grep "replies_relayed 2" /tmp/act-gate-status.txt
grep "fleet_requests_served" /tmp/act-gate-status.txt
grep -- "-- backend 1 " /tmp/act-gate-status.txt
# Kill one backend; diagnosis must still succeed via the ring neighbor.
kill "$B2_PID"
wait "$B2_PID" || true
"$ACT" request diagnose seq --addr "$GATE" | tee /tmp/act-gate-diagnosis.txt
grep "^diagnosis workload=seq" /tmp/act-gate-diagnosis.txt
grep "^#1 " /tmp/act-gate-diagnosis.txt
"$ACT" request status --addr "$GATE" | grep "backends_up 1"
"$ACT" request shutdown --addr "$GATE"
wait "$GATE_PID"
# The surviving backend outlives its gateway and drains on its own.
"$ACT" request status --addr "$B1" | grep "requests_served"
"$ACT" request shutdown --addr "$B1"
wait "$B1_PID"
trap - EXIT

# The gateway event log recorded the lifecycle and the mark-down.
test -s act-gate-events.jsonl
grep '"target":"gate.start"' act-gate-events.jsonl
grep '"target":"gate.down"' act-gate-events.jsonl
grep '"target":"gate.shutdown"' act-gate-events.jsonl

# Streaming ingest smoke (protocol v4): chunk a >64 MiB trace — too big
# for any one-shot frame — through gate -> serve -> store, then read it
# back from the corpus byte-for-byte (PROTOCOL.md, "Streaming uploads").
BIG_B=127.0.0.1:7465
BIG_GATE=127.0.0.1:7466
BIG_DIR=$(mktemp -d)
"$ACT" trace seq --out "$BIG_DIR/traces" --runs 1
# Inflate a canonical trace past the 64 MiB one-shot cap by repeating one
# store record; parse -> columnar encode -> re-serialize reproduces the
# lines verbatim, so the round trip below stays byte-exact.
cp "$BIG_DIR/traces/seq-0.trace" "$BIG_DIR/big.trace"
LINE=$(grep -m1 '^S ' "$BIG_DIR/big.trace")
yes "$LINE" | head -n 4500000 >> "$BIG_DIR/big.trace"
test "$(wc -c < "$BIG_DIR/big.trace")" -gt 67108864
"$ACT" serve --addr "$BIG_B" --workers 2 --queue-depth 8 \
    --corpus "$BIG_DIR/corpus" &
BIG_B_PID=$!
"$ACT" gate --backends "$BIG_B" --listen "$BIG_GATE" --workers 2 &
BIG_GATE_PID=$!
trap 'kill "$BIG_GATE_PID" "$BIG_B_PID" 2>/dev/null || true' EXIT
sleep 1
"$ACT" request trace-put seq --addr "$BIG_GATE" --stream \
    --trace "$BIG_DIR/big.trace" --key big | grep "stored big"
"$ACT" request shutdown --addr "$BIG_GATE"
wait "$BIG_GATE_PID"
"$ACT" request shutdown --addr "$BIG_B"
wait "$BIG_B_PID"
trap - EXIT
"$ACT" store get "$BIG_DIR/corpus" big --out "$BIG_DIR/back.trace"
cmp "$BIG_DIR/big.trace" "$BIG_DIR/back.trace"
rm -rf "$BIG_DIR"
