#!/bin/sh
# Tier-1 verification — everything here must pass fully offline (the
# workspace has zero registry dependencies; see DESIGN.md §6).
set -eux

cargo fmt --all --check
cargo build --release
cargo test -q --release

# Hot-path benchmark: quick suite must run, and the artifact must exist
# and parse against the schema (DESIGN.md §7). Numbers are not gated here
# (CI hosts are too noisy); the trajectory lives in BENCH_hotpath.json.
cargo run --release -p act-bench --bin perf -- --quick \
    --baseline BENCH_baseline.json --out BENCH_hotpath.quick.json
test -s BENCH_hotpath.quick.json
cargo run --release -p act-bench --bin perf -- --validate BENCH_hotpath.quick.json
cargo run --release -p act-bench --bin perf -- --validate BENCH_hotpath.json

# Daemon smoke test: boot act-serve on loopback, train + diagnose over the
# wire, assert the ranked suspect list is non-empty, shut down cleanly.
ACT=target/release/act
ADDR=127.0.0.1:7461
"$ACT" serve --addr "$ADDR" --workers 2 --queue-depth 8 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
sleep 1
"$ACT" request train seq --addr "$ADDR" | grep "trained seq"
"$ACT" request diagnose seq --addr "$ADDR" | tee /tmp/act-smoke-diagnosis.txt
grep "^diagnosis workload=seq" /tmp/act-smoke-diagnosis.txt
grep "^#1 " /tmp/act-smoke-diagnosis.txt
"$ACT" request status --addr "$ADDR" | grep "cache_hits 1"
"$ACT" request shutdown --addr "$ADDR"
wait "$SERVE_PID"
trap - EXIT
