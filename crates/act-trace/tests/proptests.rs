//! Property-based tests for trace analysis and input generation.

// Property suites are opt-in: run with `--features slow-tests` (they use
// the in-tree proptest shim, so they work offline too).
#![cfg(feature = "slow-tests")]

use act_sim::events::RawDep;
use act_trace::correct_set::CorrectSet;
use act_trace::event::{Trace, TraceKind, TraceRecord};
use act_trace::input_gen::{positive_sequences, sequences_ext};
use act_trace::raw::raw_deps;
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u32..3, 0u32..40, 0u64..16, any::<bool>()), 1..120).prop_map(|ops| {
        let records = ops
            .into_iter()
            .enumerate()
            .map(|(i, (tid, pc, slot, is_store))| TraceRecord {
                seq: i as u64,
                cycle: i as u64,
                tid,
                pc,
                kind: if is_store {
                    TraceKind::Store { addr: 0x2000 + slot * 8 }
                } else {
                    TraceKind::Load { addr: 0x2000 + slot * 8, dep: None }
                },
            })
            .collect();
        Trace { records, code_len: 64 }
    })
}

proptest! {
    /// Every dependence found by replay has a store earlier in the trace at
    /// the reported pc, and dependences are in load order.
    #[test]
    fn raw_deps_are_causal(trace in arb_trace()) {
        let deps = raw_deps(&trace);
        for w in deps.windows(2) {
            prop_assert!(w[0].seq <= w[1].seq);
        }
        for d in &deps {
            let store_exists = trace.records.iter().any(|r| {
                r.seq < d.seq
                    && r.pc == d.dep.store_pc
                    && matches!(r.kind, TraceKind::Store { .. })
            });
            prop_assert!(store_exists, "dep {} has no earlier store", d.dep);
        }
    }

    /// Window generation: every positive window is a contiguous per-thread
    /// subsequence, negatives never equal their positive counterpart, and
    /// all windows have exactly n entries.
    #[test]
    fn windows_are_well_formed(trace in arb_trace(), n in 1usize..4, cross in 0usize..3) {
        let deps = raw_deps(&trace);
        let (pos, neg) = sequences_ext(&deps, n, cross);
        for s in &pos {
            prop_assert_eq!(s.deps.len(), n);
        }
        let pos_set: std::collections::HashSet<_> = pos.iter().map(|s| s.deps.clone()).collect();
        for s in &neg {
            prop_assert_eq!(s.deps.len(), n);
        }
        // Per-thread counts: each thread with k deps yields max(0, k-n+1)
        // positive windows.
        let mut per_tid = std::collections::HashMap::new();
        for d in &deps {
            *per_tid.entry(d.tid).or_insert(0usize) += 1;
        }
        let expected: usize = per_tid.values().map(|k| k.saturating_sub(n - 1)).sum();
        prop_assert_eq!(pos.len(), expected);
        let _ = pos_set;
    }

    /// CorrectSet: members match fully; prefixes match at their length; and
    /// matched_prefix is monotone in sequence truncation.
    #[test]
    fn correct_set_prefix_semantics(
        seqs in prop::collection::vec(prop::collection::vec((0u32..20, 0u32..20), 3), 1..20)
    ) {
        let mut set = CorrectSet::default();
        let make = |v: &Vec<(u32, u32)>| -> Vec<RawDep> {
            v.iter().map(|&(s, l)| RawDep { store_pc: s, load_pc: l, inter_thread: false }).collect()
        };
        for s in &seqs {
            set.insert(&make(s));
        }
        for s in &seqs {
            let deps = make(s);
            prop_assert!(set.contains(&deps));
            prop_assert_eq!(set.matched_prefix(&deps), deps.len());
        }
    }

    /// positive_sequences is exactly the first element of sequences_ext.
    #[test]
    fn positive_sequences_consistent(trace in arb_trace(), n in 1usize..4) {
        let deps = raw_deps(&trace);
        prop_assert_eq!(positive_sequences(&deps, n), sequences_ext(&deps, n, 2).0);
    }
}

proptest! {
    /// Serialization round-trips arbitrary traces exactly.
    #[test]
    fn trace_io_round_trips(trace in arb_trace()) {
        let mut buf = Vec::new();
        act_trace::io::write_trace(&trace, &mut buf).unwrap();
        let back = act_trace::io::read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.code_len, trace.code_len);
        prop_assert_eq!(back.records, trace.records);
    }
}
