//! The PIN-tool substitute: an [`Observer`] that records an execution trace
//! from the simulator.

use crate::event::{Trace, TraceKind, TraceRecord};
use act_sim::attach::Observer;
use act_sim::events::{BranchEvent, LoadEvent, StoreEvent, ThreadId};

/// Collects a [`Trace`] from a simulated run.
///
/// Stack accesses (through SP/FP) are filtered out by default, matching the
/// paper's load filtering (§V); branches are recorded because the PBI
/// baseline samples branch outcomes.
///
/// # Examples
///
/// ```
/// use act_sim::asm::Asm;
/// use act_sim::config::MachineConfig;
/// use act_sim::isa::Reg;
/// use act_sim::machine::Machine;
/// use act_trace::collector::TraceCollector;
///
/// let mut a = Asm::new();
/// let buf = a.static_zeroed(1);
/// a.func("main");
/// a.imm(Reg(1), buf as i64);
/// a.store(Reg(1), Reg(1), 0);
/// a.load(Reg(2), Reg(1), 0);
/// a.halt();
/// let p = a.finish()?;
///
/// let mut collector = TraceCollector::new(p.code_len());
/// let mut m = Machine::new(&p, MachineConfig::default());
/// m.run_observed(&mut collector);
/// let trace = collector.into_trace();
/// assert_eq!(trace.access_count(), 2);
/// # Ok::<(), act_sim::asm::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct TraceCollector {
    trace: Trace,
    include_stack: bool,
    next_seq: u64,
}

impl TraceCollector {
    /// A collector for a program with `code_len` instructions.
    pub fn new(code_len: usize) -> Self {
        TraceCollector {
            trace: Trace { records: Vec::new(), code_len },
            include_stack: false,
            next_seq: 0,
        }
    }

    /// Also record stack accesses (off by default).
    pub fn include_stack(mut self, yes: bool) -> Self {
        self.include_stack = yes;
        self
    }

    /// Finish collection and take the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    fn push(&mut self, cycle: u64, tid: ThreadId, pc: u32, kind: TraceKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.trace.records.push(TraceRecord { seq, cycle, tid, pc, kind });
    }
}

impl Observer for TraceCollector {
    fn on_load(&mut self, ev: &LoadEvent) {
        if ev.stack_access && !self.include_stack {
            return;
        }
        self.push(ev.cycle, ev.tid, ev.pc, TraceKind::Load { addr: ev.addr, dep: ev.dep });
    }

    fn on_store(&mut self, ev: &StoreEvent) {
        if ev.stack_access && !self.include_stack {
            return;
        }
        self.push(ev.cycle, ev.tid, ev.pc, TraceKind::Store { addr: ev.addr });
    }

    fn on_branch(&mut self, ev: &BranchEvent) {
        self.push(ev.cycle, ev.tid, ev.pc, TraceKind::Branch { taken: ev.taken });
    }

    fn on_thread_start(&mut self, tid: ThreadId, cycle: u64) {
        self.push(cycle, tid, 0, TraceKind::ThreadStart);
    }

    fn on_thread_end(&mut self, tid: ThreadId, cycle: u64) {
        self.push(cycle, tid, 0, TraceKind::ThreadEnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::asm::Asm;
    use act_sim::config::MachineConfig;
    use act_sim::isa::{Reg, SP};
    use act_sim::machine::Machine;

    fn quiet() -> MachineConfig {
        MachineConfig { jitter_ppm: 0, ..Default::default() }
    }

    #[test]
    fn collects_accesses_branches_and_lifecycle() {
        let mut a = Asm::new();
        let buf = a.static_zeroed(1);
        a.func("main");
        a.imm(Reg(1), buf as i64);
        a.imm(Reg(2), 3);
        let top = a.label_here();
        a.store(Reg(2), Reg(1), 0);
        a.load(Reg(3), Reg(1), 0);
        a.alui(act_sim::isa::AluOp::Sub, Reg(2), Reg(2), 1);
        a.bnz(Reg(2), top);
        a.halt();
        let p = a.finish().unwrap();

        let mut c = TraceCollector::new(p.code_len());
        let mut m = Machine::new(&p, quiet());
        assert!(m.run_observed(&mut c).completed());
        let trace = c.into_trace();
        assert_eq!(trace.access_count(), 6); // 3 iterations × (store + load)
        let branches =
            trace.records.iter().filter(|r| matches!(r.kind, TraceKind::Branch { .. })).count();
        assert_eq!(branches, 3);
        let starts =
            trace.records.iter().filter(|r| matches!(r.kind, TraceKind::ThreadStart)).count();
        assert_eq!(starts, 1);
        // Records are in sequence order.
        assert!(trace.records.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn stack_accesses_filtered_by_default() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(Reg(1), 5);
        a.store(Reg(1), SP, -8);
        a.load(Reg(2), SP, -8);
        a.halt();
        let p = a.finish().unwrap();

        let mut c = TraceCollector::new(p.code_len());
        let mut m = Machine::new(&p, quiet());
        m.run_observed(&mut c);
        assert_eq!(c.into_trace().access_count(), 0);

        let mut c = TraceCollector::new(p.code_len()).include_stack(true);
        let mut m = Machine::new(&p, quiet());
        m.run_observed(&mut c);
        assert_eq!(c.into_trace().access_count(), 2);
    }
}
