//! # act-trace — trace collection and RAW-dependence input generation
//!
//! The offline half of ACT's data path, replacing the paper's PIN tool and
//! trace analysis scripts:
//!
//! * [`collector`] — an [`act_sim::Observer`] that records executions as
//!   [`event::Trace`]s (memory accesses, branches, thread lifecycle).
//! * [`raw`] — precise RAW dependence formation by last-writer replay,
//!   including the previous-writer context needed to synthesize negative
//!   (invalid) examples.
//! * [`input_gen`] — the Input Generator: per-thread windows of `N`
//!   consecutive dependences, positive and negative.
//! * [`correct_set`] — the Correct Set used by offline postprocessing to
//!   prune the debug buffer and count matched dependences for ranking.
//! * [`io`] — text (de)serialization so traces can be archived and shipped
//!   like the paper's PIN trace files.

pub mod collector;
pub mod correct_set;
pub mod event;
pub mod input_gen;
pub mod io;
pub mod raw;

pub use collector::TraceCollector;
pub use correct_set::CorrectSet;
pub use event::{Trace, TraceKind, TraceRecord};
pub use input_gen::{sequences, SeqSample};
pub use raw::{raw_deps, DepEvent};
