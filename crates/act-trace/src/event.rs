//! Trace records: the offline-analysis view of an execution, equivalent to
//! what the paper collects with a PIN tool (a sequence of memory-access
//! instructions with their addresses, plus thread lifecycle and branches).

use act_sim::events::{RawDep, ThreadId};
use act_sim::isa::{Addr, Pc};

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A load of the word at `addr`.
    Load {
        /// Byte address read.
        addr: Addr,
        /// The dependence the *hardware* formed from cache-line metadata,
        /// if it was available (`None` when the metadata was lost to
        /// eviction or a clean transfer — §V's relaxations). ACT's offline
        /// analyses use this observed stream so that training, the Correct
        /// Set, and the online module all see the same dependences.
        dep: Option<RawDep>,
    },
    /// A store to the word at `addr`.
    Store {
        /// Byte address written.
        addr: Addr,
    },
    /// A conditional branch with its outcome.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
    /// Thread creation.
    ThreadStart,
    /// Thread termination.
    ThreadEnd,
}

/// One record in an execution trace, in global functional order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global sequence number (functional/dispatch order across cores).
    pub seq: u64,
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// Thread that executed the instruction.
    pub tid: ThreadId,
    /// Instruction address (0 for thread lifecycle records).
    pub pc: Pc,
    /// The event payload.
    pub kind: TraceKind,
}

/// A full execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Records in global functional order.
    pub records: Vec<TraceRecord>,
    /// Instruction count of the traced program (for PC normalization).
    pub code_len: usize,
}

impl Trace {
    /// Iterate records in global functional order (the streaming-encode
    /// entry point: sinks consume this without cloning the trace).
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Number of records of any kind.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of memory-access records.
    pub fn access_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::Load { .. } | TraceKind::Store { .. }))
            .count()
    }

    /// Thread ids appearing in the trace, ascending.
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        let mut ids: Vec<ThreadId> = self.records.iter().map(|r| r.tid).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, tid: ThreadId, kind: TraceKind) -> TraceRecord {
        TraceRecord { seq, cycle: seq, tid, pc: 0, kind }
    }

    #[test]
    fn access_count_ignores_branches() {
        let t = Trace {
            records: vec![
                rec(0, 0, TraceKind::Load { addr: 8, dep: None }),
                rec(1, 0, TraceKind::Branch { taken: true }),
                rec(2, 1, TraceKind::Store { addr: 16 }),
            ],
            code_len: 10,
        };
        assert_eq!(t.access_count(), 2);
    }

    #[test]
    fn thread_ids_deduplicated_sorted() {
        let t = Trace {
            records: vec![
                rec(0, 2, TraceKind::Load { addr: 8, dep: None }),
                rec(1, 0, TraceKind::Load { addr: 8, dep: None }),
                rec(2, 2, TraceKind::Load { addr: 8, dep: None }),
            ],
            code_len: 10,
        };
        assert_eq!(t.thread_ids(), vec![0, 2]);
    }
}
