//! RAW dependence formation from execution traces.
//!
//! This is the offline, *precise* analysis: a last-writer map over word
//! addresses replayed in trace order. (Online, the hardware's cache-metadata
//! version of the same information is lossy per the paper's §V relaxations;
//! offline traces are what the input generator and the Correct Set use.)
//!
//! For negative-example synthesis the analysis also keeps the *previous*
//! writer of each word: the paper forms an invalid dependence `S' -> L`
//! where `S'` is "the store before the last store to the same address".

use crate::event::{Trace, TraceKind};
use act_sim::events::{RawDep, ThreadId};
use act_sim::isa::Pc;
use std::collections::HashMap;

/// A RAW dependence occurrence in a trace, with enough context to build
/// positive and negative training examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEvent {
    /// The (valid) dependence that occurred.
    pub dep: RawDep,
    /// Thread that executed the load (the dependence's owner).
    pub tid: ThreadId,
    /// Global sequence number of the load.
    pub seq: u64,
    /// The writer *before* the last writer of the word, if any — the store
    /// `S'` used to synthesize a negative example.
    pub prev_writer: Option<(Pc, ThreadId)>,
}

impl DepEvent {
    /// The synthesized invalid dependence `S' -> L`, if a previous writer
    /// exists and differs from the actual one.
    pub fn negative(&self) -> Option<RawDep> {
        let (pc, tid) = self.prev_writer?;
        let neg = RawDep { store_pc: pc, load_pc: self.dep.load_pc, inter_thread: tid != self.tid };
        (neg != self.dep).then_some(neg)
    }
}

/// Extract all RAW dependences from a trace, in load order.
///
/// Loads of words with no recorded writer form no dependence (e.g. reads of
/// program inputs preloaded into the data segment), exactly like loads whose
/// metadata was lost online.
pub fn raw_deps(trace: &Trace) -> Vec<DepEvent> {
    // addr -> (last_writer, previous_writer)
    let mut writers: HashMap<u64, ((Pc, ThreadId), Option<(Pc, ThreadId)>)> = HashMap::new();
    let mut out = Vec::new();
    for r in &trace.records {
        match r.kind {
            TraceKind::Store { addr } => {
                let entry = writers.entry(addr);
                match entry {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        let (last, _) = *o.get();
                        *o.get_mut() = ((r.pc, r.tid), Some(last));
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(((r.pc, r.tid), None));
                    }
                }
            }
            TraceKind::Load { addr, .. } => {
                if let Some(&((wpc, wtid), prev)) = writers.get(&addr) {
                    out.push(DepEvent {
                        dep: RawDep { store_pc: wpc, load_pc: r.pc, inter_thread: wtid != r.tid },
                        tid: r.tid,
                        seq: r.seq,
                        prev_writer: prev,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Extract the dependences the *hardware observed* (recorded per load from
/// cache-line metadata), in load order. This is the stream ACT's offline
/// training and Correct Set must use so that they see exactly what the
/// online module sees — the precise replay of [`raw_deps`] would include
/// dependences whose metadata the cache lost.
///
/// The previous-writer context (for negative-example synthesis) still comes
/// from the precise replay: the hardware keeps only one writer per word,
/// which is why the paper synthesizes negatives offline only.
pub fn observed_deps(trace: &Trace) -> Vec<DepEvent> {
    let mut writers: HashMap<u64, ((Pc, ThreadId), Option<(Pc, ThreadId)>)> = HashMap::new();
    let mut out = Vec::new();
    for r in &trace.records {
        match r.kind {
            TraceKind::Store { addr } => match writers.entry(addr) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let (last, _) = *o.get();
                    *o.get_mut() = ((r.pc, r.tid), Some(last));
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(((r.pc, r.tid), None));
                }
            },
            TraceKind::Load { addr, dep: Some(dep) } => {
                let prev = writers.get(&addr).and_then(|&(_, prev)| prev);
                out.push(DepEvent { dep, tid: r.tid, seq: r.seq, prev_writer: prev });
            }
            _ => {}
        }
    }
    out
}

/// The set of distinct dependences in a trace (for Table IV's "# RAW dep"
/// column).
pub fn distinct_deps(deps: &[DepEvent]) -> usize {
    let mut set: Vec<RawDep> = deps.iter().map(|d| d.dep).collect();
    set.sort_unstable();
    set.dedup();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceRecord;

    fn store(seq: u64, tid: ThreadId, pc: Pc, addr: u64) -> TraceRecord {
        TraceRecord { seq, cycle: seq, tid, pc, kind: TraceKind::Store { addr } }
    }

    fn load(seq: u64, tid: ThreadId, pc: Pc, addr: u64) -> TraceRecord {
        TraceRecord { seq, cycle: seq, tid, pc, kind: TraceKind::Load { addr, dep: None } }
    }

    #[test]
    fn load_after_store_forms_dep() {
        let t =
            Trace { records: vec![store(0, 0, 5, 0x2000), load(1, 0, 9, 0x2000)], code_len: 10 };
        let deps = raw_deps(&t);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].dep, RawDep { store_pc: 5, load_pc: 9, inter_thread: false });
        assert_eq!(deps[0].prev_writer, None);
        assert_eq!(deps[0].negative(), None);
    }

    #[test]
    fn inter_thread_flag_set_when_tids_differ() {
        let t =
            Trace { records: vec![store(0, 1, 5, 0x2000), load(1, 0, 9, 0x2000)], code_len: 10 };
        let deps = raw_deps(&t);
        assert!(deps[0].dep.inter_thread);
    }

    #[test]
    fn load_without_writer_forms_no_dep() {
        let t = Trace { records: vec![load(0, 0, 9, 0x2000)], code_len: 10 };
        assert!(raw_deps(&t).is_empty());
    }

    #[test]
    fn previous_writer_enables_negative_example() {
        let t = Trace {
            records: vec![store(0, 0, 3, 0x2000), store(1, 0, 5, 0x2000), load(2, 0, 9, 0x2000)],
            code_len: 10,
        };
        let deps = raw_deps(&t);
        assert_eq!(deps[0].dep.store_pc, 5);
        assert_eq!(deps[0].prev_writer, Some((3, 0)));
        assert_eq!(
            deps[0].negative(),
            Some(RawDep { store_pc: 3, load_pc: 9, inter_thread: false })
        );
    }

    #[test]
    fn negative_none_when_same_dep() {
        // Previous writer is the same pc/tid (a loop re-storing): synthesized
        // negative would equal the positive, so it is suppressed.
        let t = Trace {
            records: vec![store(0, 0, 5, 0x2000), store(1, 0, 5, 0x2000), load(2, 0, 9, 0x2000)],
            code_len: 10,
        };
        let deps = raw_deps(&t);
        assert_eq!(deps[0].negative(), None);
    }

    #[test]
    fn writers_tracked_per_address() {
        let t = Trace {
            records: vec![
                store(0, 0, 3, 0x2000),
                store(1, 0, 4, 0x3000),
                load(2, 0, 9, 0x2000),
                load(3, 0, 10, 0x3000),
            ],
            code_len: 12,
        };
        let deps = raw_deps(&t);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].dep.store_pc, 3);
        assert_eq!(deps[1].dep.store_pc, 4);
        assert_eq!(distinct_deps(&deps), 2);
    }

    #[test]
    fn distinct_deps_deduplicates() {
        let t = Trace {
            records: vec![store(0, 0, 3, 0x2000), load(1, 0, 9, 0x2000), load(2, 0, 9, 0x2000)],
            code_len: 10,
        };
        let deps = raw_deps(&t);
        assert_eq!(deps.len(), 2);
        assert_eq!(distinct_deps(&deps), 1);
    }
}
