//! The Correct Set (§III-D): dependence sequences observed in correct
//! executions, used by offline postprocessing to prune and rank the debug
//! buffer.

use crate::input_gen::SeqSample;
use act_sim::events::RawDep;
use std::collections::HashSet;

/// The set of dependence sequences seen in correct runs, with prefix
/// indexing for the ranking step's matched-dependence count.
#[derive(Debug, Clone, Default)]
pub struct CorrectSet {
    /// Full sequences of length `n`.
    full: HashSet<Vec<RawDep>>,
    /// Every proper prefix (lengths `1..n`) of every member.
    prefixes: HashSet<Vec<RawDep>>,
    n: usize,
}

impl CorrectSet {
    /// Build from positive samples (all must have the same length).
    pub fn from_samples<'a, I>(samples: I) -> Self
    where
        I: IntoIterator<Item = &'a SeqSample>,
    {
        let mut set = CorrectSet::default();
        for s in samples {
            set.insert(&s.deps);
        }
        set
    }

    /// Build from whole correct-run traces, e.g. streamed out of an
    /// `act-store` corpus. Each trace contributes the positive dependence
    /// windows of length `n` that the Input Generator would emit, using the
    /// *observed* dependence stream (what the hardware saw), so the set
    /// matches what online classification is scored against.
    pub fn from_corpus<I>(traces: I, n: usize) -> Self
    where
        I: IntoIterator<Item = crate::event::Trace>,
    {
        let mut set = CorrectSet::default();
        for trace in traces {
            let deps = crate::raw::observed_deps(&trace);
            for s in crate::input_gen::positive_sequences(&deps, n) {
                set.insert(&s.deps);
            }
        }
        set
    }

    /// Insert one sequence.
    ///
    /// # Panics
    ///
    /// Panics if sequences of different lengths are mixed.
    pub fn insert(&mut self, deps: &[RawDep]) {
        if self.n == 0 {
            self.n = deps.len();
        }
        assert_eq!(deps.len(), self.n, "mixed sequence lengths in CorrectSet");
        for k in 1..deps.len() {
            self.prefixes.insert(deps[..k].to_vec());
        }
        self.full.insert(deps.to_vec());
    }

    /// Number of distinct full sequences.
    pub fn len(&self) -> usize {
        self.full.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.full.is_empty()
    }

    /// The sequence length `n` (0 if empty).
    pub fn seq_len(&self) -> usize {
        self.n
    }

    /// Whether `deps` appeared, in full, in a correct run (the pruning test).
    pub fn contains(&self, deps: &[RawDep]) -> bool {
        self.full.contains(deps)
    }

    /// The full sequences, in arbitrary order — for serialization (e.g.
    /// `act-serve` persists the set next to the cached weights so a daemon
    /// restart skips rebuilding it from fresh runs).
    pub fn sequences(&self) -> impl Iterator<Item = &Vec<RawDep>> {
        self.full.iter()
    }

    /// Length of the longest prefix of `deps` that matches a prefix of some
    /// correct sequence — the paper's "number of matched RAW dependences"
    /// used for ranking.
    pub fn matched_prefix(&self, deps: &[RawDep]) -> usize {
        if self.full.contains(deps) {
            return deps.len();
        }
        let upper = deps.len().min(self.n.saturating_sub(1));
        for k in (1..=upper).rev() {
            if self.prefixes.contains(&deps[..k]) {
                return k;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::isa::Pc;

    fn dep(s: Pc, l: Pc) -> RawDep {
        RawDep { store_pc: s, load_pc: l, inter_thread: false }
    }

    fn set_of(seqs: &[&[RawDep]]) -> CorrectSet {
        let mut set = CorrectSet::default();
        for s in seqs {
            set.insert(s);
        }
        set
    }

    #[test]
    fn paper_example_matching() {
        // Correct Set: (A1,A2,A3) and (B1,B2,B3).
        let a1 = dep(1, 10);
        let a2 = dep(2, 20);
        let a3 = dep(3, 30);
        let a4 = dep(4, 40);
        let a5 = dep(5, 50);
        let a6 = dep(6, 60);
        let b1 = dep(7, 70);
        let b2 = dep(8, 80);
        let b3 = dep(9, 90);
        let set = set_of(&[&[a1, a2, a3], &[b1, b2, b3]]);

        // (B1,B2,B3) is pruned (fully present).
        assert!(set.contains(&[b1, b2, b3]));
        // (A1,A2,A4): 2 matched dependences.
        assert!(!set.contains(&[a1, a2, a4]));
        assert_eq!(set.matched_prefix(&[a1, a2, a4]), 2);
        // (A1,A5,A6): 1 matched dependence.
        assert_eq!(set.matched_prefix(&[a1, a5, a6]), 1);
        // Nothing matches: 0.
        assert_eq!(set.matched_prefix(&[a5, a6, a4]), 0);
    }

    #[test]
    fn full_match_counts_all() {
        let s = [dep(1, 1), dep(2, 2)];
        let set = set_of(&[&s]);
        assert_eq!(set.matched_prefix(&s), 2);
    }

    #[test]
    fn from_samples_builds_set() {
        let sample = SeqSample { deps: vec![dep(1, 2), dep(3, 4)], tid: 0, seq: 0, valid: true };
        let set = CorrectSet::from_samples([&sample]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.seq_len(), 2);
        assert!(set.contains(&[dep(1, 2), dep(3, 4)]));
    }

    #[test]
    fn from_corpus_builds_windows_from_observed_deps() {
        use crate::event::{Trace, TraceKind, TraceRecord};
        let load = |seq: u64, pc: Pc, d: RawDep| TraceRecord {
            seq,
            cycle: seq,
            tid: 0,
            pc,
            kind: TraceKind::Load { addr: 8, dep: Some(d) },
        };
        let d1 = dep(1, 10);
        let d2 = dep(2, 20);
        let d3 = dep(3, 30);
        let trace = Trace {
            records: vec![load(0, 10, d1), load(1, 20, d2), load(2, 30, d3)],
            code_len: 40,
        };
        let set = CorrectSet::from_corpus([trace], 2);
        assert_eq!(set.seq_len(), 2);
        assert!(set.contains(&[d1, d2]));
        assert!(set.contains(&[d2, d3]));
        assert!(!set.contains(&[d1, d3]));
    }

    #[test]
    fn sequences_iterates_full_members_only() {
        let set = set_of(&[&[dep(1, 2), dep(3, 4)], &[dep(5, 6), dep(7, 8)]]);
        let mut seqs: Vec<Vec<RawDep>> = set.sequences().cloned().collect();
        seqs.sort();
        assert_eq!(seqs, vec![vec![dep(1, 2), dep(3, 4)], vec![dep(5, 6), dep(7, 8)]]);
        // Prefixes are indexed but not iterated.
        assert_eq!(set.sequences().count(), 2);
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = CorrectSet::default();
        assert!(set.is_empty());
        assert_eq!(set.matched_prefix(&[dep(1, 2)]), 0);
        assert!(!set.contains(&[dep(1, 2)]));
    }

    #[test]
    #[should_panic(expected = "mixed sequence lengths")]
    fn mixed_lengths_panic() {
        let mut set = CorrectSet::default();
        set.insert(&[dep(1, 2)]);
        set.insert(&[dep(1, 2), dep(3, 4)]);
    }
}
