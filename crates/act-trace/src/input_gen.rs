//! The Input Generator (§III-B): groups of `N` consecutive RAW dependences
//! from the same thread, forming positive examples, plus synthesized
//! negative examples where the final dependence's store is replaced by the
//! previous writer of the same word.

use crate::raw::DepEvent;
use act_sim::events::{RawDep, ThreadId};
use std::collections::HashMap;

/// A dependence sequence sample: `N` consecutive per-thread dependences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqSample {
    /// The dependences, oldest first; `deps.len() == N`.
    pub deps: Vec<RawDep>,
    /// The thread the sequence belongs to.
    pub tid: ThreadId,
    /// Global sequence number of the final load.
    pub seq: u64,
    /// Whether this is a positive (observed) or negative (synthesized)
    /// example.
    pub valid: bool,
}

/// Generate positive and negative sequence samples of length `n`.
///
/// Dependences are grouped per thread (a dependence belongs to the
/// processor executing its load). The first `n − 1` dependences of each
/// thread produce no sample (there is no full history yet). A negative
/// sample is produced for a window whenever the final dependence has a
/// distinct previous writer.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sequences(deps: &[DepEvent], n: usize) -> (Vec<SeqSample>, Vec<SeqSample>) {
    sequences_ext(deps, n, 0)
}

/// Like [`sequences`], with `cross_negs` additional negatives per window:
/// the final dependence's store is replaced by the store of *another*
/// distinct dependence observed in the trace.
///
/// The paper's input generator only synthesizes the previous-writer
/// negative `S'→L`; with word-granularity metadata many words have a
/// single writer, leaving most of the invalid input space unconstrained —
/// the network would then classify *novel* (buggy) communications as valid
/// by default. Cross negatives teach it the PSet-style invariant the
/// scheme depends on: a load fed by a store it was never observed to pair
/// with is suspect.
///
/// Synthesized negatives can collide with genuinely valid sequences from
/// elsewhere in the program; callers pooling several traces should filter
/// negatives against the full positive set (see `act-core`'s offline
/// trainer).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sequences_ext(
    deps: &[DepEvent],
    n: usize,
    cross_negs: usize,
) -> (Vec<SeqSample>, Vec<SeqSample>) {
    assert!(n > 0, "sequence length must be positive");

    // Donors for cross negatives: the distinct dependences of the trace,
    // plus *jittered* variants whose store is displaced by a few
    // instructions. Jitter matters: real buggy communications usually
    // involve a store near a valid one (same function), and without
    // negatives ringing each positive the classifier's valid regions
    // stretch unboundedly along the positional dimensions.
    let mut donors: Vec<RawDep> = deps.iter().map(|d| d.dep).collect();
    donors.sort_unstable();
    donors.dedup();
    let observed = donors.clone();
    for d in &observed {
        for off in [-13i64, -7, -3, 3, 7, 13] {
            let store = d.store_pc as i64 + off;
            if store >= 0 {
                donors.push(RawDep { store_pc: store as u32, ..*d });
            }
            // Also flip the inter-thread flag (a same-PC store from the
            // wrong thread is a classic racy communication).
            donors.push(RawDep { inter_thread: !d.inter_thread, ..*d });
        }
    }
    donors.sort_unstable();
    donors.dedup();

    let mut history: HashMap<ThreadId, Vec<RawDep>> = HashMap::new();
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for (w, d) in deps.iter().enumerate() {
        let h = history.entry(d.tid).or_default();
        if h.len() >= n - 1 {
            let prefix: Vec<RawDep> = h[h.len() - (n - 1)..].to_vec();
            let mut pos = prefix.clone();
            pos.push(d.dep);
            positives.push(SeqSample { deps: pos, tid: d.tid, seq: d.seq, valid: true });
            if let Some(neg_dep) = d.negative() {
                let mut neg = prefix.clone();
                neg.push(neg_dep);
                negatives.push(SeqSample { deps: neg, tid: d.tid, seq: d.seq, valid: false });
            }
            if donors.len() > 1 {
                let mut window = prefix.clone();
                window.push(d.dep);
                for k in 0..cross_negs {
                    // Perturb a rotating position of the window (bugs
                    // corrupt prefix dependences as often as the final
                    // one). Even picks prefer donors that feed the *same
                    // load* — the most confusable neighbours and exactly
                    // what a wrong-writer bug looks like; odd picks draw
                    // from the global donor pool.
                    let at = (w + k) % n;
                    let donor = if k % 2 == 0 {
                        let same_load: Vec<&RawDep> = donors
                            .iter()
                            .filter(|dd| {
                                dd.load_pc == window[at].load_pc
                                    && dd.store_pc != window[at].store_pc
                            })
                            .collect();
                        if same_load.is_empty() {
                            donors[(w * 7 + k * 13 + 3) % donors.len()]
                        } else {
                            *same_load[(w * 5 + k) % same_load.len()]
                        }
                    } else {
                        donors[(w * 7 + k * 13 + 3) % donors.len()]
                    };
                    if donor.store_pc == window[at].store_pc {
                        continue;
                    }
                    let mut neg = window.clone();
                    neg[at] = RawDep {
                        store_pc: donor.store_pc,
                        load_pc: window[at].load_pc,
                        inter_thread: donor.inter_thread,
                    };
                    negatives.push(SeqSample { deps: neg, tid: d.tid, seq: d.seq, valid: false });
                }
            }
        }
        h.push(d.dep);
        // Bound per-thread history to what windows need.
        if h.len() > 4 * n {
            let cut = h.len() - n;
            h.drain(..cut);
        }
    }
    (positives, negatives)
}

/// Only the positive samples (for building the Correct Set).
pub fn positive_sequences(deps: &[DepEvent], n: usize) -> Vec<SeqSample> {
    sequences(deps, n).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::isa::Pc;

    fn dep(store_pc: Pc, load_pc: Pc) -> RawDep {
        RawDep { store_pc, load_pc, inter_thread: false }
    }

    fn ev(seq: u64, tid: ThreadId, d: RawDep, prev: Option<Pc>) -> DepEvent {
        DepEvent { dep: d, tid, seq, prev_writer: prev.map(|p| (p, tid)) }
    }

    #[test]
    fn windows_are_per_thread_and_ordered() {
        let deps = vec![
            ev(0, 0, dep(1, 2), None),
            ev(1, 1, dep(3, 4), None),
            ev(2, 0, dep(5, 6), None),
            ev(3, 1, dep(7, 8), None),
            ev(4, 0, dep(9, 10), None),
        ];
        let (pos, neg) = sequences(&deps, 2);
        assert!(neg.is_empty());
        // Thread 0: (1->2, 5->6), (5->6, 9->10); thread 1: (3->4, 7->8).
        assert_eq!(pos.len(), 3);
        assert_eq!(pos[0].deps, vec![dep(1, 2), dep(5, 6)]);
        assert_eq!(pos[1].deps, vec![dep(3, 4), dep(7, 8)]);
        assert_eq!(pos[2].deps, vec![dep(5, 6), dep(9, 10)]);
        assert!(pos.iter().all(|s| s.valid));
    }

    #[test]
    fn n_equals_one_yields_singletons_immediately() {
        let deps = vec![ev(0, 0, dep(1, 2), None), ev(1, 0, dep(3, 4), None)];
        let (pos, _) = sequences(&deps, 1);
        assert_eq!(pos.len(), 2);
        assert_eq!(pos[0].deps.len(), 1);
    }

    #[test]
    fn warmup_produces_no_windows() {
        let deps = vec![ev(0, 0, dep(1, 2), None), ev(1, 0, dep(3, 4), None)];
        let (pos, _) = sequences(&deps, 3);
        assert!(pos.is_empty());
    }

    #[test]
    fn negatives_replace_final_dep() {
        let deps = vec![
            ev(0, 0, dep(1, 2), None),
            ev(1, 0, dep(5, 6), Some(3)), // prev writer at pc 3
        ];
        let (pos, neg) = sequences(&deps, 2);
        assert_eq!(pos.len(), 1);
        assert_eq!(neg.len(), 1);
        assert_eq!(neg[0].deps, vec![dep(1, 2), dep(3, 6)]);
        assert!(!neg[0].valid);
        // The shared prefix matches the positive sample's.
        assert_eq!(neg[0].deps[0], pos[0].deps[0]);
    }

    #[test]
    fn history_bounding_does_not_change_samples() {
        // Long single-thread stream: bounded history must give identical
        // windows to an unbounded reference implementation.
        let deps: Vec<DepEvent> =
            (0..200).map(|i| ev(i, 0, dep(i as Pc, (i + 1) as Pc), None)).collect();
        let (pos, _) = sequences(&deps, 5);
        assert_eq!(pos.len(), 200 - 4);
        // Spot-check a late window.
        assert_eq!(
            pos.last().unwrap().deps,
            (195..200).map(|i| dep(i as Pc, (i + 1) as Pc)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = sequences(&[], 0);
    }
}
