//! Trace (de)serialization: a line-oriented text format so traces can be
//! archived and shipped between the collection machine and the offline
//! trainer, like the paper's PIN trace files.
//!
//! Format (one record per line, space-separated):
//!
//! ```text
//! acttrace v1 <code_len>
//! L <seq> <cycle> <tid> <pc> <addr> [<store_pc> <load_pc> <inter>]
//! S <seq> <cycle> <tid> <pc> <addr>
//! B <seq> <cycle> <tid> <pc> <taken>
//! T <seq> <cycle> <tid>
//! E <seq> <cycle> <tid>
//! ```
//!
//! There is exactly **one** event codec in the workspace, and this module
//! defines its two halves: [`TraceSink`] (consume a header + records in
//! order) and [`TraceSource`] (produce them). The text writer and parser
//! here are one implementation; `act-store`'s columnar segment codec is
//! another. Everything that moves traces — files, protocol frames, the
//! corpus store — goes through these traits instead of growing a private
//! copy of the record schema.

use crate::event::{Trace, TraceKind, TraceRecord};
use act_sim::events::RawDep;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Upper bound on a serialized trace accepted by [`trace_from_bytes`] —
/// the same 64 MiB pre-allocation cap `act-serve` applies to protocol
/// payloads, so a hostile length cannot balloon memory anywhere a trace
/// enters the process.
pub const MAX_TRACE_BYTES: usize = 64 << 20;

/// Upper bound on the `code_len` a trace header may declare. PCs are
/// `u32`, so any honest program fits; a larger declared value is corrupt
/// input, not a big program.
pub const MAX_CODE_LEN: u64 = u32::MAX as u64;

/// Error produced when parsing a serialized trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error: {e}"),
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

// ---------------------------------------------------------------------
// The shared codec surface: sinks consume, sources produce.
// ---------------------------------------------------------------------

/// The consuming half of the trace codec: receives the header once, then
/// every record in trace order. Implemented by the text writer below and
/// by `act-store`'s columnar encoder.
pub trait TraceSink {
    /// What a failing sink reports (I/O for writers, never for builders).
    type Error;

    /// Called once, before any record, with the trace's code length.
    fn begin(&mut self, code_len: usize) -> Result<(), Self::Error>;

    /// Called once per record, in trace order.
    fn record(&mut self, rec: &TraceRecord) -> Result<(), Self::Error>;

    /// Called after the last record; flush any buffered state.
    fn finish(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// The producing half of the trace codec: yields the header, then records
/// one at a time — a reader can process a trace without materializing it.
pub trait TraceSource {
    /// The trace's declared code length (available after construction).
    fn code_len(&self) -> usize;

    /// The next record, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure or malformed input.
    fn next_record(&mut self) -> Result<Option<TraceRecord>, ParseTraceError>;
}

/// Stream `trace` into `sink`: header, every record in order, finish.
/// This is the only encode loop in the workspace — every writer (text
/// file, protocol frame, columnar segment) is a [`TraceSink`] fed by it.
///
/// # Errors
///
/// Propagates the sink's error.
pub fn stream_trace<S: TraceSink>(trace: &Trace, sink: &mut S) -> Result<(), S::Error> {
    sink.begin(trace.code_len)?;
    for rec in trace.iter() {
        sink.record(rec)?;
    }
    sink.finish()
}

/// Drain `source` into `sink` record by record (no intermediate [`Trace`]).
///
/// # Errors
///
/// Source errors surface as `Err(Ok(parse_error))`-free: the sink error
/// type wins when both could fail, so this returns a two-sided error.
pub fn copy_trace<Src, S>(source: &mut Src, sink: &mut S) -> Result<(), CopyError<S::Error>>
where
    Src: TraceSource,
    S: TraceSink,
{
    sink.begin(source.code_len()).map_err(CopyError::Sink)?;
    while let Some(rec) = source.next_record().map_err(CopyError::Source)? {
        sink.record(&rec).map_err(CopyError::Sink)?;
    }
    sink.finish().map_err(CopyError::Sink)
}

/// Which side of a [`copy_trace`] failed.
#[derive(Debug)]
pub enum CopyError<E> {
    /// The source produced malformed input or failed to read.
    Source(ParseTraceError),
    /// The sink failed to accept a record.
    Sink(E),
}

/// A [`TraceSink`] that materializes a [`Trace`] in memory — the bridge
/// from any streaming source back to the owned form the analyses take.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// An empty builder.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// The accumulated trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSink for TraceBuilder {
    type Error = std::convert::Infallible;

    fn begin(&mut self, code_len: usize) -> Result<(), Self::Error> {
        self.trace.code_len = code_len;
        Ok(())
    }

    fn record(&mut self, rec: &TraceRecord) -> Result<(), Self::Error> {
        self.trace.records.push(*rec);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Text implementation of the codec.
// ---------------------------------------------------------------------

/// Flush threshold for the text writer's internal buffer: large enough to
/// amortize `write_all` syscalls, small enough to stay streaming.
const TEXT_FLUSH_BYTES: usize = 64 << 10;

/// The v1 text writer as a [`TraceSink`]: one line per record, buffered
/// writes to any `W: Write`.
pub struct TextTraceSink<W: Write> {
    w: W,
    buf: String,
}

impl<W: Write> TextTraceSink<W> {
    /// A sink writing the v1 text format to `w`.
    pub fn new(w: W) -> TextTraceSink<W> {
        TextTraceSink { w, buf: String::new() }
    }

    /// Recover the inner writer (call after `finish`; unflushed buffered
    /// lines are dropped).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> TraceSink for TextTraceSink<W> {
    type Error = io::Error;

    fn begin(&mut self, code_len: usize) -> Result<(), io::Error> {
        writeln!(self.buf, "acttrace v1 {code_len}").expect("string write");
        Ok(())
    }

    fn record(&mut self, r: &TraceRecord) -> Result<(), io::Error> {
        let buf = &mut self.buf;
        match r.kind {
            TraceKind::Load { addr, dep } => {
                write!(buf, "L {} {} {} {} {}", r.seq, r.cycle, r.tid, r.pc, addr)
                    .expect("string write");
                if let Some(d) = dep {
                    write!(buf, " {} {} {}", d.store_pc, d.load_pc, d.inter_thread as u8)
                        .expect("string write");
                }
                buf.push('\n');
            }
            TraceKind::Store { addr } => {
                writeln!(buf, "S {} {} {} {} {}", r.seq, r.cycle, r.tid, r.pc, addr)
                    .expect("string write");
            }
            TraceKind::Branch { taken } => {
                writeln!(buf, "B {} {} {} {} {}", r.seq, r.cycle, r.tid, r.pc, taken as u8)
                    .expect("string write");
            }
            TraceKind::ThreadStart => {
                writeln!(buf, "T {} {} {}", r.seq, r.cycle, r.tid).expect("string write");
            }
            TraceKind::ThreadEnd => {
                writeln!(buf, "E {} {} {}", r.seq, r.cycle, r.tid).expect("string write");
            }
        }
        if self.buf.len() >= TEXT_FLUSH_BYTES {
            self.w.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), io::Error> {
        if !self.buf.is_empty() {
            self.w.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        Ok(())
    }
}

/// The v1 text parser as a [`TraceSource`]: validates the header at
/// construction, then yields one record per line.
pub struct TextTraceSource<R: BufRead> {
    lines: std::io::Lines<R>,
    lineno: usize,
    code_len: usize,
}

impl<R: BufRead> TextTraceSource<R> {
    /// Read and validate the header line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure or a bad header.
    pub fn new(r: R) -> Result<TextTraceSource<R>, ParseTraceError> {
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| ParseTraceError::Malformed {
            line: 1,
            reason: "empty input".into(),
        })??;
        let mut hp = header.split_whitespace();
        if hp.next() != Some("acttrace") || hp.next() != Some("v1") {
            return Err(ParseTraceError::Malformed { line: 1, reason: "bad header".into() });
        }
        let code_len: u64 = hp
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseTraceError::Malformed { line: 1, reason: "bad code_len".into() })?;
        if code_len > MAX_CODE_LEN {
            return Err(ParseTraceError::Malformed {
                line: 1,
                reason: format!("code_len {code_len} exceeds the {MAX_CODE_LEN} cap"),
            });
        }
        Ok(TextTraceSource { lines, lineno: 1, code_len: code_len as usize })
    }
}

impl<R: BufRead> TraceSource for TextTraceSource<R> {
    fn code_len(&self) -> usize {
        self.code_len
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, ParseTraceError> {
        loop {
            let Some(line) = self.lines.next() else { return Ok(None) };
            let line = line?;
            self.lineno += 1;
            if line.is_empty() {
                continue;
            }
            return parse_record_line(&line, self.lineno).map(Some);
        }
    }
}

/// Parse one record line of the v1 text format (shared by the streaming
/// source and any line-at-a-time caller).
///
/// # Errors
///
/// Returns [`ParseTraceError::Malformed`] naming `lineno` for any schema
/// violation.
pub fn parse_record_line(line: &str, lineno: usize) -> Result<TraceRecord, ParseTraceError> {
    let mut t = line.split_whitespace();
    let bad =
        |reason: &str| ParseTraceError::Malformed { line: lineno, reason: reason.to_string() };
    let tag = t.next().ok_or_else(|| bad("missing tag"))?;
    let mut num = |name: &str| -> Result<u64, ParseTraceError> {
        t.next().and_then(|v| v.parse().ok()).ok_or(ParseTraceError::Malformed {
            line: lineno,
            reason: format!("missing/bad {name}"),
        })
    };
    let seq = num("seq")?;
    let cycle = num("cycle")?;
    let tid = num("tid")? as u32;
    let (pc, kind) = match tag {
        "L" => {
            let pc = num("pc")? as u32;
            let addr = num("addr")?;
            let dep = match t.next() {
                None => None,
                Some(sp) => {
                    let store_pc: u32 = sp.parse().map_err(|_| bad("bad dep store_pc"))?;
                    let load_pc: u32 = t
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing dep load_pc"))?;
                    let inter: u8 = t
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing dep inter flag"))?;
                    Some(RawDep { store_pc, load_pc, inter_thread: inter != 0 })
                }
            };
            (pc, TraceKind::Load { addr, dep })
        }
        "S" => {
            let pc = num("pc")? as u32;
            let addr = num("addr")?;
            (pc, TraceKind::Store { addr })
        }
        "B" => {
            let pc = num("pc")? as u32;
            let taken = num("taken")? != 0;
            (pc, TraceKind::Branch { taken })
        }
        "T" => (0, TraceKind::ThreadStart),
        "E" => (0, TraceKind::ThreadEnd),
        other => return Err(bad(&format!("unknown tag {other}"))),
    };
    Ok(TraceRecord { seq, cycle, tid, pc, kind })
}

// ---------------------------------------------------------------------
// The file/byte entry points, built on the codec.
// ---------------------------------------------------------------------

/// Serialize `trace` to `w` in the v1 text format.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_trace<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    stream_trace(trace, &mut TextTraceSink::new(w))
}

/// Parse a trace previously produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or any malformed line.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut source = TextTraceSource::new(r)?;
    let mut builder = TraceBuilder::new();
    match copy_trace(&mut source, &mut builder) {
        Ok(()) => Ok(builder.into_trace()),
        Err(CopyError::Source(e)) => Err(e),
        Err(CopyError::Sink(infallible)) => match infallible {},
    }
}

/// Serialize `trace` to an in-memory byte buffer — the binary-safe framing
/// of the v1 text format used when a trace travels inside a length-prefixed
/// protocol frame (`act-serve`) rather than a file.
pub fn trace_to_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).expect("in-memory write cannot fail");
    buf
}

/// Parse a trace from bytes previously produced by [`trace_to_bytes`] (or
/// any v1 trace file read into memory).
///
/// Hostile input is rejected, never trusted: payloads above
/// [`MAX_TRACE_BYTES`] and declared code lengths above [`MAX_CODE_LEN`]
/// fail before any proportional allocation, and every malformed byte
/// stream surfaces as a [`ParseTraceError`] — no panic, no OOM.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input, including input that is
/// not UTF-8 (the v1 format is text).
pub fn trace_from_bytes(bytes: &[u8]) -> Result<Trace, ParseTraceError> {
    if bytes.len() > MAX_TRACE_BYTES {
        return Err(ParseTraceError::Malformed {
            line: 1,
            reason: format!(
                "trace payload of {} bytes exceeds the {MAX_TRACE_BYTES}-byte cap",
                bytes.len()
            ),
        });
    }
    if std::str::from_utf8(bytes).is_err() {
        return Err(ParseTraceError::Malformed {
            line: 1,
            reason: "trace payload is not valid UTF-8".into(),
        });
    }
    read_trace(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            records: vec![
                TraceRecord { seq: 0, cycle: 1, tid: 0, pc: 0, kind: TraceKind::ThreadStart },
                TraceRecord {
                    seq: 1,
                    cycle: 4,
                    tid: 0,
                    pc: 7,
                    kind: TraceKind::Store { addr: 0x2000 },
                },
                TraceRecord {
                    seq: 2,
                    cycle: 9,
                    tid: 1,
                    pc: 9,
                    kind: TraceKind::Load {
                        addr: 0x2000,
                        dep: Some(RawDep { store_pc: 7, load_pc: 9, inter_thread: true }),
                    },
                },
                TraceRecord {
                    seq: 3,
                    cycle: 10,
                    tid: 1,
                    pc: 11,
                    kind: TraceKind::Load { addr: 0x3000, dep: None },
                },
                TraceRecord {
                    seq: 4,
                    cycle: 12,
                    tid: 1,
                    pc: 12,
                    kind: TraceKind::Branch { taken: true },
                },
                TraceRecord { seq: 5, cycle: 20, tid: 1, pc: 0, kind: TraceKind::ThreadEnd },
            ],
            code_len: 42,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.code_len, trace.code_len);
        assert_eq!(back.records, trace.records);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace(&b"nottrace v1 10\n"[..]).unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_unknown_tag() {
        let err = read_trace(&b"acttrace v1 10\nX 1 2 3\n"[..]).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }

    #[test]
    fn rejects_truncated_record() {
        let err = read_trace(&b"acttrace v1 10\nS 1 2\n"[..]).unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 2, .. }));
    }

    #[test]
    fn bytes_round_trip_matches_file_form() {
        let trace = sample();
        let bytes = trace_to_bytes(&trace);
        let mut file_form = Vec::new();
        write_trace(&trace, &mut file_form).unwrap();
        assert_eq!(bytes, file_form, "framed bytes are exactly the v1 file format");
        let back = trace_from_bytes(&bytes).unwrap();
        assert_eq!(back.records, trace.records);
        assert_eq!(back.code_len, trace.code_len);
    }

    #[test]
    fn bytes_reject_non_utf8() {
        let err = trace_from_bytes(&[0xff, 0xfe, 0x00, 0x01]).unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
    }

    #[test]
    fn empty_body_is_an_empty_trace() {
        let t = read_trace(&b"acttrace v1 99\n"[..]).unwrap();
        assert_eq!(t.code_len, 99);
        assert!(t.records.is_empty());
    }

    #[test]
    fn rejects_oversized_code_len_before_anything_else() {
        let huge = format!("acttrace v1 {}\n", u64::MAX);
        let err = read_trace(huge.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("cap"), "got: {err}");
    }

    #[test]
    fn rejects_oversized_payload_before_parsing() {
        // A declared length check, not an allocation: the slice is real
        // here, but a hostile frame's would not be. Use a cheap synthetic
        // buffer (one giant line of spaces is never parsed — the length
        // gate fires first).
        let bytes = vec![b' '; MAX_TRACE_BYTES + 1];
        let err = trace_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("cap"), "got: {err}");
    }

    #[test]
    fn streaming_source_yields_records_in_order() {
        let trace = sample();
        let bytes = trace_to_bytes(&trace);
        let mut source = TextTraceSource::new(bytes.as_slice()).unwrap();
        assert_eq!(source.code_len(), 42);
        let mut n = 0;
        while let Some(rec) = source.next_record().unwrap() {
            assert_eq!(rec, trace.records[n]);
            n += 1;
        }
        assert_eq!(n, trace.records.len());
    }

    #[test]
    fn copy_trace_pipes_source_to_sink_without_a_trace() {
        let trace = sample();
        let bytes = trace_to_bytes(&trace);
        let mut source = TextTraceSource::new(bytes.as_slice()).unwrap();
        let mut out = Vec::new();
        let mut sink = TextTraceSink::new(&mut out);
        copy_trace(&mut source, &mut sink).unwrap();
        assert_eq!(out, bytes, "text -> text copy is byte-identical");
    }

    #[test]
    fn corrupt_input_fuzz_never_panics() {
        use proptest::prelude::*;
        // Mutated real traces and raw garbage: every outcome must be
        // Ok(_) or Err(ParseTraceError) — never a panic or runaway
        // allocation. (The shim's proptest! would hide the shared setup;
        // drive the strategy loop directly.)
        let base = trace_to_bytes(&sample());
        for case in 0..512u64 {
            let mut rng = proptest::rng_for("corrupt_input_fuzz_never_panics", case);
            let mut bytes = base.clone();
            let mutations = (any::<u8>().generate(&mut rng) % 8) as usize + 1;
            for _ in 0..mutations {
                match any::<u8>().generate(&mut rng) % 4 {
                    0 if !bytes.is_empty() => {
                        let i = (any::<u64>().generate(&mut rng) as usize) % bytes.len();
                        bytes[i] = any::<u8>().generate(&mut rng);
                    }
                    1 => {
                        let i = (any::<u64>().generate(&mut rng) as usize) % (bytes.len() + 1);
                        bytes.insert(i, any::<u8>().generate(&mut rng));
                    }
                    2 if !bytes.is_empty() => {
                        let keep = (any::<u64>().generate(&mut rng) as usize) % bytes.len();
                        bytes.truncate(keep);
                    }
                    _ => bytes.extend_from_slice(b" 18446744073709551615"),
                }
            }
            let _ = trace_from_bytes(&bytes); // must return, not panic
        }
    }
}
