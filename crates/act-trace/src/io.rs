//! Trace (de)serialization: a line-oriented text format so traces can be
//! archived and shipped between the collection machine and the offline
//! trainer, like the paper's PIN trace files.
//!
//! Format (one record per line, space-separated):
//!
//! ```text
//! acttrace v1 <code_len>
//! L <seq> <cycle> <tid> <pc> <addr> [<store_pc> <load_pc> <inter>]
//! S <seq> <cycle> <tid> <pc> <addr>
//! B <seq> <cycle> <tid> <pc> <taken>
//! T <seq> <cycle> <tid>
//! E <seq> <cycle> <tid>
//! ```

use crate::event::{Trace, TraceKind, TraceRecord};
use act_sim::events::RawDep;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Error produced when parsing a serialized trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error: {e}"),
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Serialize `trace` to `w`.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "acttrace v1 {}", trace.code_len).expect("string write");
    for r in &trace.records {
        match r.kind {
            TraceKind::Load { addr, dep } => {
                write!(buf, "L {} {} {} {} {}", r.seq, r.cycle, r.tid, r.pc, addr)
                    .expect("string write");
                if let Some(d) = dep {
                    write!(buf, " {} {} {}", d.store_pc, d.load_pc, d.inter_thread as u8)
                        .expect("string write");
                }
                buf.push('\n');
            }
            TraceKind::Store { addr } => {
                writeln!(buf, "S {} {} {} {} {}", r.seq, r.cycle, r.tid, r.pc, addr)
                    .expect("string write");
            }
            TraceKind::Branch { taken } => {
                writeln!(buf, "B {} {} {} {} {}", r.seq, r.cycle, r.tid, r.pc, taken as u8)
                    .expect("string write");
            }
            TraceKind::ThreadStart => {
                writeln!(buf, "T {} {} {}", r.seq, r.cycle, r.tid).expect("string write");
            }
            TraceKind::ThreadEnd => {
                writeln!(buf, "E {} {} {}", r.seq, r.cycle, r.tid).expect("string write");
            }
        }
    }
    w.write_all(buf.as_bytes())
}

/// Parse a trace previously produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or any malformed line.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseTraceError::Malformed { line: 1, reason: "empty input".into() })??;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("acttrace") || hp.next() != Some("v1") {
        return Err(ParseTraceError::Malformed { line: 1, reason: "bad header".into() });
    }
    let code_len: usize = hp
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseTraceError::Malformed { line: 1, reason: "bad code_len".into() })?;

    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.is_empty() {
            continue;
        }
        let mut t = line.split_whitespace();
        let bad =
            |reason: &str| ParseTraceError::Malformed { line: lineno, reason: reason.to_string() };
        let tag = t.next().ok_or_else(|| bad("missing tag"))?;
        let mut num = |name: &str| -> Result<u64, ParseTraceError> {
            t.next().and_then(|v| v.parse().ok()).ok_or(ParseTraceError::Malformed {
                line: lineno,
                reason: format!("missing/bad {name}"),
            })
        };
        let seq = num("seq")?;
        let cycle = num("cycle")?;
        let tid = num("tid")? as u32;
        let (pc, kind) = match tag {
            "L" => {
                let pc = num("pc")? as u32;
                let addr = num("addr")?;
                let dep = match t.next() {
                    None => None,
                    Some(sp) => {
                        let store_pc: u32 = sp.parse().map_err(|_| bad("bad dep store_pc"))?;
                        let load_pc: u32 = t
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad("missing dep load_pc"))?;
                        let inter: u8 = t
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad("missing dep inter flag"))?;
                        Some(RawDep { store_pc, load_pc, inter_thread: inter != 0 })
                    }
                };
                (pc, TraceKind::Load { addr, dep })
            }
            "S" => {
                let pc = num("pc")? as u32;
                let addr = num("addr")?;
                (pc, TraceKind::Store { addr })
            }
            "B" => {
                let pc = num("pc")? as u32;
                let taken = num("taken")? != 0;
                (pc, TraceKind::Branch { taken })
            }
            "T" => (0, TraceKind::ThreadStart),
            "E" => (0, TraceKind::ThreadEnd),
            other => return Err(bad(&format!("unknown tag {other}"))),
        };
        records.push(TraceRecord { seq, cycle, tid, pc, kind });
    }
    Ok(Trace { records, code_len })
}

/// Serialize `trace` to an in-memory byte buffer — the binary-safe framing
/// of the v1 text format used when a trace travels inside a length-prefixed
/// protocol frame (`act-serve`) rather than a file.
pub fn trace_to_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).expect("in-memory write cannot fail");
    buf
}

/// Parse a trace from bytes previously produced by [`trace_to_bytes`] (or
/// any v1 trace file read into memory).
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input, including input that is
/// not UTF-8 (the v1 format is text).
pub fn trace_from_bytes(bytes: &[u8]) -> Result<Trace, ParseTraceError> {
    if std::str::from_utf8(bytes).is_err() {
        return Err(ParseTraceError::Malformed {
            line: 1,
            reason: "trace payload is not valid UTF-8".into(),
        });
    }
    read_trace(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            records: vec![
                TraceRecord { seq: 0, cycle: 1, tid: 0, pc: 0, kind: TraceKind::ThreadStart },
                TraceRecord {
                    seq: 1,
                    cycle: 4,
                    tid: 0,
                    pc: 7,
                    kind: TraceKind::Store { addr: 0x2000 },
                },
                TraceRecord {
                    seq: 2,
                    cycle: 9,
                    tid: 1,
                    pc: 9,
                    kind: TraceKind::Load {
                        addr: 0x2000,
                        dep: Some(RawDep { store_pc: 7, load_pc: 9, inter_thread: true }),
                    },
                },
                TraceRecord {
                    seq: 3,
                    cycle: 10,
                    tid: 1,
                    pc: 11,
                    kind: TraceKind::Load { addr: 0x3000, dep: None },
                },
                TraceRecord {
                    seq: 4,
                    cycle: 12,
                    tid: 1,
                    pc: 12,
                    kind: TraceKind::Branch { taken: true },
                },
                TraceRecord { seq: 5, cycle: 20, tid: 1, pc: 0, kind: TraceKind::ThreadEnd },
            ],
            code_len: 42,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.code_len, trace.code_len);
        assert_eq!(back.records, trace.records);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace(&b"nottrace v1 10\n"[..]).unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_unknown_tag() {
        let err = read_trace(&b"acttrace v1 10\nX 1 2 3\n"[..]).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }

    #[test]
    fn rejects_truncated_record() {
        let err = read_trace(&b"acttrace v1 10\nS 1 2\n"[..]).unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 2, .. }));
    }

    #[test]
    fn bytes_round_trip_matches_file_form() {
        let trace = sample();
        let bytes = trace_to_bytes(&trace);
        let mut file_form = Vec::new();
        write_trace(&trace, &mut file_form).unwrap();
        assert_eq!(bytes, file_form, "framed bytes are exactly the v1 file format");
        let back = trace_from_bytes(&bytes).unwrap();
        assert_eq!(back.records, trace.records);
        assert_eq!(back.code_len, trace.code_len);
    }

    #[test]
    fn bytes_reject_non_utf8() {
        let err = trace_from_bytes(&[0xff, 0xfe, 0x00, 0x01]).unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
    }

    #[test]
    fn empty_body_is_an_empty_trace() {
        let t = read_trace(&b"acttrace v1 99\n"[..]).unwrap();
        assert_eq!(t.code_len, 99);
        assert!(t.records.is_empty());
    }
}
