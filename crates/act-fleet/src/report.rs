//! The structured campaign report and its JSON rendering.
//!
//! The report has two top-level sections with different contracts:
//!
//! - `results` — **deterministic**: a pure function of the spec and the job
//!   seeds. Byte-identical at any `--jobs` count and across runs (see
//!   [`CampaignReport::deterministic_json`]).
//! - `timing` — per-job wall-clock, total wall-clock, and the aggregate
//!   speedup (`sum of job time / campaign wall time`), so future
//!   `BENCH_*.json` entries can track fleet scaling. Timing varies run to
//!   run by nature and is therefore excluded from the determinism
//!   guarantee; pass `include_timing = false` (CLI `--no-timing`) to strip
//!   it for byte-comparable artifacts.
//!
//! JSON is rendered by hand (no serde in the offline dependency set):
//! object keys are emitted in fixed order, floats in shortest-roundtrip
//! form, and non-finite floats as `null`, so equal values always render to
//! equal bytes.

use crate::aggregate::Aggregate;
use crate::spec::CampaignSpec;
use crate::worker::{JobOutcome, JobResult, Metric};

/// Timing of one whole campaign run.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock of the whole campaign, milliseconds.
    pub total_ms: f64,
    /// Sum of per-job wall-clocks, milliseconds (serial-equivalent time).
    pub sum_job_ms: f64,
    /// `sum_job_ms / total_ms`: the realized parallel speedup.
    pub speedup: f64,
    /// Per-job wall-clock in job-id order, milliseconds.
    pub per_job_ms: Vec<f64>,
}

/// Everything a campaign produces.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The spec that ran (name, kind, and grid are echoed into the report).
    pub spec: CampaignSpec,
    /// Per-job results, in job-id order.
    pub results: Vec<JobResult>,
    /// Campaign-level rollup.
    pub aggregate: Aggregate,
    /// Wall-clock accounting for this particular run.
    pub timing: Timing,
}

impl CampaignReport {
    /// The full JSON report, timing included.
    pub fn json(&self) -> String {
        self.render(true)
    }

    /// The deterministic section only: byte-identical for the same spec and
    /// seeds at any worker count.
    pub fn deterministic_json(&self) -> String {
        self.render(false)
    }

    /// Human-readable lines the executors emitted, in job order — what the
    /// experiment binaries print as their table body.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.results.iter().flat_map(|r| match &r.outcome {
            JobOutcome::Completed(out) => out.lines.iter().map(String::as_str).collect::<Vec<_>>(),
            JobOutcome::Crashed { .. } => Vec::new(),
        })
    }

    fn render(&self, include_timing: bool) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("campaign");
        w.str(&self.spec.name);
        w.key("kind");
        w.str(&self.spec.kind);
        w.key("grid");
        {
            w.raw("{");
            w.key("workloads");
            w.str_array(&self.spec.workloads);
            w.key("configs");
            w.str_array(&self.spec.configs);
            w.key("seeds");
            w.raw(&format!(
                "[{}]",
                self.spec.seeds.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            ));
            w.raw("}");
            w.comma();
        }
        w.key("results");
        self.render_results(&mut w);
        if include_timing {
            w.comma();
            w.key("timing");
            self.render_timing(&mut w);
        }
        w.raw("}");
        w.finish()
    }

    fn render_results(&self, w: &mut JsonWriter) {
        w.raw("{");
        w.key("jobs");
        w.raw("[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.key("id");
            w.raw(&r.job.id.to_string());
            w.comma();
            w.key("workload");
            w.str(&r.job.workload);
            w.key("config");
            w.str(&r.job.config);
            w.key("seed");
            w.raw(&r.job.seed.to_string());
            w.comma();
            match &r.outcome {
                JobOutcome::Completed(out) => {
                    w.key("outcome");
                    w.str("completed");
                    w.key("metrics");
                    w.raw("{");
                    for (j, (k, m)) in out.metrics.iter().enumerate() {
                        if j > 0 {
                            w.raw(",");
                        }
                        w.key(k);
                        match m {
                            Metric::Int(v) => w.raw(&v.to_string()),
                            Metric::Float(v) => w.float(*v),
                            Metric::Text(v) => {
                                w.str(v);
                                w.uncomma();
                            }
                        }
                    }
                    w.raw("}");
                }
                JobOutcome::Crashed { message } => {
                    w.key("outcome");
                    w.str("crashed");
                    w.key("error");
                    w.str(message);
                    w.uncomma();
                }
            }
            w.raw("}");
        }
        w.raw("]");
        w.comma();
        w.key("aggregate");
        w.raw("{");
        w.key("total");
        w.raw(&self.aggregate.total.to_string());
        w.comma();
        w.key("completed");
        w.raw(&self.aggregate.completed.to_string());
        w.comma();
        w.key("crashed");
        w.raw(&self.aggregate.crashed.to_string());
        w.comma();
        w.key("metrics");
        w.raw("[");
        for (i, m) in self.aggregate.metrics.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.key("key");
            w.str(&m.key);
            w.key("count");
            w.raw(&m.count.to_string());
            w.comma();
            w.key("sum");
            w.float(m.sum);
            w.comma();
            w.key("mean");
            w.float(m.mean);
            w.comma();
            w.key("min");
            w.float(m.min);
            w.comma();
            w.key("max");
            w.float(m.max);
            w.raw("}");
        }
        w.raw("]}");
        w.raw("}");
    }

    fn render_timing(&self, w: &mut JsonWriter) {
        w.raw("{");
        w.key("workers");
        w.raw(&self.timing.workers.to_string());
        w.comma();
        w.key("total_ms");
        w.float(self.timing.total_ms);
        w.comma();
        w.key("sum_job_ms");
        w.float(self.timing.sum_job_ms);
        w.comma();
        w.key("speedup");
        w.float(self.timing.speedup);
        w.comma();
        w.key("per_job_ms");
        w.raw("[");
        for (i, ms) in self.timing.per_job_ms.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.float(*ms);
        }
        w.raw("]}");
    }
}

/// A tiny append-only JSON writer with deterministic formatting.
struct JsonWriter {
    buf: String,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter { buf: String::new() }
    }

    fn raw(&mut self, s: &str) {
        self.buf.push_str(s);
    }

    /// `"key":` — call after the opening brace or a comma-producing value.
    fn key(&mut self, k: &str) {
        self.string_literal(k);
        self.buf.push(':');
    }

    /// A string value followed by a comma (the common "more keys follow"
    /// case); call [`JsonWriter::uncomma`] if it was the last member.
    fn str(&mut self, s: &str) {
        self.string_literal(s);
        self.buf.push(',');
    }

    fn comma(&mut self) {
        self.buf.push(',');
    }

    /// Drop a just-written trailing comma.
    fn uncomma(&mut self) {
        if self.buf.ends_with(',') {
            self.buf.pop();
        }
    }

    fn str_array(&mut self, items: &[String]) {
        self.buf.push('[');
        for (i, s) in items.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.string_literal(s);
        }
        self.buf.push_str("],");
    }

    /// Shortest-roundtrip float; non-finite renders as `null` (JSON has no
    /// NaN/Infinity). Integral values carry a `.0` so the type is stable.
    fn float(&mut self, v: f64) {
        if v.is_finite() {
            self.buf.push_str(&format!("{v:?}"));
        } else {
            self.buf.push_str("null");
        }
    }

    fn string_literal(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn finish(mut self) -> String {
        self.buf.push('\n');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use crate::spec::{CampaignSpec, JobDesc};
    use crate::worker::{JobOutcome, JobOutput, JobResult};
    use std::time::Duration;

    fn sample_report() -> CampaignReport {
        let spec = CampaignSpec::new("demo", "run", &["w\"x"]);
        let results = vec![
            JobResult {
                job: JobDesc { id: 0, workload: "w\"x".into(), config: "default".into(), seed: 0 },
                outcome: JobOutcome::Completed(
                    JobOutput::default().int("cycles", 120).float("rate", 0.5).text("status", "ok"),
                ),
                wall: Duration::from_millis(3),
                queued: Duration::ZERO,
            },
            JobResult {
                job: JobDesc { id: 1, workload: "w\"x".into(), config: "default".into(), seed: 1 },
                outcome: JobOutcome::Crashed { message: "index out of bounds\n(line 3)".into() },
                wall: Duration::from_millis(1),
                queued: Duration::ZERO,
            },
        ];
        let agg = aggregate(&results);
        CampaignReport {
            spec,
            results,
            aggregate: agg,
            timing: Timing {
                workers: 2,
                total_ms: 3.5,
                sum_job_ms: 4.0,
                speedup: 4.0 / 3.5,
                per_job_ms: vec![3.0, 1.0],
            },
        }
    }

    #[test]
    fn deterministic_json_is_valid_and_escaped() {
        let j = sample_report().deterministic_json();
        // Structure smoke checks (no serde available to parse).
        assert!(j.starts_with('{') && j.ends_with("}\n"), "{j}");
        assert!(j.contains("\"campaign\":\"demo\""));
        assert!(j.contains("\"workload\":\"w\\\"x\""), "quote escaping: {j}");
        assert!(j.contains("\"outcome\":\"crashed\""));
        assert!(j.contains("\\n(line 3)"), "newline escaping: {j}");
        assert!(j.contains("\"cycles\":120"));
        assert!(j.contains("\"rate\":0.5"));
        assert!(!j.contains("timing"), "deterministic section must exclude timing");
        // Balanced braces/brackets (cheap well-formedness check; no strings
        // in this fixture contain braces).
        let opens = j.matches(['{', '[']).count();
        let closes = j.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{j}");
    }

    #[test]
    fn full_json_adds_timing() {
        let j = sample_report().json();
        assert!(j.contains("\"timing\":{\"workers\":2"));
        assert!(j.contains("\"per_job_ms\":[3.0,1.0]"));
        assert!(j.contains("\"speedup\":"));
    }

    #[test]
    fn floats_render_deterministically() {
        let mut w = JsonWriter::new();
        w.float(1.0);
        w.raw(" ");
        w.float(0.1);
        w.raw(" ");
        w.float(f64::NAN);
        assert_eq!(w.finish(), "1.0 0.1 null\n");
    }
}
