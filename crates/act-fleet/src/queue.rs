//! The shared work queue.
//!
//! Deliberately minimal: the expanded job list is immutable, so "the queue"
//! is one atomic cursor over a slice. Workers claim the next unclaimed job
//! with a single `fetch_add` — no locks, no channels on the claim path, and
//! (because each job owns its whole `Machine`/`ActModule` pipeline) no
//! shared mutable state afterwards either. Claim order is scheduling-
//! dependent; *result* order is not, because the aggregator re-indexes by
//! job id (see `worker`/`aggregate`).

use crate::spec::JobDesc;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A lock-free multi-consumer view over an immutable job list.
pub struct JobQueue<'a> {
    jobs: &'a [JobDesc],
    next: AtomicUsize,
}

impl<'a> JobQueue<'a> {
    /// A queue over `jobs` with nothing claimed yet.
    pub fn new(jobs: &'a [JobDesc]) -> Self {
        JobQueue { jobs, next: AtomicUsize::new(0) }
    }

    /// Claim the next job, or `None` when the grid is exhausted.
    pub fn claim(&self) -> Option<&'a JobDesc> {
        // Relaxed is enough: the slice is immutable and the cursor is the
        // only coordination; result movement synchronizes via the workers'
        // result channel.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.jobs.get(i)
    }

    /// Total number of jobs (claimed or not).
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue started empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    #[test]
    fn claims_each_job_exactly_once() {
        let mut spec = CampaignSpec::new("t", "run", &["a"]);
        spec.seeds = (0..100).collect();
        let jobs = spec.expand();
        let queue = JobQueue::new(&jobs);
        let seen: std::sync::Mutex<Vec<usize>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(job) = queue.claim() {
                        seen.lock().unwrap().push(job.id);
                    }
                });
            }
        });
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
        assert!(queue.claim().is_none());
    }
}
