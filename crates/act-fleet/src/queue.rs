//! The shared work queues.
//!
//! Two shapes, one per workload pattern:
//!
//! * [`JobQueue`] — campaigns. The expanded job list is immutable, so "the
//!   queue" is one atomic cursor over a slice. Workers claim the next
//!   unclaimed job with a single `fetch_add` — no locks, no channels on the
//!   claim path, and (because each job owns its whole `Machine`/`ActModule`
//!   pipeline) no shared mutable state afterwards either. Claim order is
//!   scheduling-dependent; *result* order is not, because the aggregator
//!   re-indexes by job id (see `worker`/`aggregate`).
//! * [`BoundedQueue`] — long-lived services (`act-serve`). Work arrives
//!   over time from producers the consumer does not control, so the queue
//!   is a bounded MPMC channel: `try_push` fails fast when full (the
//!   producer turns that into a backpressure reply instead of buffering
//!   unboundedly), `pop` blocks until an item or close, and `close`
//!   initiates graceful drain — queued items are still handed out, then
//!   every consumer sees `None`.

use crate::spec::JobDesc;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A lock-free multi-consumer view over an immutable job list.
pub struct JobQueue<'a> {
    jobs: &'a [JobDesc],
    next: AtomicUsize,
}

impl<'a> JobQueue<'a> {
    /// A queue over `jobs` with nothing claimed yet.
    pub fn new(jobs: &'a [JobDesc]) -> Self {
        JobQueue { jobs, next: AtomicUsize::new(0) }
    }

    /// Claim the next job, or `None` when the grid is exhausted.
    pub fn claim(&self) -> Option<&'a JobDesc> {
        // Relaxed is enough: the slice is immutable and the cursor is the
        // only coordination; result movement synchronizes via the workers'
        // result channel.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.jobs.get(i)
    }

    /// Total number of jobs (claimed or not).
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue started empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// A bounded multi-producer/multi-consumer FIFO for long-lived services.
///
/// Unlike [`JobQueue`], items arrive over time: producers `try_push` (and
/// get the item back when the queue is full — backpressure, never silent
/// drop), consumers block in [`pop`](BoundedQueue::pop) until an item
/// arrives or the queue is closed. [`close`](BoundedQueue::close) starts a
/// graceful drain: already-queued items are still popped, new pushes are
/// refused, and once empty every consumer unblocks with `None`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<BoundedInner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct BoundedInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(BoundedInner { items: VecDeque::new(), closed: false }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item`, or hand it back when the queue is full or closed —
    /// the caller decides what backpressure looks like (e.g. a `BUSY`
    /// reply).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        // notify_all, not notify_one: a consumer parked in
        // [`drain_matching`](BoundedQueue::drain_matching) whose predicate
        // rejects this item would otherwise swallow the only wakeup and
        // leave a `pop`-blocked consumer asleep with work queued.
        self.nonempty.notify_all();
        Ok(())
    }

    /// Dequeue the oldest item, blocking until one arrives. Returns `None`
    /// only after [`close`](BoundedQueue::close) *and* the queue has
    /// drained — a consumer loop `while let Some(job) = q.pop()` therefore
    /// finishes all accepted work before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).expect("queue lock");
        }
    }

    /// Selectively dequeue up to `max` items matching `pred`, waiting
    /// until `deadline` for at least one match — the gather half of a
    /// request-coalescing scheduler. Non-matching items are left queued
    /// *in order* for other consumers.
    ///
    /// Returns as soon as a scan finds one or more matches (so a gatherer
    /// loops until its batch is full or this returns empty), and returns
    /// an empty vector when the deadline passes or the queue closes with
    /// no match. Each arrival re-triggers a scan, so a matching item
    /// pushed mid-wait is picked up immediately.
    pub fn drain_matching<F>(&self, max: usize, deadline: std::time::Instant, pred: F) -> Vec<T>
    where
        F: Fn(&T) -> bool,
    {
        fn scan<T>(
            items: &mut VecDeque<T>,
            got: &mut Vec<T>,
            max: usize,
            pred: &impl Fn(&T) -> bool,
        ) {
            let mut i = 0;
            while i < items.len() && got.len() < max {
                if pred(&items[i]) {
                    got.push(items.remove(i).expect("index in bounds"));
                } else {
                    i += 1;
                }
            }
        }
        let mut got = Vec::new();
        if max == 0 {
            return got;
        }
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            scan(&mut inner.items, &mut got, max, &pred);
            if !got.is_empty() || inner.closed {
                return got;
            }
            let now = std::time::Instant::now();
            let Some(wait) = deadline.checked_duration_since(now).filter(|w| !w.is_zero()) else {
                return got;
            };
            let (guard, timeout) = self.nonempty.wait_timeout(inner, wait).expect("queue lock");
            inner = guard;
            if timeout.timed_out() {
                // Final scan: an item may have landed between the last
                // scan and the deadline expiring.
                scan(&mut inner.items, &mut got, max, &pred);
                return got;
            }
        }
    }

    /// Refuse new items and wake blocked consumers; queued items still
    /// drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.nonempty.notify_all();
    }

    /// Whether [`close`](BoundedQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Items currently queued (racy by nature; for observability only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (racy; observability only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    #[test]
    fn claims_each_job_exactly_once() {
        let mut spec = CampaignSpec::new("t", "run", &["a"]);
        spec.seeds = (0..100).collect();
        let jobs = spec.expand();
        let queue = JobQueue::new(&jobs);
        let seen: std::sync::Mutex<Vec<usize>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(job) = queue.claim() {
                        seen.lock().unwrap().push(job.id);
                    }
                });
            }
        });
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
        assert!(queue.claim().is_none());
    }

    #[test]
    fn bounded_queue_backpressures_when_full() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue hands the item back");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop is reusable");
    }

    #[test]
    fn bounded_queue_drains_after_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(9), Err(9), "closed queue refuses new items");
        assert_eq!(q.pop(), Some(1), "queued items still drain");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed unblocks consumers");
    }

    #[test]
    fn bounded_queue_wakes_blocked_consumers() {
        let q: std::sync::Arc<BoundedQueue<u32>> = std::sync::Arc::new(BoundedQueue::new(8));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for v in 0..30 {
            // Retry on backpressure: consumers are draining concurrently.
            let mut item = v;
            while let Err(back) = q.try_push(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>(), "every item popped exactly once");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bounded_queue_rejects_zero_capacity() {
        let _ = BoundedQueue::<u32>::new(0);
    }

    #[test]
    fn drain_matching_takes_only_matches_and_keeps_order() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.try_push(v).unwrap();
        }
        let now = std::time::Instant::now();
        let evens = q.drain_matching(10, now, |v| v % 2 == 0);
        assert_eq!(evens, vec![2, 4, 6]);
        assert_eq!(q.pop(), Some(1), "non-matching items stay, in order");
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn drain_matching_respects_max() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        for v in 0..6 {
            q.try_push(v).unwrap();
        }
        let got = q.drain_matching(2, std::time::Instant::now(), |_| true);
        assert_eq!(got, vec![0, 1]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn drain_matching_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        let start = std::time::Instant::now();
        let deadline = start + std::time::Duration::from_millis(40);
        let got = q.drain_matching(4, deadline, |v| *v == 99);
        assert!(got.is_empty(), "no match ever arrives");
        assert!(start.elapsed() >= std::time::Duration::from_millis(40), "waited to deadline");
        assert_eq!(q.pop(), Some(7), "the non-match is untouched");
    }

    #[test]
    fn drain_matching_wakes_on_midwait_arrival() {
        let q: std::sync::Arc<BoundedQueue<u32>> = std::sync::Arc::new(BoundedQueue::new(4));
        let qc = q.clone();
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            qc.try_push(42).unwrap();
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let got = q.drain_matching(1, deadline, |v| *v == 42);
        pusher.join().unwrap();
        assert_eq!(got, vec![42], "a matching arrival ends the wait early");
    }

    #[test]
    fn drain_matching_returns_empty_on_close() {
        let q: std::sync::Arc<BoundedQueue<u32>> = std::sync::Arc::new(BoundedQueue::new(4));
        let qc = q.clone();
        let closer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            qc.close();
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let got = q.drain_matching(1, deadline, |_| true);
        closer.join().unwrap();
        assert!(got.is_empty(), "close unblocks the gatherer");
    }
}
