//! Declarative campaign specifications.
//!
//! A campaign is a grid — workloads × configs × seeds — plus a `kind`
//! naming the per-job procedure (the *executor*; see `act-bench`'s
//! `campaign` module for the standard ones). Specs are plain text so they
//! can be checked in next to experiment results:
//!
//! ```text
//! # table5-style diagnosis campaign
//! name = bugs-nightly
//! kind = diagnose
//! workloads = aget, apache, memcached
//! configs = default
//! seeds = 0..3
//! traces = 10
//! ```
//!
//! `key = value` per line, `#` comments. `workloads` and `configs` are
//! comma-separated lists; `seeds` is either a comma list (`0, 7, 9`) or a
//! half-open range (`0..8`). Unknown keys are collected into
//! [`CampaignSpec::params`] for the executor to interpret (e.g. `traces`,
//! `max_tries`). The expansion order — workload-major, then config, then
//! seed — fixes every job's id, which is what the determinism guarantee of
//! the aggregate report is keyed on.

use crate::error::SpecError;
use std::collections::BTreeMap;
use std::fmt;

/// The canonical identity of a trained model: workload × topology × seed.
///
/// This is the one key type shared by everything that names models — the
/// `act-serve` model cache (memory map, on-disk file stems) and campaign
/// jobs that pin a topology. Its [canonical string form](ModelKey::canonical)
/// is stable because model files persisted under it must keep resolving
/// across versions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Workload name.
    pub workload: String,
    /// Input window length (dependences per sequence).
    pub seq_len: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training seed.
    pub seed: u64,
}

impl ModelKey {
    /// Build a key, clamping topology axes to at least 1 (a zero axis is
    /// "use the default", which callers resolve before keying).
    pub fn new(workload: &str, seq_len: usize, hidden: usize, seed: u64) -> ModelKey {
        ModelKey {
            workload: workload.to_string(),
            seq_len: seq_len.max(1),
            hidden: hidden.max(1),
            seed,
        }
    }

    /// The single canonical string form, `{workload}-n{seq_len}-h{hidden}-s{seed}`
    /// — used for cache file stems and human-readable labels alike.
    pub fn canonical(&self) -> String {
        format!("{}-n{}-h{}-s{}", self.workload, self.seq_len, self.hidden, self.seed)
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-n{}-h{}-s{}", self.workload, self.seq_len, self.hidden, self.seed)
    }
}

/// One cell of the campaign grid: what a single worker invocation runs.
///
/// A job owns its whole pipeline — the executor builds the workload,
/// machine, and any ACT modules *inside* the job from `seed`, so jobs share
/// no mutable state and the hot path takes no locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDesc {
    /// Position in the expanded grid; results are re-ordered by this id, so
    /// reports do not depend on scheduling.
    pub id: usize,
    /// Workload name (resolved by the executor, e.g. via `act-workloads`).
    pub workload: String,
    /// Config-variant label (executor-interpreted; `"default"` if the spec
    /// lists none).
    pub config: String,
    /// Base seed for everything random in the job.
    pub seed: u64,
}

impl JobDesc {
    /// The identity of the model this job would train or load at a given
    /// topology — the same key the `act-serve` cache uses.
    pub fn model_key(&self, seq_len: usize, hidden: usize) -> ModelKey {
        ModelKey::new(&self.workload, seq_len, hidden, self.seed)
    }
}

/// A parsed campaign: the grid plus executor-specific parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (report header; defaults to `"campaign"`).
    pub name: String,
    /// Executor selector (`run`, `train`, `diagnose`, `overhead`, ...).
    pub kind: String,
    /// Workload axis. Must be non-empty.
    pub workloads: Vec<String>,
    /// Config-variant axis. Never empty (defaults to `["default"]`).
    pub configs: Vec<String>,
    /// Seed axis. Never empty (defaults to `[0]`).
    pub seeds: Vec<u64>,
    /// Remaining `key = value` pairs, for the executor.
    pub params: BTreeMap<String, String>,
}

impl CampaignSpec {
    /// A minimal spec for `kind` over `workloads`, one seed, default config.
    pub fn new(name: &str, kind: &str, workloads: &[&str]) -> Self {
        CampaignSpec {
            name: name.to_string(),
            kind: kind.to_string(),
            workloads: workloads.iter().map(|s| s.to_string()).collect(),
            configs: vec!["default".to_string()],
            seeds: vec![0],
            params: BTreeMap::new(),
        }
    }

    /// Parse the text spec format described at module level.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut name = None;
        let mut kind = None;
        let mut workloads = Vec::new();
        let mut configs = Vec::new();
        let mut seeds = Vec::new();
        let mut params = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| SpecError::Syntax {
                line: lineno + 1,
                message: format!("expected `key = value`, got `{line}`"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => name = Some(value.to_string()),
                "kind" => kind = Some(value.to_string()),
                "workloads" => workloads = split_list(value),
                "configs" => configs = split_list(value),
                "seeds" => {
                    seeds = parse_seeds(value)
                        .map_err(|message| SpecError::Syntax { line: lineno + 1, message })?
                }
                _ => {
                    params.insert(key.to_string(), value.to_string());
                }
            }
        }
        if workloads.is_empty() {
            return Err(SpecError::NoWorkloads);
        }
        if configs.is_empty() {
            configs.push("default".to_string());
        }
        if seeds.is_empty() {
            seeds.push(0);
        }
        Ok(CampaignSpec {
            name: name.unwrap_or_else(|| "campaign".to_string()),
            kind: kind.ok_or(SpecError::MissingKind)?,
            workloads,
            configs,
            seeds,
            params,
        })
    }

    /// An executor parameter, parsed, with a default.
    pub fn param_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.params.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Expand the grid into jobs, workload-major. Job ids are the positions
    /// in this fixed order — the anchor for deterministic aggregation.
    pub fn expand(&self) -> Vec<JobDesc> {
        let mut jobs =
            Vec::with_capacity(self.workloads.len() * self.configs.len() * self.seeds.len());
        for workload in &self.workloads {
            for config in &self.configs {
                for &seed in &self.seeds {
                    jobs.push(JobDesc {
                        id: jobs.len(),
                        workload: workload.clone(),
                        config: config.clone(),
                        seed,
                    });
                }
            }
        }
        jobs
    }
}

fn split_list(value: &str) -> Vec<String> {
    value.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

fn parse_seeds(value: &str) -> Result<Vec<u64>, String> {
    if let Some((lo, hi)) = value.split_once("..") {
        let lo: u64 = lo.trim().parse().map_err(|_| format!("bad seed range start `{lo}`"))?;
        let hi: u64 = hi.trim().parse().map_err(|_| format!("bad seed range end `{hi}`"))?;
        if lo >= hi {
            return Err(format!("empty seed range `{value}`"));
        }
        return Ok((lo..hi).collect());
    }
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let spec = CampaignSpec::parse(
            "# demo\nname = nightly\nkind = diagnose\nworkloads = aget, apache\n\
             configs = default, big-buffer\nseeds = 0..3\ntraces = 12\n",
        )
        .unwrap();
        assert_eq!(spec.name, "nightly");
        assert_eq!(spec.kind, "diagnose");
        assert_eq!(spec.workloads, ["aget", "apache"]);
        assert_eq!(spec.configs, ["default", "big-buffer"]);
        assert_eq!(spec.seeds, [0, 1, 2]);
        assert_eq!(spec.param_or("traces", 0usize), 12);
        assert_eq!(spec.param_or("max_tries", 20u64), 20);
    }

    #[test]
    fn seed_lists_and_defaults() {
        let spec = CampaignSpec::parse("kind = run\nworkloads = fft\nseeds = 4, 9\n").unwrap();
        assert_eq!(spec.seeds, [4, 9]);
        assert_eq!(spec.configs, ["default"]);
        assert_eq!(spec.name, "campaign");
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(CampaignSpec::parse("kind = run\n").is_err(), "no workloads");
        assert!(CampaignSpec::parse("workloads = fft\n").is_err(), "no kind");
        assert!(CampaignSpec::parse("kind = run\nworkloads = fft\nseeds = 5..2\n").is_err());
        assert!(CampaignSpec::parse("kind = run\nworkloads = fft\nnot a kv line\n").is_err());
    }

    #[test]
    fn model_key_canonical_form_is_stable() {
        let key = ModelKey::new("apache", 5, 12, 7);
        assert_eq!(key.canonical(), "apache-n5-h12-s7");
        assert_eq!(key.to_string(), key.canonical());
        // Zero topology axes clamp to 1 (the "resolve defaults first" rule).
        assert_eq!(ModelKey::new("seq", 0, 0, 0).canonical(), "seq-n1-h1-s0");
        let job = JobDesc { id: 0, workload: "apache".into(), config: "default".into(), seed: 7 };
        assert_eq!(job.model_key(5, 12), key);
    }

    #[test]
    fn expansion_is_workload_major_with_dense_ids() {
        let mut spec = CampaignSpec::new("t", "run", &["a", "b"]);
        spec.configs = vec!["x".into(), "y".into()];
        spec.seeds = vec![0, 1, 2];
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 12);
        assert!(jobs.iter().enumerate().all(|(i, j)| j.id == i));
        assert_eq!(
            (jobs[0].workload.as_str(), jobs[0].config.as_str(), jobs[0].seed),
            ("a", "x", 0)
        );
        assert_eq!(
            (jobs[3].workload.as_str(), jobs[3].config.as_str(), jobs[3].seed),
            ("a", "y", 0)
        );
        assert_eq!(
            (jobs[6].workload.as_str(), jobs[6].config.as_str(), jobs[6].seed),
            ("b", "x", 0)
        );
        assert_eq!(jobs[11].seed, 2);
    }
}
