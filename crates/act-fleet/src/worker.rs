//! Worker threads and failure isolation.
//!
//! Each worker pulls from the [`JobQueue`](crate::queue::JobQueue), runs the
//! executor inside `catch_unwind`, stamps the wall-clock time, and sends the
//! result home over a channel. A panicking job becomes
//! [`JobOutcome::Crashed`] — it is recorded like any other result and never
//! poisons the campaign (a poisoned job's worker keeps pulling). The
//! collector re-indexes results by job id, which is what makes the
//! aggregate report independent of worker count and scheduling.

use crate::spec::JobDesc;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A single metric value in a job's output.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// An integer metric (counts, ranks, cycles).
    Int(i64),
    /// A floating-point metric (rates, percentages).
    Float(f64),
    /// A non-numeric metric (statuses, topology labels). Excluded from
    /// numeric aggregation but carried into the report.
    Text(String),
}

impl Metric {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Metric::Int(v) => Some(*v as f64),
            Metric::Float(v) => Some(*v),
            Metric::Text(_) => None,
        }
    }
}

/// What a completed job hands back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobOutput {
    /// Named metrics, in the executor's emission order (kept stable so the
    /// report is byte-identical across runs).
    pub metrics: Vec<(String, Metric)>,
    /// Pre-rendered human-readable lines (e.g. a table row); binaries print
    /// these in job order after the campaign finishes.
    pub lines: Vec<String>,
}

impl JobOutput {
    /// Append an integer metric.
    pub fn int(mut self, key: &str, v: i64) -> Self {
        self.metrics.push((key.to_string(), Metric::Int(v)));
        self
    }

    /// Append a float metric.
    pub fn float(mut self, key: &str, v: f64) -> Self {
        self.metrics.push((key.to_string(), Metric::Float(v)));
        self
    }

    /// Append a text metric.
    pub fn text(mut self, key: &str, v: &str) -> Self {
        self.metrics.push((key.to_string(), Metric::Text(v.to_string())));
        self
    }

    /// Append a display line.
    pub fn line(mut self, l: String) -> Self {
        self.lines.push(l);
        self
    }

    /// Look up a metric by key.
    pub fn metric(&self, key: &str) -> Option<&Metric> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, m)| m)
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The executor returned normally.
    Completed(JobOutput),
    /// The executor panicked; the payload is the panic message.
    Crashed {
        /// Panic payload rendered to text (`&str`/`String` payloads; other
        /// types become a placeholder).
        message: String,
    },
}

impl JobOutcome {
    /// Whether the job completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The output, if completed.
    pub fn output(&self) -> Option<&JobOutput> {
        match self {
            JobOutcome::Completed(out) => Some(out),
            JobOutcome::Crashed { .. } => None,
        }
    }
}

/// One finished job: description, outcome, and wall-clock time.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The grid cell that ran.
    pub job: JobDesc,
    /// How it ended.
    pub outcome: JobOutcome,
    /// Wall-clock time of the executor call (timing only — never part of
    /// the deterministic report section).
    pub wall: Duration,
    /// How long the job sat in the queue before a worker claimed it,
    /// measured from campaign start (timing only, like `wall`).
    pub queued: Duration,
}

/// Run every job across `workers` threads; results come back **ordered by
/// job id** regardless of scheduling.
///
/// The executor is shared by reference across workers, so it must be
/// [`Sync`]; everything job-specific should be built inside the call from
/// the [`JobDesc`] (that is what keeps jobs deterministic and lock-free).
pub fn run_jobs<F>(jobs: &[JobDesc], workers: usize, exec: &F) -> Vec<JobResult>
where
    F: Fn(&JobDesc) -> JobOutput + Sync,
{
    let workers = workers.max(1).min(jobs.len().max(1));
    let queue = crate::queue::JobQueue::new(jobs);
    let epoch = Instant::now();
    let (tx, rx) = mpsc::channel::<JobResult>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (queue, epoch) = (&queue, &epoch);
            s.spawn(move || {
                while let Some(job) = queue.claim() {
                    let queued = epoch.elapsed();
                    let start = Instant::now();
                    let outcome = match catch_unwind(AssertUnwindSafe(|| exec(job))) {
                        Ok(out) => JobOutcome::Completed(out),
                        Err(payload) => JobOutcome::Crashed { message: panic_message(&*payload) },
                    };
                    let result =
                        JobResult { job: job.clone(), outcome, wall: start.elapsed(), queued };
                    if tx.send(result).is_err() {
                        break; // collector is gone; stop pulling
                    }
                }
            });
        }
        drop(tx);
        // Collect as results arrive (any order), then re-index by id.
        let mut slots: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
        for result in rx {
            let id = result.job.id;
            debug_assert!(slots[id].is_none(), "job {id} reported twice");
            slots[id] = Some(result);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(id, r)| r.unwrap_or_else(|| panic!("job {id} produced no result")))
            .collect()
    })
}

/// Map `f` over `items` across `workers` threads; results come back
/// **ordered by item index** regardless of scheduling.
///
/// This is the generic sibling of [`run_jobs`] for callers whose work units
/// are not campaign [`JobDesc`]s (e.g. the offline topology search fanning
/// training candidates). The same determinism contract applies: `f` must
/// depend only on its item (and index), so the result vector is identical
/// at any worker count. Unlike `run_jobs` there is no failure isolation —
/// a panic in `f` propagates to the caller with its original payload.
///
/// `workers <= 1` (or a single item) runs inline on the caller's thread
/// with no thread or channel overhead.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                if tx.send((i, r)).is_err() {
                    break; // collector is gone; stop pulling
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            match r {
                Ok(v) => slots[i] = Some(v),
                // Re-raise on the caller's thread with the worker's payload.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("item {i} produced no result")))
            .collect()
    })
}

/// Render a `catch_unwind` payload to text (`&str`/`String` payloads; other
/// types become a placeholder). Shared with `act-serve`'s request-level
/// crash isolation, which wants the same message shape in its error frames.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    #[test]
    fn results_come_back_in_id_order() {
        let mut spec = CampaignSpec::new("t", "run", &["w"]);
        spec.seeds = (0..24).collect();
        let jobs = spec.expand();
        let exec = |job: &JobDesc| {
            // Stagger finish times against claim order.
            std::thread::sleep(Duration::from_millis((job.seed % 3) * 2));
            JobOutput::default().int("seed", job.seed as i64)
        };
        let results = run_jobs(&jobs, 6, &exec);
        assert_eq!(results.len(), 24);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.job.id, i);
            assert_eq!(r.outcome.output().unwrap().metric("seed"), Some(&Metric::Int(i as i64)));
        }
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let jobs = CampaignSpec::new("t", "run", &["w"]).expand();
        let results = run_jobs(&jobs, 0, &|_| JobOutput::default());
        assert_eq!(results.len(), 1);
        assert!(results[0].outcome.is_completed());
    }

    #[test]
    fn parallel_map_preserves_index_order_at_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * v).collect();
        for workers in [0, 1, 2, 3, 8, 64] {
            let got = parallel_map(&items, workers, |i, &v| {
                // Stagger finish times against claim order.
                std::thread::sleep(Duration::from_millis((v % 3) * 2));
                assert_eq!(items[i], v);
                v * v
            });
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(&[] as &[u8], 4, |_, &v| v), Vec::<u8>::new());
        assert_eq!(parallel_map(&[7u8], 4, |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..16).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 4, |_, &v| {
                if v == 9 {
                    panic!("boom at {v}");
                }
                v
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        assert_eq!(panic_message(&*payload), "boom at 9");
    }
}
