//! # act-fleet — parallel campaign orchestration
//!
//! Every evaluation target in the ACT reproduction (tables, figures,
//! ablations) runs dozens of *independent* single-threaded `act-sim`
//! machines. This crate is the fan-out/aggregate layer over them: a
//! declarative campaign spec (workload × config × seed grid,
//! [`spec::CampaignSpec`]) expands into a job queue ([`queue::JobQueue`]),
//! jobs execute across worker threads ([`worker::run_jobs`]), and results
//! funnel into an aggregator ([`aggregate`]) and a structured report with
//! machine-readable JSON output ([`report::CampaignReport`]).
//!
//! Two guarantees shape the design:
//!
//! 1. **Determinism under parallelism.** Each job owns its entire
//!    deterministic pipeline (machine, RNG streams, ACT modules are built
//!    inside the job from its seed), results are re-indexed by job id, and
//!    aggregation folds in id order — so the same campaign and seeds
//!    produce a byte-identical `results` section at any `--jobs` count.
//!    Wall-clock timing lives in a separate `timing` section that is
//!    explicitly outside the guarantee.
//! 2. **Failure isolation.** A panicking job is caught on its worker,
//!    recorded as [`worker::JobOutcome::Crashed`], and the rest of the
//!    campaign proceeds; the crash is a row in the report, not the end of
//!    the run.
//!
//! This is also the substrate the paper's production story implies: many
//! deployed machines each contribute traces and failure reports to one
//! diagnosis pipeline. Executors live with their domains (see `act-bench`'s
//! `campaign` module for the table/figure executors and `act campaign` in
//! `act-cli` for the command-line entry).

pub mod aggregate;
pub mod queue;
pub mod report;
pub mod spec;
pub mod worker;

pub use aggregate::{Aggregate, MetricSummary};
pub use queue::BoundedQueue;
pub use report::{CampaignReport, Timing};
pub use spec::{CampaignSpec, JobDesc};
pub use worker::{panic_message, parallel_map, JobOutcome, JobOutput, JobResult, Metric};

use std::time::Instant;

/// Worker count to use when the caller does not specify one: the host's
/// available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run a whole campaign: expand the grid, execute every job across
/// `workers` threads, aggregate, and stamp timing.
///
/// The executor maps one [`JobDesc`] to a [`JobOutput`]; it is called
/// concurrently from worker threads and must build all per-job state
/// internally from the description (see the crate docs for why).
pub fn run_campaign<F>(spec: &CampaignSpec, workers: usize, exec: F) -> CampaignReport
where
    F: Fn(&JobDesc) -> JobOutput + Sync,
{
    let jobs = spec.expand();
    let start = Instant::now();
    let results = worker::run_jobs(&jobs, workers, &exec);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let per_job_ms: Vec<f64> = results.iter().map(|r| r.wall.as_secs_f64() * 1e3).collect();
    let sum_job_ms: f64 = per_job_ms.iter().sum();
    let aggregate = aggregate::aggregate(&results);
    CampaignReport {
        spec: spec.clone(),
        results,
        aggregate,
        timing: Timing {
            workers: workers.max(1).min(jobs.len().max(1)),
            total_ms,
            sum_job_ms,
            speedup: if total_ms > 0.0 { sum_job_ms / total_ms } else { 1.0 },
            per_job_ms,
        },
    }
}
