//! # act-fleet — parallel campaign orchestration
//!
//! Every evaluation target in the ACT reproduction (tables, figures,
//! ablations) runs dozens of *independent* single-threaded `act-sim`
//! machines. This crate is the fan-out/aggregate layer over them: a
//! declarative campaign spec (workload × config × seed grid,
//! [`spec::CampaignSpec`]) expands into a job queue ([`queue::JobQueue`]),
//! jobs execute across worker threads ([`worker::run_jobs`]), and results
//! funnel into an aggregator ([`aggregate`]) and a structured report with
//! machine-readable JSON output ([`report::CampaignReport`]).
//!
//! Two guarantees shape the design:
//!
//! 1. **Determinism under parallelism.** Each job owns its entire
//!    deterministic pipeline (machine, RNG streams, ACT modules are built
//!    inside the job from its seed), results are re-indexed by job id, and
//!    aggregation folds in id order — so the same campaign and seeds
//!    produce a byte-identical `results` section at any `--jobs` count.
//!    Wall-clock timing lives in a separate `timing` section that is
//!    explicitly outside the guarantee.
//! 2. **Failure isolation.** A panicking job is caught on its worker,
//!    recorded as [`worker::JobOutcome::Crashed`], and the rest of the
//!    campaign proceeds; the crash is a row in the report, not the end of
//!    the run.
//!
//! This is also the substrate the paper's production story implies: many
//! deployed machines each contribute traces and failure reports to one
//! diagnosis pipeline. Executors live with their domains (see `act-bench`'s
//! `campaign` module for the table/figure executors and `act campaign` in
//! `act-cli` for the command-line entry).

pub mod aggregate;
pub mod error;
pub mod queue;
pub mod report;
pub mod spec;
pub mod worker;

pub use aggregate::{Aggregate, MetricSummary};
pub use error::SpecError;
pub use queue::BoundedQueue;
pub use report::{CampaignReport, Timing};
pub use spec::{CampaignSpec, JobDesc, ModelKey};
pub use worker::{panic_message, parallel_map, JobOutcome, JobOutput, JobResult, Metric};

use act_obs::{events, Level};
use std::time::Instant;

/// Worker count to use when the caller does not specify one: the host's
/// available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run a whole campaign: expand the grid, execute every job across
/// `workers` threads, aggregate, and stamp timing.
///
/// The executor maps one [`JobDesc`] to a [`JobOutput`]; it is called
/// concurrently from worker threads and must build all per-job state
/// internally from the description (see the crate docs for why).
pub fn run_campaign<F>(spec: &CampaignSpec, workers: usize, exec: F) -> CampaignReport
where
    F: Fn(&JobDesc) -> JobOutput + Sync,
{
    let jobs = spec.expand();
    let effective_workers = workers.max(1).min(jobs.len().max(1));
    events().emit(
        Level::Info,
        "fleet.campaign",
        format!(
            "campaign `{}` kind={} started: {} jobs across {} workers",
            spec.name,
            spec.kind,
            jobs.len(),
            effective_workers
        ),
    );
    let start = Instant::now();
    let results = worker::run_jobs(&jobs, workers, &exec);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let per_job_ms: Vec<f64> = results.iter().map(|r| r.wall.as_secs_f64() * 1e3).collect();
    let sum_job_ms: f64 = per_job_ms.iter().sum();
    let aggregate = aggregate::aggregate(&results);
    record_campaign_obs(spec, &results, total_ms);
    CampaignReport {
        spec: spec.clone(),
        results,
        aggregate,
        timing: Timing {
            workers: effective_workers,
            total_ms,
            sum_job_ms,
            speedup: if total_ms > 0.0 { sum_job_ms / total_ms } else { 1.0 },
            per_job_ms,
        },
    }
}

/// Publish a finished campaign's timing into the process-wide metrics
/// registry (per-job queue-wait and run-time histograms, outcome
/// counters) and emit progress events. Campaigns have no owning service
/// object, so the global registry is the natural home; the serve daemon,
/// by contrast, owns its own registry per server instance.
fn record_campaign_obs(spec: &CampaignSpec, results: &[JobResult], total_ms: f64) {
    let registry = act_obs::metrics::global();
    let queue_wait = registry.histogram("fleet_job_queue_wait_us", &act_obs::latency_bounds_us());
    let run_time = registry.histogram("fleet_job_run_us", &act_obs::latency_bounds_us());
    let completed = registry.counter("fleet_jobs_completed");
    let crashed = registry.counter("fleet_jobs_crashed");
    for result in results {
        queue_wait.observe(result.queued.as_micros() as u64);
        run_time.observe(result.wall.as_micros() as u64);
        match &result.outcome {
            JobOutcome::Completed(_) => completed.inc(),
            JobOutcome::Crashed { message } => {
                crashed.inc();
                events().emit(
                    Level::Warn,
                    "fleet.job",
                    format!("job {} ({}) crashed: {message}", result.job.id, result.job.workload),
                );
            }
        }
    }
    let crashes = results.iter().filter(|r| !r.outcome.is_completed()).count();
    events().emit(
        Level::Info,
        "fleet.campaign",
        format!(
            "campaign `{}` finished: {}/{} jobs ok in {total_ms:.0} ms",
            spec.name,
            results.len() - crashes,
            results.len()
        ),
    );
}
