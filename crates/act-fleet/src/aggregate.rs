//! Deterministic aggregation of job results.
//!
//! Everything here folds over results **in job-id order** (the order
//! [`run_jobs`](crate::worker::run_jobs) returns), so sums and means are
//! bit-identical at any worker count: same jobs, same values, same fold
//! order. Only completed jobs contribute to metric summaries; crashed jobs
//! are counted, not averaged.

use crate::worker::JobResult;

/// Summary statistics for one metric key across completed jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// The metric key.
    pub key: String,
    /// Completed jobs that emitted this key with a numeric value.
    pub count: usize,
    /// Sum over those jobs, folded in job-id order.
    pub sum: f64,
    /// `sum / count`.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Campaign-level rollup of all job results.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Total jobs in the grid.
    pub total: usize,
    /// Jobs whose executor returned normally.
    pub completed: usize,
    /// Jobs whose executor panicked.
    pub crashed: usize,
    /// Per-key numeric summaries, sorted by key.
    pub metrics: Vec<MetricSummary>,
}

impl Aggregate {
    /// Look up a metric summary by key.
    pub fn metric(&self, key: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.key == key)
    }
}

/// Fold `results` (already in job-id order) into an [`Aggregate`].
pub fn aggregate(results: &[JobResult]) -> Aggregate {
    let completed = results.iter().filter(|r| r.outcome.is_completed()).count();
    // Key discovery in first-seen order, then sorted: stable regardless of
    // which keys which jobs emit.
    let mut keys: Vec<String> = Vec::new();
    for r in results {
        if let Some(out) = r.outcome.output() {
            for (k, m) in &out.metrics {
                if m.as_f64().is_some() && !keys.iter().any(|e| e == k) {
                    keys.push(k.clone());
                }
            }
        }
    }
    keys.sort_unstable();
    let metrics = keys
        .into_iter()
        .map(|key| {
            let mut count = 0usize;
            let mut sum = 0.0f64;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for r in results {
                let Some(v) =
                    r.outcome.output().and_then(|out| out.metric(&key)).and_then(|m| m.as_f64())
                else {
                    continue;
                };
                count += 1;
                sum += v;
                min = min.min(v);
                max = max.max(v);
            }
            MetricSummary { key, count, sum, mean: sum / count.max(1) as f64, min, max }
        })
        .collect();
    Aggregate { total: results.len(), completed, crashed: results.len() - completed, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobDesc;
    use crate::worker::{JobOutcome, JobOutput, JobResult};
    use std::time::Duration;

    fn job(id: usize) -> JobDesc {
        JobDesc { id, workload: "w".into(), config: "default".into(), seed: id as u64 }
    }

    fn done(id: usize, out: JobOutput) -> JobResult {
        JobResult {
            job: job(id),
            outcome: JobOutcome::Completed(out),
            wall: Duration::ZERO,
            queued: Duration::ZERO,
        }
    }

    #[test]
    fn aggregates_numeric_metrics_and_counts_crashes() {
        let results = vec![
            done(0, JobOutput::default().int("rank", 1).float("pct", 50.0).text("status", "ok")),
            done(1, JobOutput::default().int("rank", 3).float("pct", 100.0)),
            JobResult {
                job: job(2),
                outcome: JobOutcome::Crashed { message: "boom".into() },
                wall: Duration::ZERO,
                queued: Duration::ZERO,
            },
        ];
        let agg = aggregate(&results);
        assert_eq!((agg.total, agg.completed, agg.crashed), (3, 2, 1));
        // Text metrics are excluded; keys are sorted.
        assert_eq!(agg.metrics.iter().map(|m| m.key.as_str()).collect::<Vec<_>>(), ["pct", "rank"]);
        let rank = &agg.metrics[1];
        assert_eq!((rank.count, rank.sum, rank.mean, rank.min, rank.max), (2, 4.0, 2.0, 1.0, 3.0));
    }

    #[test]
    fn empty_campaign_aggregates_cleanly() {
        let agg = aggregate(&[]);
        assert_eq!((agg.total, agg.completed, agg.crashed), (0, 0, 0));
        assert!(agg.metrics.is_empty());
    }
}
