//! Typed campaign-spec errors.
//!
//! `act-fleet` sits below `act-core` in the crate graph, so it cannot use
//! the workspace `ActError` directly; instead it defines [`SpecError`]
//! and `act-core` wraps it with a `From` conversion. Display output is
//! kept byte-identical to the pre-typed `String` errors so CLI messages
//! and tests are unchanged.

use std::fmt;

/// Why a campaign spec failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line failed to parse (bad `key = value` shape, bad seed syntax).
    Syntax {
        /// 1-based line number in the spec text.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The spec never set `kind`.
    MissingKind,
    /// The spec listed no workloads.
    NoWorkloads,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            SpecError::MissingKind => write!(f, "spec is missing `kind`"),
            SpecError::NoWorkloads => write!(f, "spec lists no workloads"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_strings() {
        let err = SpecError::Syntax { line: 3, message: "bad seed `x`".into() };
        assert_eq!(err.to_string(), "line 3: bad seed `x`");
        assert_eq!(SpecError::MissingKind.to_string(), "spec is missing `kind`");
        assert_eq!(SpecError::NoWorkloads.to_string(), "spec lists no workloads");
    }
}
