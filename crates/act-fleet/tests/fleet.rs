//! Integration tests for the fleet layer's two load-bearing guarantees:
//! determinism under parallelism and crash isolation.

use act_fleet::{run_campaign, CampaignSpec, JobDesc, JobOutput};
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};

/// A deterministic, seed-keyed stand-in for a simulation job: mixes the
/// job's grid coordinates into an RNG stream and does a little arithmetic,
/// with a scheduling-dependent sleep so parallel runs genuinely interleave.
fn sim_like(job: &JobDesc) -> JobOutput {
    let mut h: u64 = job.seed ^ 0x5eed;
    for b in job.workload.bytes().chain(job.config.bytes()) {
        h = h.wrapping_mul(31).wrapping_add(b as u64);
    }
    let mut rng = StdRng::seed_from_u64(h);
    let mut acc = 0i64;
    for _ in 0..1_000 {
        acc = acc.wrapping_add(rng.gen_range(-1000i64..1000));
    }
    // Perturb completion order without touching the result.
    std::thread::sleep(std::time::Duration::from_millis(job.seed % 4));
    JobOutput::default()
        .int("acc", acc)
        .float("acc_scaled", acc as f64 / 1e3)
        .text("status", "completed")
        .line(format!("{} {} {} -> {acc}", job.workload, job.config, job.seed))
}

fn grid_12() -> CampaignSpec {
    let mut spec = CampaignSpec::new("determinism", "sim-like", &["alpha", "beta"]);
    spec.configs = vec!["default".into(), "tuned".into()];
    spec.seeds = vec![0, 1, 2];
    spec
}

#[test]
fn aggregate_report_is_byte_identical_across_worker_counts() {
    let spec = grid_12();
    assert_eq!(spec.expand().len(), 12, "test wants a 12-job campaign");
    let serial = run_campaign(&spec, 1, sim_like);
    let parallel = run_campaign(&spec, 8, sim_like);
    // The deterministic section is the guarantee: byte-identical.
    assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
    // And it is meaningful: jobs differ from each other.
    let j = serial.deterministic_json();
    assert!(j.contains("\"acc\":"));
    // Repeat runs at the same worker count are stable too.
    assert_eq!(
        parallel.deterministic_json(),
        run_campaign(&spec, 8, sim_like).deterministic_json()
    );
}

#[test]
fn display_lines_preserve_job_order() {
    let spec = grid_12();
    let report = run_campaign(&spec, 8, sim_like);
    let lines: Vec<&str> = report.lines().collect();
    assert_eq!(lines.len(), 12);
    assert!(lines[0].starts_with("alpha default 0 "));
    assert!(lines[3].starts_with("alpha tuned 0 "));
    assert!(lines[6].starts_with("beta default 0 "));
    assert!(lines[11].starts_with("beta tuned 2 "));
}

#[test]
fn crashing_job_is_isolated_and_recorded() {
    let mut spec = CampaignSpec::new("crashes", "sim-like", &["alpha", "boom", "gamma"]);
    spec.seeds = vec![0, 1];
    let report = run_campaign(&spec, 4, |job: &JobDesc| {
        if job.workload == "boom" && job.seed == 1 {
            panic!("injected failure in {}/{}", job.workload, job.seed);
        }
        sim_like(job)
    });
    assert_eq!(report.aggregate.total, 6);
    assert_eq!(report.aggregate.crashed, 1);
    assert_eq!(report.aggregate.completed, 5);
    let crashed: Vec<_> = report.results.iter().filter(|r| !r.outcome.is_completed()).collect();
    assert_eq!(crashed.len(), 1);
    assert_eq!(crashed[0].job.workload, "boom");
    assert_eq!(crashed[0].job.seed, 1);
    match &crashed[0].outcome {
        act_fleet::JobOutcome::Crashed { message } => {
            assert!(message.contains("injected failure in boom/1"), "message: {message}");
        }
        other => panic!("expected crash, got {other:?}"),
    }
    // The report carries the crash as a row.
    let j = report.deterministic_json();
    assert!(j.contains("\"outcome\":\"crashed\""));
    assert!(j.contains("injected failure in boom/1"));
    // Aggregation only folded completed jobs.
    let acc = report.aggregate.metrics.iter().find(|m| m.key == "acc").unwrap();
    assert_eq!(acc.count, 5);
}

#[test]
fn timing_section_reports_speedup_inputs() {
    let report = run_campaign(&grid_12(), 2, sim_like);
    assert_eq!(report.timing.workers, 2);
    assert_eq!(report.timing.per_job_ms.len(), 12);
    assert!(report.timing.total_ms > 0.0);
    assert!((report.timing.sum_job_ms - report.timing.per_job_ms.iter().sum::<f64>()).abs() < 1e-9);
    let j = report.json();
    assert!(j.contains("\"timing\""));
    assert!(!report.deterministic_json().contains("\"timing\""));
}
