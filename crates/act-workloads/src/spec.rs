//! Workload descriptors: parameters, ground-truth bug signatures, and the
//! [`Workload`] trait the experiment harness drives.

use act_sim::events::RawDep;
use act_sim::isa::{Pc, Word};
use act_sim::outcome::RunOutcome;
use act_sim::program::Program;

/// Fixed code-length used to normalize instruction addresses for the
/// neural-network encoding, shared by *all* workloads and variants.
///
/// Using one constant (rather than each program's own length) keeps the
/// encoding of an instruction address stable when a program grows — the
/// paper's adaptivity experiments (Fig 7(b), Table VI) add new functions to
/// trained programs, and the old code's features must not shift.
pub const NORM_CODE_LEN: usize = 2048;

/// What kind of workload this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// A correct kernel used for training/overhead experiments (Table IV,
    /// Fig 7, Fig 8, Fig 9).
    CleanKernel,
    /// A workload modeling one of the paper's 11 real-world bugs (Table V).
    RealBug,
    /// A clean kernel plus a *new* buggy function absent from training
    /// (Table VI).
    InjectedBug,
}

/// The paper's bug taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugClass {
    /// Operations expected in one order can interleave in another.
    OrderViolation,
    /// A read-modify-write or check-then-act region is not atomic.
    AtomicityViolation,
    /// A sequential logic error triggered by particular inputs.
    Semantic,
    /// A memory-safety error (overflow / out-of-bounds read).
    BufferOverflow,
}

impl BugClass {
    /// Whether this class requires multiple threads to manifest.
    pub fn is_concurrency(&self) -> bool {
        matches!(self, BugClass::OrderViolation | BugClass::AtomicityViolation)
    }
}

/// Ground truth about a workload's bug, used to score diagnosis rankings.
#[derive(Debug, Clone)]
pub struct BugInfo {
    /// Human-readable description (the Table V "Bug Description" column).
    pub description: String,
    /// The bug's class.
    pub class: BugClass,
    /// Store PCs of the buggy communication (empty = any store).
    pub store_pcs: Vec<Pc>,
    /// Load PCs of the buggy communication.
    pub load_pcs: Vec<Pc>,
}

impl BugInfo {
    /// Whether `dep` is the buggy communication.
    pub fn matches(&self, dep: &RawDep) -> bool {
        let store_ok = self.store_pcs.is_empty() || self.store_pcs.contains(&dep.store_pc);
        let load_ok = self.load_pcs.is_empty() || self.load_pcs.contains(&dep.load_pc);
        store_ok && load_ok
    }

    /// Whether any dependence in `deps` is the buggy communication.
    pub fn matches_any(&self, deps: &[RawDep]) -> bool {
        deps.iter().any(|d| self.matches(d))
    }
}

/// Build-time parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Seed for input generation (kept separate from the machine's
    /// interleaving seed).
    pub seed: u64,
    /// Problem-size scale (arrays, iterations).
    pub size: usize,
    /// Worker threads for concurrent kernels.
    pub threads: usize,
    /// Whether to arrange the bug-triggering condition (the racy timing
    /// window, or the bug-triggering input shape). The *code* is identical
    /// either way; only data-segment parameters differ.
    pub trigger_bug: bool,
    /// For injected-bug workloads: include the new (untrained) function.
    pub new_code: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params { seed: 0, size: 16, threads: 4, trigger_bug: false, new_code: false }
    }
}

impl Params {
    /// Same parameters with a different seed.
    pub fn with_seed(self, seed: u64) -> Self {
        Params { seed, ..self }
    }

    /// Same parameters with the bug trigger set.
    pub fn triggered(self) -> Self {
        Params { trigger_bug: true, ..self }
    }
}

/// A concrete program built for specific parameters, with its oracle.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// The executable program.
    pub program: Program,
    /// The output a correct execution must produce for these parameters.
    pub expected_output: Vec<Word>,
    /// Ground-truth bug signature, if this workload carries a bug.
    pub bug: Option<BugInfo>,
}

impl BuiltWorkload {
    /// Whether `outcome` is a correct execution (ran to completion with the
    /// expected output).
    pub fn is_correct(&self, outcome: &RunOutcome) -> bool {
        matches!(outcome, RunOutcome::Completed { output } if *output == self.expected_output)
    }

    /// Whether `outcome` is a failure (crash, deadlock, timeout, or wrong
    /// output).
    pub fn is_failure(&self, outcome: &RunOutcome) -> bool {
        !self.is_correct(outcome)
    }
}

/// A parameterized workload program.
///
/// `Send + Sync` is part of the contract: workload definitions are
/// immutable descriptions (all state lives in the built program), and the
/// fleet layer (`act-fleet`) resolves and builds them from worker threads.
pub trait Workload: Send + Sync {
    /// Short name, e.g. `"apache"`.
    fn name(&self) -> &'static str;

    /// The workload's kind.
    fn kind(&self) -> WorkloadKind;

    /// Build the program and oracle for `params`.
    fn build(&self, params: &Params) -> BuiltWorkload;

    /// Reasonable default parameters for experiments.
    fn default_params(&self) -> Params {
        Params::default()
    }

    /// Code length to normalize instruction addresses by, when it must be
    /// fixed independently of the built program (workloads whose code grows
    /// across variants override this so shared code's features stay put).
    /// `None` means "use the built program's length".
    fn norm_code_len(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_info_matching() {
        let bug = BugInfo {
            description: "test".into(),
            class: BugClass::AtomicityViolation,
            store_pcs: vec![5, 6],
            load_pcs: vec![9],
        };
        let hit = RawDep { store_pc: 5, load_pc: 9, inter_thread: true };
        let wrong_store = RawDep { store_pc: 7, load_pc: 9, inter_thread: true };
        let wrong_load = RawDep { store_pc: 5, load_pc: 8, inter_thread: true };
        assert!(bug.matches(&hit));
        assert!(!bug.matches(&wrong_store));
        assert!(!bug.matches(&wrong_load));
        assert!(bug.matches_any(&[wrong_store, hit]));
        assert!(!bug.matches_any(&[wrong_store, wrong_load]));
    }

    #[test]
    fn empty_store_set_matches_any_store() {
        let bug = BugInfo {
            description: "t".into(),
            class: BugClass::BufferOverflow,
            store_pcs: vec![],
            load_pcs: vec![9],
        };
        assert!(bug.matches(&RawDep { store_pc: 123, load_pc: 9, inter_thread: false }));
    }

    #[test]
    fn bug_class_concurrency_split() {
        assert!(BugClass::OrderViolation.is_concurrency());
        assert!(BugClass::AtomicityViolation.is_concurrency());
        assert!(!BugClass::Semantic.is_concurrency());
        assert!(!BugClass::BufferOverflow.is_concurrency());
    }

    #[test]
    fn is_correct_requires_exact_output() {
        let w = BuiltWorkload {
            program: {
                let mut a = act_sim::asm::Asm::new();
                a.halt();
                a.finish().unwrap()
            },
            expected_output: vec![1, 2],
            bug: None,
        };
        assert!(w.is_correct(&RunOutcome::Completed { output: vec![1, 2] }));
        assert!(w.is_failure(&RunOutcome::Completed { output: vec![1, 3] }));
        assert!(w.is_failure(&RunOutcome::Deadlock { cycle: 1 }));
    }

    #[test]
    fn params_builders() {
        let p = Params::default().with_seed(9).triggered();
        assert_eq!(p.seed, 9);
        assert!(p.trigger_bug);
        assert!(!p.new_code);
    }
}
