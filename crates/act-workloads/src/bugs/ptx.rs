//! `ptx` — the buffer overflow of Fig 2(e): the escape-handling copy loop
//! consumes two characters per backslash, so an odd run of backslashes at
//! the end of `string` steps over the terminator and reads the word after
//! the buffer — which belongs to an unrelated variable written by `S1`.
//! The dependence `S1→S3` replaces the valid `S2→S3`. Completes with
//! corrupted output.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The ptx-style escape-scan buffer overflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ptx;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);

/// The backslash "character".
const BACKSLASH: i64 = 92;

fn input_chars(p: &Params) -> Vec<i64> {
    let base: Vec<i64> = (0..6).map(|i| 10 + (i + p.seed as i64 % 5) % 20).collect();
    let mut s = base;
    if p.trigger_bug {
        // Odd number of consecutive backslashes at the end.
        s.push(BACKSLASH);
    } else if p.seed % 2 == 0 {
        // Escaped pair in the middle (exercises the escape path safely).
        s.insert(3, BACKSLASH);
    }
    s
}

/// Correct semantics: a backslash copies the next character literally
/// (an unpaired final backslash copies nothing).
fn oracle(chars: &[i64]) -> Vec<i64> {
    let mut sum = 0i64;
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == BACKSLASH {
            if i + 1 < chars.len() {
                sum = sum.wrapping_add(chars[i + 1]).wrapping_mul(3) % 100_000;
            }
            i += 2;
        } else {
            sum = sum.wrapping_add(chars[i]).wrapping_mul(3) % 100_000;
            i += 1;
        }
    }
    vec![sum]
}

impl Workload for Ptx {
    fn name(&self) -> &'static str {
        "ptx"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let chars = input_chars(p);
        let len = chars.len();
        let mut a = Asm::new();
        let raw = a.static_data(&chars);
        // string buffer: len chars + terminator, then the unrelated
        // variable the overflow will read (written by S1).
        let string = a.static_zeroed(len + 1);
        let unrelated = a.static_zeroed(1);
        // A zero word after it stops the runaway scan deterministically.
        let _stopper = a.static_zeroed(1);

        a.func("main");
        // S1: write the unrelated variable (the word right after string).
        a.imm(Reg(20), unrelated as i64);
        a.imm(R2, 55);
        a.mark("S1_unrelated");
        let s1 = a.store(R2, Reg(20), 0);
        // S2: string = inputString(...) — copy raw chars + terminator.
        a.imm(Reg(21), raw as i64);
        a.imm(Reg(22), string as i64);
        a.imm(Reg(23), len as i64);
        {
            a.imm(R4, 0);
            let top = a.label_here();
            a.alui(AluOp::Mul, R2, R4, 8);
            a.alu(AluOp::Add, R3, Reg(21), R2);
            a.load(R5, R3, 0); // raw input: preloaded, no dep
            a.alu(AluOp::Add, R3, Reg(22), R2);
            a.mark("S2_fill");
            a.store(R5, R3, 0);
            a.addi(R4, R4, 1);
            a.alu(AluOp::Lt, R2, R4, Reg(23));
            a.bnz(R2, top);
        }
        a.imm(R2, 0);
        a.alui(AluOp::Mul, R3, Reg(23), 8);
        a.alu(AluOp::Add, R3, Reg(22), R3);
        a.mark("S2_term");
        let s2_term = a.store(R2, R3, 0);
        // S3: the escape-collapsing scan — BUG: a backslash advances by two
        // without checking for the terminator in between.
        a.imm(Reg(24), 0); // pos
        a.imm(Reg(25), 0); // checksum
        let scan_top = a.label_here();
        let done = a.new_label();
        let not_escape = a.new_label();
        let consumed = a.new_label();
        a.alui(AluOp::Mul, R2, Reg(24), 8);
        a.alu(AluOp::Add, R2, Reg(22), R2);
        a.mark("S3_scan");
        let s3 = a.load(R3, R2, 0);
        a.bez(R3, done);
        a.alui(AluOp::Eq, R4, R3, BACKSLASH);
        a.bez(R4, not_escape);
        // Escape: take the NEXT char literally, advance by two.
        a.mark("S3_escaped");
        let l_esc = a.load(R3, R2, 8);
        a.addi(Reg(24), Reg(24), 2);
        a.jump(consumed);
        a.bind(not_escape);
        a.addi(Reg(24), Reg(24), 1);
        a.bind(consumed);
        a.alu(AluOp::Add, Reg(25), Reg(25), R3);
        a.alui(AluOp::Mul, Reg(25), Reg(25), 3);
        a.alui(AluOp::Rem, Reg(25), Reg(25), 100_000);
        a.jump(scan_top);
        a.bind(done);
        a.out(Reg(25));
        a.halt();

        let bug = BugInfo {
            description: "Buffer overflow: odd trailing backslashes step over the \
                          terminator; the scan reads the adjacent variable (S1->S3)"
                .into(),
            class: BugClass::BufferOverflow,
            store_pcs: vec![s1, s2_term],
            load_pcs: vec![s3, l_esc],
        };

        BuiltWorkload {
            program: a.finish().expect("ptx assembles"),
            expected_output: oracle(&chars),
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    fn cfg() -> MachineConfig {
        MachineConfig { jitter_ppm: 0, ..Default::default() }
    }

    #[test]
    fn safe_inputs_are_correct() {
        let w = Ptx;
        for seed in 0..4 {
            let built = w.build(&Params { seed, ..w.default_params() });
            let out = Machine::new(&built.program, cfg()).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn trailing_backslash_corrupts_output() {
        let w = Ptx;
        let built = w.build(&w.default_params().triggered());
        let out = Machine::new(&built.program, cfg()).run();
        assert!(out.completed(), "{out}");
        assert!(built.is_failure(&out), "{out}");
    }
}
