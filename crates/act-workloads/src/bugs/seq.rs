//! `seq` — semantic bug in `print_numbers` (Table V): the "is this the last
//! number?" test compares for exact equality with the endpoint, so when the
//! step overshoots the endpoint the final number is printed with the
//! separator instead of the terminator. Completes with wrong output.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The seq-style wrong-terminator semantic bug.
#[derive(Debug, Clone, Copy, Default)]
pub struct Seq;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);

/// Separator and terminator "characters".
const SEP: i64 = 7;
const TERM: i64 = 9;

fn inputs(p: &Params) -> (i64, i64, i64) {
    let first = (p.seed % 4) as i64 + 1;
    if p.trigger_bug {
        // Step overshoots: `i == last` never holds at the final number.
        (first, first + 7, 3)
    } else if p.seed % 2 == 0 {
        (first, first + 6, 2) // exact hit
    } else {
        (first, first + 4, 1) // exact hit
    }
}

/// Correct semantics: numbers separated by SEP, final number followed by
/// TERM.
fn oracle(first: i64, last: i64, step: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut i = first;
    while i <= last {
        out.push(i);
        out.push(if i + step > last { TERM } else { SEP });
        i += step;
    }
    out.push(1); // the "done" record
    out
}

impl Workload for Seq {
    fn name(&self) -> &'static str {
        "seq"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let (first, last, step) = inputs(p);
        let mut a = Asm::new();
        let term_w = a.static_zeroed(1);
        let done_w = a.static_zeroed(1);
        // The inputs live in the data segment (like argv), so the program
        // text is identical for every input shape.
        let params = a.static_data(&[first, last, step]);

        a.func("main");
        a.imm(Reg(20), term_w as i64);
        a.imm(Reg(21), done_w as i64);
        a.imm(Reg(25), params as i64);
        a.load(Reg(22), Reg(25), 0); // i = first
        a.load(Reg(23), Reg(25), 8); // last
        a.load(Reg(24), Reg(25), 16); // step
        let top = a.label_here();
        let end = a.new_label();
        let not_last = a.new_label();
        let print = a.new_label();
        a.alu(AluOp::Le, R2, Reg(22), Reg(23));
        a.bez(R2, end);
        // BUG: "last number" test is `i == last`, which never fires when the
        // step overshoots; the correct test is `i + step > last`.
        a.alu(AluOp::Eq, R2, Reg(22), Reg(23));
        a.bez(R2, not_last);
        a.imm(R3, TERM);
        a.mark("S_t1_term");
        a.store(R3, Reg(20), 0);
        a.jump(print);
        a.bind(not_last);
        a.imm(R3, SEP);
        a.mark("S_t2_sep");
        let s_t2 = a.store(R3, Reg(20), 0);
        a.bind(print);
        a.out(Reg(22));
        a.mark("L_term");
        let l_t = a.load(R4, Reg(20), 0);
        a.out(R4);
        a.alu(AluOp::Add, Reg(22), Reg(22), Reg(24));
        a.jump(top);
        a.bind(end);
        // Post-loop record (gives the final window a distinct context).
        a.imm(R2, 1);
        a.mark("S_done");
        a.store(R2, Reg(21), 0);
        a.mark("L_done");
        a.load(R3, Reg(21), 0);
        a.out(R3);
        a.halt();

        let bug = BugInfo {
            description: "Semantic bug: wrong last-number test prints the separator \
                          instead of the terminator when the step overshoots"
                .into(),
            class: BugClass::Semantic,
            store_pcs: vec![s_t2],
            load_pcs: vec![l_t],
        };

        BuiltWorkload {
            program: a.finish().expect("seq assembles"),
            expected_output: oracle(first, last, step),
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    fn cfg() -> MachineConfig {
        MachineConfig { jitter_ppm: 0, ..Default::default() }
    }

    #[test]
    fn exact_hit_inputs_are_correct() {
        let w = Seq;
        for seed in 0..4 {
            let built = w.build(&Params { seed, ..w.default_params() });
            let out = Machine::new(&built.program, cfg()).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn overshoot_inputs_print_wrong_terminator() {
        let w = Seq;
        let built = w.build(&w.default_params().triggered());
        let out = Machine::new(&built.program, cfg()).run();
        assert!(out.completed());
        assert!(built.is_failure(&out), "{out}");
        // The only difference must be the final terminator.
        let got = out.output().unwrap();
        let want = &built.expected_output;
        assert_eq!(got.len(), want.len());
        assert_eq!(got[got.len() - 2], SEP);
        assert_eq!(want[want.len() - 2], TERM);
    }
}
