//! `pbzip2` — order violation between threads (Table V): the main thread
//! tears down the work queue without waiting for the consumer to drain it
//! (the real bug's missing condition-variable wait). A consumer that is
//! still running dereferences the freed queue pointer and crashes.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::{count_loop, delay_from};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The PBZip2-style premature-teardown order violation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pbzip2;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);

/// Work items in the queue.
const ITEMS: i64 = 12;

impl Workload for Pbzip2 {
    fn name(&self) -> &'static str {
        "pbzip2"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let jit = (p.seed % 32) as i64;
        // d_item: consumer's per-item processing time; d_free: when main
        // tears the queue down.
        let (d_item, d_free) = if p.trigger_bug {
            (200, 500 + jit) // free lands mid-consumption
        } else {
            (5, 20_000 + jit) // consumer long done before the free
        };

        let mut a = Asm::new();
        let queue = a.static_zeroed(ITEMS as usize);
        let queue_ptr = a.static_zeroed(1);
        let result = a.static_zeroed(1);
        let pd_item = a.static_data(&[d_item]);
        let pd_free = a.static_data(&[d_free]);

        a.func("main"); // producer + (buggy) teardown
        let consumer = a.new_label();
        a.imm(Reg(20), queue as i64);
        a.imm(Reg(21), queue_ptr as i64);
        // Fill the queue.
        a.imm(R6, ITEMS);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 11);
            a.alui(AluOp::Add, R4, R4, 30);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.mark("S_fill");
            a.store(R4, R5, 0);
        });
        // Publish the queue pointer.
        a.imm(R2, queue as i64);
        a.mark("S_publish");
        a.store(R2, Reg(21), 0);
        a.imm(R2, 0);
        a.spawn(R3, consumer, R2);
        delay_from(&mut a, pd_free, R5, R2);
        // Buggy teardown: free the queue while the consumer may still run.
        a.imm(R2, 0);
        a.mark("S_free");
        let s_free = a.store(R2, Reg(21), 0);
        a.join(R3);
        a.imm(Reg(22), result as i64);
        a.load(R2, Reg(22), 0);
        a.out(R2);
        a.halt();

        a.func("consumer");
        a.bind(consumer);
        a.imm(Reg(21), queue_ptr as i64);
        a.imm(Reg(22), result as i64);
        a.imm(R8, 0); // checksum
        a.imm(R6, ITEMS);
        let l_qp;
        {
            a.imm(R7, 0);
            let top = a.label_here();
            // Reload the queue pointer every item (trusting the teardown
            // order — the bug).
            a.mark("L_qp");
            l_qp = a.load(R4, Reg(21), 0);
            delay_from(&mut a, pd_item, R5, R2);
            a.alui(AluOp::Mul, R5, R7, 8);
            a.alu(AluOp::Add, R5, R4, R5);
            a.mark("L_item");
            a.load(R3, R5, 0); // crashes once the queue is freed (q = 0)
            a.alu(AluOp::Add, R8, R8, R3);
            a.addi(R7, R7, 1);
            a.alu(AluOp::Lt, R2, R7, R6);
            a.bnz(R2, top);
        }
        a.store(R8, Reg(22), 0);
        a.halt();

        let checksum: i64 = (0..ITEMS).map(|i| i * 11 + 30).sum();
        let bug = BugInfo {
            description: "Order violation: main frees the work queue before the consumer \
                          has drained it (missing wait)"
                .into(),
            class: BugClass::OrderViolation,
            store_pcs: vec![s_free],
            load_pcs: vec![l_qp],
        };

        BuiltWorkload {
            program: a.finish().expect("pbzip2 assembles"),
            expected_output: vec![checksum],
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;
    use act_sim::outcome::{CrashKind, RunOutcome};

    fn cfg(seed: u64) -> MachineConfig {
        MachineConfig { jitter_ppm: 10_000, seed, ..Default::default() }
    }

    #[test]
    fn clean_runs_complete_correctly() {
        let w = Pbzip2;
        let built = w.build(&w.default_params());
        for seed in 0..5 {
            let out = Machine::new(&built.program, cfg(seed)).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn triggered_runs_crash() {
        let w = Pbzip2;
        let built = w.build(&w.default_params().triggered());
        let mut crashes = 0;
        for seed in 0..6 {
            if let RunOutcome::Crash { kind, .. } = Machine::new(&built.program, cfg(seed)).run() {
                assert!(matches!(kind, CrashKind::NullDeref));
                crashes += 1;
            }
        }
        assert!(crashes >= 4, "only {crashes}/6 triggered runs crashed");
    }
}
