//! `apache` — the atomicity violation of Fig 2(c) (modeled on Apache's
//! ref-counted buffer bug): thread T1 allocates a shared pointer (`I1`) and
//! later frees/NULLs it (`I2`); thread T2 checks the pointer (`J1`) and then
//! uses it (`J2`, then dereference) without synchronization. When `I2`
//! interleaves between `J1` and `J2`, T2 dereferences NULL and crashes.
//!
//! Valid dependence sequences: `(I1→J1, I1→J2)` and `(I2→J1)`; the failure
//! signature is the sequence `(I1→J1, I2→J2)` — exactly the paper's example.
//!
//! The code is identical in clean and triggering builds; only preloaded
//! *delay parameters* differ, which changes the interleaving (the paper's
//! bugs likewise depend only on timing).

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::delay_from;
use act_sim::asm::Asm;
use act_sim::isa::Reg;

/// The Apache-style pointer atomicity violation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Apache;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const RP: Reg = Reg(20);
const RRES: Reg = Reg(21);

impl Workload for Apache {
    fn name(&self) -> &'static str {
        "apache"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let jit = (p.seed % 32) as i64;
        // Delays (cycles of spin): clean keeps I2 far from T2's window and
        // gives T2 a second round that observes the NULL; triggering places
        // I2 inside T2's wide J1..J2 window.
        let (d1, d2, d3, d4) = if p.trigger_bug {
            (500 + jit, 50, 1500, 100) // I2 lands inside J1..J2
        } else {
            (4000 + jit, 50, 100, 8000) // round 1 all-I1; round 2 sees NULL
        };
        self.emit(d1, d2, d3, d4, jit)
    }
}

impl Apache {
    fn emit(&self, d1: i64, d2: i64, d3: i64, d4: i64, jit: i64) -> BuiltWorkload {
        let mut a = Asm::new();
        let buf = a.static_zeroed(1);
        let ptr = a.static_zeroed(1);
        let result = a.static_zeroed(1);
        let pd1 = a.static_data(&[d1]);
        let pd2 = a.static_data(&[d2]);
        let pd3 = a.static_data(&[d3]);
        let pd4 = a.static_data(&[d4]);

        a.func("main");
        let t2 = a.new_label();
        a.imm(RP, ptr as i64);
        a.imm(Reg(22), buf as i64);
        a.imm(R2, 42 + jit);
        a.mark("S_buf");
        a.store(R2, Reg(22), 0);
        a.imm(R2, 0);
        a.spawn(R3, t2, R2);
        a.imm(R4, buf as i64);
        a.mark("I1");
        a.store(R4, RP, 0);
        delay_from(&mut a, pd1, R5, R2);
        a.imm(R4, 0);
        a.mark("I2");
        let i2 = a.store(R4, RP, 0);
        a.join(R3);
        a.imm(RRES, result as i64);
        a.load(R2, RRES, 0);
        a.out(R2);
        a.halt();

        a.func("request_handler");
        a.bind(t2);
        a.imm(RP, ptr as i64);
        a.imm(RRES, result as i64);
        a.imm(R4, 0);
        let mut j2_pcs = Vec::new();
        for round in 0..2 {
            delay_from(&mut a, if round == 0 { pd2 } else { pd4 }, R5, R2);
            let skip = a.new_label();
            a.mark(&format!("J1_{round}"));
            a.load(R2, RP, 0);
            a.bez(R2, skip);
            delay_from(&mut a, pd3, R5, R3);
            a.mark(&format!("J2_{round}"));
            j2_pcs.push(a.load(R2, RP, 0));
            a.mark(&format!("deref_{round}"));
            a.load(R3, R2, 0);
            a.addi(R4, R4, 1);
            a.bind(skip);
        }
        a.store(R4, RRES, 0);
        a.halt();

        let bug = BugInfo {
            description: "Atomicity violation on shared pointer: free (I2) interleaves \
                          between NULL-check (J1) and use (J2)"
                .into(),
            class: BugClass::AtomicityViolation,
            store_pcs: vec![i2],
            load_pcs: j2_pcs,
        };

        BuiltWorkload {
            program: a.finish().expect("apache assembles"),
            // Clean behaviour: round 1 observes the object (non-null), round
            // 2 observes NULL and skips -> result = 1.
            expected_output: vec![1],
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;
    use act_sim::outcome::{CrashKind, RunOutcome};

    #[test]
    fn clean_runs_complete_correctly() {
        let w = Apache;
        let built = w.build(&w.default_params());
        for seed in 0..5 {
            let cfg = MachineConfig { jitter_ppm: 10_000, seed, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn triggered_runs_crash_with_null_deref() {
        let w = Apache;
        let built = w.build(&w.default_params().triggered());
        let mut crashes = 0;
        for seed in 0..6 {
            let cfg = MachineConfig { jitter_ppm: 10_000, seed, ..Default::default() };
            match Machine::new(&built.program, cfg).run() {
                RunOutcome::Crash { kind: CrashKind::NullDeref, .. } => crashes += 1,
                _ => {}
            }
        }
        assert!(crashes >= 4, "only {crashes}/6 triggered runs crashed");
    }
}
