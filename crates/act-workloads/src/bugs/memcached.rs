//! `memcached` — atomicity violation on item data (Table V): an "incr"
//! operation's check of the item's flags and its read-modify-write of the
//! item's value are not atomic with respect to an invalidating store from
//! another thread. A correct execution always leaves the item cleared; the
//! racy interleaving resurrects stale data. Completes with wrong output.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::delay_from;
use act_sim::asm::Asm;
use act_sim::isa::Reg;

/// The memcached-style item atomicity violation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Memcached;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);

impl Workload for Memcached {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let jit = (p.seed % 32) as i64;
        // d_incr: delay inside the incr's check..write window.
        // d_inval: when the invalidator runs.
        // Clean runs alternate which side goes first (seed parity) so both
        // valid dependence patterns are trained.
        // d_start delays the incr thread's first check so the
        // invalidate-first training configuration is deterministic.
        let (d_start, d_incr, d_inval) = if p.trigger_bug {
            (0, 1500, 400 + jit) // invalidate lands inside the window
        } else if p.seed % 2 == 0 {
            (0, 0, 5000 + jit) // incr completes, then invalidate
        } else {
            (3000, 0, 10 + jit) // invalidate first, incr sees INVALID
        };

        let mut a = Asm::new();
        let flags = a.static_zeroed(1);
        let item = a.static_zeroed(1);
        let pd_start = a.static_data(&[d_start]);
        let pd_incr = a.static_data(&[d_incr]);
        let pd_inval = a.static_data(&[d_inval]);

        a.func("main"); // the invalidator
        let incr = a.new_label();
        a.imm(Reg(20), flags as i64);
        a.imm(Reg(21), item as i64);
        // Item starts valid with value 0.
        a.imm(R2, 1);
        a.mark("S_valid");
        a.store(R2, Reg(20), 0);
        a.imm(R2, 0);
        a.mark("S_item0");
        a.store(R2, Reg(21), 0);
        a.spawn(R3, incr, R2);
        delay_from(&mut a, pd_inval, R5, R2);
        // Invalidate: flags = 0, item = 0.
        a.imm(R2, 0);
        a.mark("S_inval");
        a.store(R2, Reg(20), 0);
        a.imm(R2, 0);
        a.mark("S_clear");
        a.store(R2, Reg(21), 0);
        a.join(R3);
        // Postmortem reads: a correct run always ends cleared (flags == 0,
        // item == 0).
        a.mark("L_out_flags");
        a.load(R4, Reg(20), 0);
        a.out(R4);
        a.mark("L_out");
        let l_out = a.load(R4, Reg(21), 0);
        a.out(R4);
        a.halt();

        a.func("process_incr");
        a.bind(incr);
        a.imm(Reg(20), flags as i64);
        a.imm(Reg(21), item as i64);
        delay_from(&mut a, pd_start, R5, R3);
        let skip = a.new_label();
        a.mark("L_flags");
        a.load(R2, Reg(20), 0); // check
        a.bez(R2, skip);
        delay_from(&mut a, pd_incr, R5, R3);
        a.mark("L_item");
        a.load(R4, Reg(21), 0); // read
        a.alui(act_sim::isa::AluOp::Add, R4, R4, 5);
        a.mark("S_item");
        let s_item = a.store(R4, Reg(21), 0); // write (stale if raced)
        a.bind(skip);
        a.halt();

        let bug = BugInfo {
            description: "Atomicity violation on item data: flags check and item \
                          read-modify-write race with invalidate-and-clear"
                .into(),
            class: BugClass::AtomicityViolation,
            store_pcs: vec![s_item],
            load_pcs: vec![l_out],
        };

        BuiltWorkload {
            program: a.finish().expect("memcached assembles"),
            expected_output: vec![0, 0],
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    fn cfg(seed: u64) -> MachineConfig {
        MachineConfig { jitter_ppm: 10_000, seed, ..Default::default() }
    }

    #[test]
    fn clean_runs_end_cleared() {
        let w = Memcached;
        for seed in 0..6 {
            let built = w.build(&Params { seed, ..w.default_params() });
            let out = Machine::new(&built.program, cfg(seed)).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn triggered_runs_resurrect_stale_data() {
        let w = Memcached;
        let mut failures = 0;
        for seed in 0..6 {
            let built = w.build(&Params { seed, ..w.default_params().triggered() });
            let out = Machine::new(&built.program, cfg(seed)).run();
            if built.is_failure(&out) {
                failures += 1;
            }
        }
        assert!(failures >= 4, "only {failures}/6 triggered runs failed");
    }
}
