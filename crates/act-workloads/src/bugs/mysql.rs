//! The three MySQL-modeled atomicity violations of Table V.
//!
//! * [`Mysql1`] — non-atomic log append loses an entry; the failure is
//!   detected long after the race, so many later anomalous dependences push
//!   the root cause deep into (or out of) the default debug buffer — this is
//!   the paper's one case that needed a larger buffer.
//! * [`Mysql2`] — `thd->proc_info` set to NULL by another thread between a
//!   worker's store and use → crash.
//! * [`Mysql3`] — `join_init_cache` reads a `size` field re-published by a
//!   concurrent re-initialization before the backing buffer grows → the
//!   reader loops out of bounds → crash.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::{count_loop, delay_from};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);

/// MySQL#1: atomicity violation causing loss of logged data.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mysql1;

/// Entries each appender writes.
const LOG_ENTRIES: i64 = 60;

impl Workload for Mysql1 {
    fn name(&self) -> &'static str {
        "mysql1"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let jit = (p.seed % 16) as i64;
        // Clean: the second appender starts long after the first finished.
        // Trigger: both run concurrently with a widened read..publish window.
        let (start2, window) = if p.trigger_bug { (0, 60 + jit) } else { (60_000 + jit, 0) };

        let mut a = Asm::new();
        let total = 2 * LOG_ENTRIES;
        let log = a.static_zeroed(total as usize + 4);
        let log_idx = a.static_zeroed(1);
        let pstart2 = a.static_data(&[start2]);
        let pwindow = a.static_data(&[window]);

        a.func("main");
        let appender = a.new_label();
        a.imm(Reg(20), log_idx as i64);
        a.imm(R2, 0);
        a.mark("S_idx0");
        let s_idx0 = a.store(R2, Reg(20), 0);
        a.imm(R2, 0);
        a.spawn(Reg(10), appender, R2);
        a.imm(R2, 1);
        a.spawn(Reg(11), appender, R2);
        a.join(Reg(10));
        a.join(Reg(11));
        // Validation: sum the whole log region and the final index.
        a.imm(Reg(21), log as i64);
        a.imm(R6, total);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(21), R5);
            a.mark("L_scan");
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.load(R2, Reg(20), 0);
        a.out(R2); // final index
        a.out(R8); // log checksum
        a.halt();

        // Appender (arg = worker id): LOG_ENTRIES non-atomic appends.
        a.func("log_append");
        a.bind(appender);
        a.imm(Reg(20), log_idx as i64);
        a.imm(Reg(21), log as i64);
        // First appender starts immediately; the second waits per params.
        let go = a.new_label();
        a.bez(Reg(1), go);
        delay_from(&mut a, pstart2, R5, R2);
        a.bind(go);
        a.imm(R6, LOG_ENTRIES);
        let l_i;
        let s_idx;
        {
            // count_loop body needs the marked pcs; emit manually.
            a.imm(R7, 0); // e
            let top = a.label_here();
            a.mark("L_idx");
            l_i = a.load(R2, Reg(20), 0); // i = log_idx  (racy read)
            delay_from(&mut a, pwindow, R5, R4);
            // log[i] = 100 + wid*LOG_ENTRIES + e
            a.alui(AluOp::Mul, R4, Reg(1), LOG_ENTRIES);
            a.alu(AluOp::Add, R4, R4, R7);
            a.alui(AluOp::Add, R4, R4, 100);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(21), R5);
            a.mark("S_entry");
            a.store(R4, R5, 0);
            // log_idx = i + 1  (racy publish)
            a.alui(AluOp::Add, R2, R2, 1);
            a.mark("S_idx");
            s_idx = a.store(R2, Reg(20), 0);
            a.addi(R7, R7, 1);
            a.alui(AluOp::Lt, R3, R7, LOG_ENTRIES);
            a.bnz(R3, top);
        }
        a.halt();

        // Oracle: sequential appends -> index = total, checksum = sum of all
        // entry values.
        let checksum: i64 =
            (0..2i64).flat_map(|w| (0..LOG_ENTRIES).map(move |e| 100 + w * LOG_ENTRIES + e)).sum();

        let bug = BugInfo {
            description: "Atomicity violation on log index: read and publish of log_idx \
                          are not atomic, losing logged entries"
                .into(),
            class: BugClass::AtomicityViolation,
            store_pcs: vec![s_idx0, s_idx],
            load_pcs: vec![l_i],
        };

        BuiltWorkload {
            program: a.finish().expect("mysql1 assembles"),
            expected_output: vec![total, checksum],
            bug: Some(bug),
        }
    }
}

/// MySQL#2: atomicity violation on `thd->proc_info` → NULL dereference.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mysql2;

impl Workload for Mysql2 {
    fn name(&self) -> &'static str {
        "mysql2"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let jit = (p.seed % 32) as i64;
        // d_use: worker's set..use window; d_kill: when the killer NULLs.
        let (d_use, d_kill) = if p.trigger_bug {
            (1200, 300 + jit) // kill lands inside the window
        } else {
            (50, 6000 + jit) // kill lands between rounds
        };

        let mut a = Asm::new();
        let proc_info = a.static_zeroed(1);
        let info = a.static_zeroed(1);
        let pd_use = a.static_data(&[d_use]);
        let pd_kill = a.static_data(&[d_kill]);

        a.func("main"); // the killer thread
        let worker = a.new_label();
        a.imm(Reg(20), info as i64);
        a.imm(R2, 77);
        a.mark("S_info");
        a.store(R2, Reg(20), 0);
        a.imm(R2, 0);
        a.spawn(R3, worker, R2);
        delay_from(&mut a, pd_kill, R5, R2);
        a.imm(Reg(21), proc_info as i64);
        a.imm(R2, 0);
        a.mark("S_null");
        let s_null = a.store(R2, Reg(21), 0);
        a.join(R3);
        a.imm(R2, 1);
        a.out(R2);
        a.halt();

        a.func("query_worker");
        a.bind(worker);
        a.imm(Reg(21), proc_info as i64);
        a.imm(Reg(22), info as i64);
        // Read the request descriptor before processing (gives the first
        // round a dependence history).
        a.mark("L_req");
        a.load(R6, Reg(22), 0);
        let mut l_use_pcs = Vec::new();
        for round in 0..2 {
            // S_set: proc_info = &info
            a.imm(R2, info as i64);
            a.mark(&format!("S_set_{round}"));
            a.store(R2, Reg(21), 0);
            delay_from(&mut a, pd_use, R5, R3);
            // L_use: q = proc_info; use *q
            a.mark(&format!("L_use_{round}"));
            l_use_pcs.push(a.load(R4, Reg(21), 0));
            a.mark(&format!("deref_{round}"));
            a.load(R6, R4, 0); // crashes when q == NULL
                               // Owner clears its own proc_info after use.
            a.imm(R2, 0);
            a.store(R2, Reg(21), 0);
            delay_from(&mut a, pd_use, R5, R3);
        }
        a.halt();

        let bug = BugInfo {
            description: "Atomicity violation on thd->proc_info: another thread stores \
                          NULL between the owner's set and use"
                .into(),
            class: BugClass::AtomicityViolation,
            store_pcs: vec![s_null],
            load_pcs: l_use_pcs,
        };

        BuiltWorkload {
            program: a.finish().expect("mysql2 assembles"),
            expected_output: vec![1],
            bug: Some(bug),
        }
    }
}

/// MySQL#3: atomicity violation in join-init-cache → out-of-bounds loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mysql3;

/// Initial (valid) cache size in words.
const CACHE_SMALL: i64 = 8;
/// Re-published (not yet backed) size.
const CACHE_BIG: i64 = 4096;

impl Workload for Mysql3 {
    fn name(&self) -> &'static str {
        "mysql3"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let jit = (p.seed % 16) as i64;
        // Clean: resize happens long after the reader finished.
        // Trigger: resize publishes the new size while the reader is mid-scan.
        let (d_resize, d_read) = if p.trigger_bug { (120 + jit, 0) } else { (8000 + jit, 0) };
        // Per-element processing time of the reader (same in clean and
        // triggering builds), wide enough that the scan overlaps the resize.
        let d_scan = 45i64;

        let mut a = Asm::new();
        let size_w = a.static_zeroed(1);
        let pd_resize = a.static_data(&[d_resize]);
        let pd_read = a.static_data(&[d_read]);
        let pd_scan = a.static_data(&[d_scan]);
        // The cache buffer is the LAST allocation: reading past it leaves
        // the mapped data segment and crashes.
        let buf = a.static_zeroed(CACHE_SMALL as usize);

        a.func("main"); // initializer + resizer
        let reader = a.new_label();
        a.imm(Reg(20), size_w as i64);
        a.imm(Reg(21), buf as i64);
        // Fill the small cache.
        a.imm(R6, CACHE_SMALL);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 3);
            a.alui(AluOp::Add, R4, R4, 5);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(21), R5);
            a.store(R4, R5, 0);
        });
        // Publish the valid size.
        a.imm(R2, CACHE_SMALL);
        a.mark("S_size_ok");
        a.store(R2, Reg(20), 0);
        a.imm(R2, 0);
        a.spawn(R3, reader, R2);
        delay_from(&mut a, pd_resize, R5, R2);
        // Buggy re-init: publish the bigger size BEFORE backing it.
        a.imm(R2, CACHE_BIG);
        a.mark("S_size_big");
        let s_big = a.store(R2, Reg(20), 0);
        a.join(R3);
        a.imm(R2, 1);
        a.out(R2);
        a.halt();

        a.func("join_read_cache");
        a.bind(reader);
        a.imm(Reg(20), size_w as i64);
        a.imm(Reg(21), buf as i64);
        delay_from(&mut a, pd_read, R5, R2);
        a.imm(R8, 0); // checksum
        a.imm(R7, 0); // i
        let done = a.new_label();
        let top = a.label_here();
        // Re-read the bound every iteration (the real bug's pattern).
        a.mark("L_size");
        let l_size = a.load(R6, Reg(20), 0);
        a.alu(AluOp::Lt, R2, R7, R6);
        a.bez(R2, done);
        a.alui(AluOp::Mul, R5, R7, 8);
        a.alu(AluOp::Add, R5, Reg(21), R5);
        a.mark("L_cache");
        a.load(R4, R5, 0); // out of bounds once size is the big one
        a.alu(AluOp::Add, R8, R8, R4);
        delay_from(&mut a, pd_scan, R5, R3); // per-element processing
        a.addi(R7, R7, 1);
        a.jump(top);
        a.bind(done);
        a.halt();

        let bug = BugInfo {
            description: "Atomicity violation in join-init-cache: new size published \
                          before the buffer is reallocated, reader loops out of bounds"
                .into(),
            class: BugClass::AtomicityViolation,
            store_pcs: vec![s_big],
            load_pcs: vec![l_size],
        };

        BuiltWorkload {
            program: a.finish().expect("mysql3 assembles"),
            expected_output: vec![1],
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;
    use act_sim::outcome::{CrashKind, RunOutcome};

    fn cfg(seed: u64) -> MachineConfig {
        MachineConfig { jitter_ppm: 10_000, seed, ..Default::default() }
    }

    #[test]
    fn mysql1_clean_and_triggered() {
        let w = Mysql1;
        let built = w.build(&w.default_params());
        for seed in 0..4 {
            let out = Machine::new(&built.program, cfg(seed)).run();
            assert!(built.is_correct(&out), "clean seed {seed}: {out}");
        }
        let bad = w.build(&w.default_params().triggered());
        let mut failures = 0;
        for seed in 0..6 {
            let out = Machine::new(&bad.program, cfg(seed)).run();
            if bad.is_failure(&out) {
                failures += 1;
            }
        }
        assert!(failures >= 4, "only {failures}/6 triggered runs failed");
    }

    #[test]
    fn mysql2_clean_and_triggered() {
        let w = Mysql2;
        let built = w.build(&w.default_params());
        for seed in 0..4 {
            let out = Machine::new(&built.program, cfg(seed)).run();
            assert!(built.is_correct(&out), "clean seed {seed}: {out}");
        }
        let bad = w.build(&w.default_params().triggered());
        let mut crashes = 0;
        for seed in 0..6 {
            if let RunOutcome::Crash { kind: CrashKind::NullDeref, .. } =
                Machine::new(&bad.program, cfg(seed)).run()
            {
                crashes += 1;
            }
        }
        assert!(crashes >= 4, "only {crashes}/6 triggered runs crashed");
    }

    #[test]
    fn mysql3_clean_and_triggered() {
        let w = Mysql3;
        let built = w.build(&w.default_params());
        for seed in 0..4 {
            let out = Machine::new(&built.program, cfg(seed)).run();
            assert!(built.is_correct(&out), "clean seed {seed}: {out}");
        }
        let bad = w.build(&w.default_params().triggered());
        let mut crashes = 0;
        for seed in 0..6 {
            if let RunOutcome::Crash { kind: CrashKind::OutOfBounds, .. } =
                Machine::new(&bad.program, cfg(seed)).run()
            {
                crashes += 1;
            }
        }
        assert!(crashes >= 4, "only {crashes}/6 triggered runs crashed");
    }
}
