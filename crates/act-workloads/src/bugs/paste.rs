//! `paste` — `collapse_escapes` reads out of its buffer (Table V): when the
//! delimiter string ends with an escape, the collapse loop consumes the
//! terminator as the "escaped character" and keeps scanning past the end of
//! the buffer. The buffer sits at the end of the data segment, so the
//! runaway read leaves mapped memory and crashes — the paper reports this
//! bug as a crash.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The paste-style collapse_escapes overflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct Paste;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);

const BACKSLASH: i64 = 92;

fn delims(p: &Params) -> Vec<i64> {
    let base: Vec<i64> = (0..5).map(|i| 40 + (i + p.seed as i64 % 4) % 10).collect();
    let mut s = base;
    if p.trigger_bug {
        s.push(BACKSLASH); // escape at the very end
    } else if p.seed % 2 == 0 {
        s.insert(2, BACKSLASH); // escaped pair in the middle
    }
    s
}

/// Correct semantics: collapse `\x` to `x`; a trailing unpaired backslash
/// collapses to nothing.
fn oracle(chars: &[i64]) -> Vec<i64> {
    let mut sum = 0i64;
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == BACKSLASH {
            if i + 1 < chars.len() {
                sum = sum.wrapping_add(chars[i + 1] * 2);
            }
            i += 2;
        } else {
            sum = sum.wrapping_add(chars[i]);
            i += 1;
        }
    }
    vec![sum]
}

impl Workload for Paste {
    fn name(&self) -> &'static str {
        "paste"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let chars = delims(p);
        let len = chars.len();
        let mut a = Asm::new();
        let raw = a.static_data(&chars);
        // IMPORTANT: the delimiter buffer (chars + terminator) is the LAST
        // allocation in the data segment, so reading past it faults.
        let buf = a.static_zeroed(len + 1);

        a.func("main");
        // Fill the buffer and terminate it.
        a.imm(Reg(20), raw as i64);
        a.imm(Reg(21), buf as i64);
        a.imm(Reg(22), len as i64);
        {
            a.imm(R4, 0);
            let top = a.label_here();
            a.alui(AluOp::Mul, R2, R4, 8);
            a.alu(AluOp::Add, R3, Reg(20), R2);
            a.load(R5, R3, 0);
            a.alu(AluOp::Add, R3, Reg(21), R2);
            a.mark("S_fill");
            a.store(R5, R3, 0);
            a.addi(R4, R4, 1);
            a.alu(AluOp::Lt, R2, R4, Reg(22));
            a.bnz(R2, top);
        }
        a.imm(R2, 0);
        a.alui(AluOp::Mul, R3, Reg(22), 8);
        a.alu(AluOp::Add, R3, Reg(21), R3);
        a.mark("S_term");
        let s_term = a.store(R2, R3, 0);
        // collapse_escapes: BUG — a backslash consumes the next word
        // unconditionally (even the terminator) and the loop continues.
        a.imm(Reg(23), 0); // pos
        a.imm(Reg(24), 0); // collapsed checksum
        let top = a.label_here();
        let done = a.new_label();
        let plain = a.new_label();
        let cont = a.new_label();
        a.alui(AluOp::Mul, R2, Reg(23), 8);
        a.alu(AluOp::Add, R2, Reg(21), R2);
        a.mark("L_scan");
        a.load(R3, R2, 0);
        a.bez(R3, done);
        a.alui(AluOp::Eq, R4, R3, BACKSLASH);
        a.bez(R4, plain);
        a.mark("L_escaped");
        let l_esc = a.load(R3, R2, 8); // may BE the terminator (consumed!)
        a.alui(AluOp::Mul, R3, R3, 2);
        a.addi(Reg(23), Reg(23), 2);
        a.jump(cont);
        a.bind(plain);
        a.addi(Reg(23), Reg(23), 1);
        a.bind(cont);
        a.alu(AluOp::Add, Reg(24), Reg(24), R3);
        a.jump(top);
        a.bind(done);
        a.out(Reg(24));
        a.halt();

        let bug = BugInfo {
            description: "Out-of-buffer read: collapse_escapes consumes the terminator \
                          after a trailing escape and scans past the buffer end"
                .into(),
            class: BugClass::BufferOverflow,
            store_pcs: vec![s_term],
            load_pcs: vec![l_esc],
        };

        BuiltWorkload {
            program: a.finish().expect("paste assembles"),
            expected_output: oracle(&chars),
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;
    use act_sim::outcome::{CrashKind, RunOutcome};

    fn cfg() -> MachineConfig {
        MachineConfig { jitter_ppm: 0, ..Default::default() }
    }

    #[test]
    fn safe_delimiters_are_correct() {
        let w = Paste;
        for seed in 0..4 {
            let built = w.build(&Params { seed, ..w.default_params() });
            let out = Machine::new(&built.program, cfg()).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn trailing_escape_crashes_out_of_bounds() {
        let w = Paste;
        let built = w.build(&w.default_params().triggered());
        match Machine::new(&built.program, cfg()).run() {
            RunOutcome::Crash { kind: CrashKind::OutOfBounds, .. } => {}
            other => panic!("expected out-of-bounds crash, got {other}"),
        }
    }
}
