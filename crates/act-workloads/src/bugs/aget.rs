//! `aget` — order violation on `bwritten` (Table V row 1): the downloader
//! updates the progress counter *before* writing the corresponding data
//! chunk. A progress snapshot taken inside that window (the real bug's
//! SIGINT save) records chunks as written that are not, and the resumed
//! run reads unwritten data. The program completes with corrupted output
//! ("Comp." in the paper).

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::{count_loop, delay_from};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The aget-style progress-counter order violation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aget;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);

/// Number of download chunks.
const CHUNKS: i64 = 16;

impl Workload for Aget {
    fn name(&self) -> &'static str {
        "aget"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let jit = (p.seed % 64) as i64;
        // d_chunk: worker's bwritten-update .. data-write window per chunk.
        // d_snap: when the main thread snapshots progress.
        let (d_chunk, d_snap) = if p.trigger_bug {
            (400, 2500 + jit * 7) // snapshot lands inside some chunk window
        } else {
            (0, 1000 + jit) // window is ~2 instructions wide
        };

        let mut a = Asm::new();
        let data = a.static_zeroed(CHUNKS as usize);
        let bwritten = a.static_zeroed(1);
        let pd_chunk = a.static_data(&[d_chunk]);
        let pd_snap = a.static_data(&[d_snap]);

        a.func("main");
        let worker = a.new_label();
        a.imm(Reg(20), data as i64);
        a.imm(Reg(21), bwritten as i64);
        // Initialize data to the "unwritten" marker -1.
        a.imm(R6, CHUNKS);
        let mut s_init = 0;
        count_loop(&mut a, R2, R6, R3, |a| {
            a.imm(R4, -1);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.mark("S_init");
            s_init = a.store(R4, R5, 0);
        });
        a.imm(R2, 0);
        a.spawn(R3, worker, R2);
        // Snapshot (the SIGINT handler's save of bwritten).
        delay_from(&mut a, pd_snap, R5, R2);
        a.mark("L_snap");
        a.load(R7, Reg(21), 0); // saved progress
                                // The "state save" also captures the last chunk the snapshot claims
                                // was written — read it NOW (at interrupt time), not after the
                                // download completes; this is what the resumed run will trust.
        let have = a.new_label();
        a.bnz(R7, have);
        a.imm(R7, 1); // snapshot before any chunk: look at chunk 0 anyway
        a.bind(have);
        a.alui(AluOp::Sub, R4, R7, 1);
        a.alui(AluOp::Mul, R4, R4, 8);
        a.alu(AluOp::Add, R4, Reg(20), R4);
        a.mark("L_resume");
        let l_resume = a.load(R5, R4, 0);
        a.join(R3);
        // Output 1 if the claimed chunk was really written, 0 if corrupted.
        a.alui(AluOp::Ne, R5, R5, -1);
        a.out(R5);
        // Deterministic checksum of the completed download.
        a.imm(R6, CHUNKS);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Worker: for each chunk, update bwritten FIRST (the order
        // violation), then write the data after a window.
        a.func("http_get");
        a.bind(worker);
        a.imm(Reg(20), data as i64);
        a.imm(Reg(21), bwritten as i64);
        a.imm(R6, CHUNKS);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Add, R4, R2, 1);
            a.mark("S_bw");
            a.store(R4, Reg(21), 0); // bwritten = i + 1 (premature)
            delay_from(a, pd_chunk, R5, R7);
            a.alui(AluOp::Add, R4, R2, 1000);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.mark("S_data");
            a.store(R4, R5, 0); // data[i] = 1000 + i
        });
        a.halt();

        let checksum: i64 = (0..CHUNKS).map(|i| 1000 + i).sum();
        let bug = BugInfo {
            description: "Order violation on bwritten: progress counter updated before \
                          the data write, so a snapshot can claim unwritten chunks"
                .into(),
            class: BugClass::OrderViolation,
            store_pcs: vec![s_init],
            load_pcs: vec![l_resume],
        };

        BuiltWorkload {
            program: a.finish().expect("aget assembles"),
            expected_output: vec![1, checksum],
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    fn cfg(seed: u64) -> MachineConfig {
        MachineConfig { jitter_ppm: 10_000, seed, ..Default::default() }
    }

    #[test]
    fn clean_runs_complete_correctly() {
        let w = Aget;
        let built = w.build(&w.default_params());
        for seed in 0..5 {
            let out = Machine::new(&built.program, cfg(seed)).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn triggered_runs_report_corruption() {
        let w = Aget;
        let mut failures = 0;
        for seed in 0..6 {
            let built = w.build(&Params { seed, ..w.default_params().triggered() });
            let out = Machine::new(&built.program, cfg(seed)).run();
            if built.is_failure(&out) {
                failures += 1;
            }
        }
        assert!(failures >= 4, "only {failures}/6 triggered runs failed");
    }
}
