//! The 11 real-world bugs of Table V, modeled in the mini-ISA so that each
//! preserves its paper counterpart's bug class, failure mode (crash vs
//! silent corruption), and RAW-dependence signature.

pub mod aget;
pub mod apache;
pub mod gzip;
pub mod memcached;
pub mod mysql;
pub mod paste;
pub mod pbzip2;
pub mod ptx;
pub mod seq;

pub use aget::Aget;
pub use apache::Apache;
pub use gzip::Gzip;
pub use memcached::Memcached;
pub use mysql::{Mysql1, Mysql2, Mysql3};
pub use paste::Paste;
pub use pbzip2::Pbzip2;
pub use ptx::Ptx;
pub use seq::Seq;

/// All real-bug workloads in Table V order.
pub fn all() -> Vec<Box<dyn crate::spec::Workload>> {
    vec![
        Box::new(Aget),
        Box::new(Apache),
        Box::new(Memcached),
        Box::new(Mysql1),
        Box::new(Mysql2),
        Box::new(Mysql3),
        Box::new(Pbzip2),
        Box::new(Gzip),
        Box::new(Seq),
        Box::new(Ptx),
        Box::new(Paste),
    ]
}
