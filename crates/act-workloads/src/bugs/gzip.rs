//! `gzip` — the semantic bug of Fig 2(d): `get_method` uses a stale file
//! descriptor when `-` (stdin) appears in the middle of the argument list.
//! With `-` first, `ifd` still holds its initialization (dependence
//! `S1→S2`); with `-` after a file, `ifd` holds the previous file's
//! descriptor (dependence `S3→S2`) and stdin is silently not processed.
//! Completes with wrong output.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The gzip-style stale-file-descriptor semantic bug.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gzip;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);

/// Token value meaning `-` (stdin).
const STDIN_TOKEN: i64 = 0;

fn tokens(p: &Params) -> Vec<i64> {
    let files: Vec<i64> = (1..=4).map(|i| i + (p.seed as i64 % 3)).collect();
    if p.trigger_bug {
        // `-` in the middle: the bug's triggering input shape.
        vec![files[0], files[1], STDIN_TOKEN, files[2], files[3]]
    } else if p.seed % 2 == 0 {
        // `-` first (handled correctly).
        vec![STDIN_TOKEN, files[0], files[1], files[2], files[3]]
    } else {
        // No stdin at all.
        files
    }
}

/// Correct semantics: `-` processes stdin (descriptor 0), every other token
/// opens its own descriptor.
fn oracle(toks: &[i64]) -> Vec<i64> {
    toks.iter().map(|&t| if t == STDIN_TOKEN { 100 } else { 200 + t }).collect()
}

impl Workload for Gzip {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RealBug
    }

    fn default_params(&self) -> Params {
        Params { threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let toks = tokens(p);
        let mut a = Asm::new();
        let ifd = a.static_zeroed(1);
        let input = a.static_data(&toks);

        a.func("main");
        a.imm(Reg(20), ifd as i64);
        a.imm(Reg(21), input as i64);
        // S1: ifd = 0 (stdin's descriptor).
        a.imm(R2, 0);
        a.mark("S1");
        a.store(R2, Reg(20), 0);
        a.imm(Reg(22), toks.len() as i64);
        a.imm(Reg(23), 0); // token index
        let top = a.label_here();
        let end = a.new_label();
        let file_path = a.new_label();
        let next = a.new_label();
        a.alu(AluOp::Lt, R2, Reg(23), Reg(22));
        a.bez(R2, end);
        a.alui(AluOp::Mul, R3, Reg(23), 8);
        a.alu(AluOp::Add, R3, Reg(21), R3);
        a.load(R4, R3, 0); // token (preloaded input: no dep)
        a.bnz(R4, file_path);
        // `-`: process stdin — BUG: uses whatever ifd currently holds.
        a.mark("S2_get_method_stdin");
        let s2 = a.load(R5, Reg(20), 0);
        a.alui(AluOp::Add, R5, R5, 100);
        a.out(R5); // correct only when ifd is still 0
        a.jump(next);
        a.bind(file_path);
        // File: S3: ifd = open(...); S4: get_method(ifd).
        a.mark("S3_open");
        let s3 = a.store(R4, Reg(20), 0);
        a.mark("S4_get_method_file");
        a.load(R5, Reg(20), 0);
        a.alui(AluOp::Add, R5, R5, 200);
        a.out(R5);
        a.bind(next);
        a.addi(Reg(23), Reg(23), 1);
        a.jump(top);
        a.bind(end);
        a.halt();

        let bug = BugInfo {
            description: "Semantic bug: get_method reads a stale file descriptor when \
                          '-' appears mid-input (dependence S3->S2 instead of S1->S2)"
                .into(),
            class: BugClass::Semantic,
            store_pcs: vec![s3],
            load_pcs: vec![s2],
        };

        BuiltWorkload {
            program: a.finish().expect("gzip assembles"),
            expected_output: oracle(&toks),
            bug: Some(bug),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    fn cfg() -> MachineConfig {
        MachineConfig { jitter_ppm: 0, ..Default::default() }
    }

    #[test]
    fn stdin_first_is_correct() {
        let w = Gzip;
        for seed in [0u64, 1, 2, 3] {
            let built = w.build(&Params { seed, ..w.default_params() });
            let out = Machine::new(&built.program, cfg()).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn stdin_mid_input_is_wrong_deterministically() {
        let w = Gzip;
        let built = w.build(&w.default_params().triggered());
        let out = Machine::new(&built.program, cfg()).run();
        assert!(built.is_failure(&out), "{out}");
        // It completes (the paper's "Comp." status) but with a wrong value.
        assert!(out.completed());
    }
}
