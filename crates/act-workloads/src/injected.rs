//! The five injected bugs of Table VI: each workload is a clean kernel-like
//! base program plus a *new function* appended at the end of the code. The
//! base code's instruction addresses are identical with and without the new
//! function (`Params::new_code`), so a network trained on the base program
//! can be deployed on the extended one — the adaptivity scenario the paper
//! injects bugs into.
//!
//! As everywhere in this crate, clean and triggering builds share identical
//! code; only preloaded data parameters (bounds, pointers, delays, lock
//! addresses) differ.

use crate::spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::{count_loop, delay_from};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R8: Reg = Reg(8);

/// All injected-bug workloads in Table VI order.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(FftTouchArray),
        Box::new(BarnesVlist),
        Box::new(FluidDensitiesMt),
        Box::new(LuTouchA),
        Box::new(SwaptionsWorker),
    ]
}

/// Emit the init-loop `arr[i] = (i*mul + add) % modu` over `n` elements.
fn emit_init(a: &mut Asm, base: u64, n: i64, mul: i64, add: i64, modu: i64, mark: &str) -> u32 {
    let mut pc = 0;
    a.imm(R6, n);
    count_loop(a, R2, R6, R3, |a| {
        a.alui(AluOp::Mul, R4, R2, mul);
        a.alui(AluOp::Add, R4, R4, add);
        a.alui(AluOp::Rem, R4, R4, modu);
        a.alui(AluOp::Mul, R5, R2, 8);
        a.alui(AluOp::Add, R5, R5, base as i64);
        a.mark(mark);
        pc = a.store(R4, R5, 0);
    });
    pc
}

fn init_vals(n: i64, mul: i64, add: i64, modu: i64) -> Vec<i64> {
    (0..n).map(|i| (i * mul + add) % modu).collect()
}

// --------------------------------------------------------------------
// lu: touch_a — off-by-one diagonal walk reads past the matrix.
// --------------------------------------------------------------------

/// `lu` with an injected `touch_a` function (Table VI).
#[derive(Debug, Clone, Copy, Default)]
pub struct LuTouchA;

impl Workload for LuTouchA {
    fn name(&self) -> &'static str {
        "lu:touch_a"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::InjectedBug
    }

    fn norm_code_len(&self) -> Option<usize> {
        Some(256)
    }

    fn default_params(&self) -> Params {
        Params { size: 8, threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(4) as i64;
        // The injected bug: the diagonal walk's bound is n+1 when triggered.
        let bound = if p.trigger_bug { n + 1 } else { n };
        let add = (p.seed % 9) as i64;

        let mut a = Asm::new();
        let mat = a.static_zeroed((n * n) as usize);
        let other = a.static_zeroed((n + 2) as usize);
        let pbound = a.static_data(&[bound]);

        a.func("main");
        let s_mat = emit_init(&mut a, mat, n * n, 31, add, 97, "S_mat");
        let _s_other = emit_init(&mut a, other, n + 2, 7, 1, 50, "S_other");
        let _ = s_mat;
        // Base work: one reduction sweep.
        a.imm(R8, 0);
        a.imm(R6, n * n);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alui(AluOp::Add, R5, R5, mat as i64);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        let hook = a.new_label();
        let back = a.new_label();
        a.jump(hook);
        a.bind(back);
        a.halt();

        let mut bug = None;
        let mut extra_out = Vec::new();
        if p.new_code {
            a.func("touch_a");
            a.bind(hook);
            // Walk the diagonal up to the (possibly buggy) bound.
            a.imm(Reg(20), pbound as i64);
            a.load(R6, Reg(20), 0); // bound (preloaded, no dep)
            a.imm(R8, 0);
            let mut l_touch = 0;
            count_loop(&mut a, R2, R6, R3, |a| {
                a.alui(AluOp::Mul, R5, R2, n);
                a.alu(AluOp::Add, R5, R5, R2);
                a.alui(AluOp::Mul, R5, R5, 8);
                a.alui(AluOp::Add, R5, R5, mat as i64);
                a.mark("L_touch");
                l_touch = a.load(R4, R5, 0);
                a.alu(AluOp::Add, R8, R8, R4);
            });
            a.out(R8);
            a.jump(back);
            bug = Some(BugInfo {
                description: "Injected: touch_a's off-by-one bound reads past the matrix \
                              into an unrelated array"
                    .into(),
                class: BugClass::BufferOverflow,
                store_pcs: vec![], // whichever unrelated store wrote there
                load_pcs: vec![l_touch],
            });
            // Oracle for the new output.
            let m = init_vals(n * n, 31, add, 97);
            let o = init_vals(n + 2, 7, 1, 50);
            let mut diag = 0i64;
            for i in 0..n {
                diag += m[(i * n + i) as usize];
            }
            // The CORRECT new function sums n diagonal elements. When the
            // bug triggers, index n*n+n lands in `other`.
            let _ = o;
            extra_out.push(diag);
        } else {
            a.func("touch_a_stub");
            a.bind(hook);
            a.jump(back);
        }

        let m = init_vals(n * n, 31, add, 97);
        let base_sum: i64 = m.iter().sum();
        let mut expected = vec![base_sum];
        expected.extend(extra_out);

        BuiltWorkload {
            program: a.finish().expect("lu:touch_a assembles"),
            expected_output: expected,
            bug,
        }
    }
}

// --------------------------------------------------------------------
// fft: touch_array — strided read with a bad stride escapes the array.
// --------------------------------------------------------------------

/// `fft` with an injected `touch_array` function (Table VI).
#[derive(Debug, Clone, Copy, Default)]
pub struct FftTouchArray;

impl Workload for FftTouchArray {
    fn name(&self) -> &'static str {
        "fft:touch_array"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::InjectedBug
    }

    fn norm_code_len(&self) -> Option<usize> {
        Some(256)
    }

    fn default_params(&self) -> Params {
        Params { size: 16, threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = (p.size as i64).max(8);
        // Correct stride 1 covers [0, n/2); buggy stride 3 reaches
        // 3(n/2 - 1) >= n, escaping into the shadow buffer.
        let stride = if p.trigger_bug { 3 } else { 1 };
        let add = (p.seed % 5) as i64;

        let mut a = Asm::new();
        let arr = a.static_zeroed(n as usize);
        let shadow = a.static_zeroed(n as usize);
        let pstride = a.static_data(&[stride]);

        a.func("main");
        emit_init(&mut a, arr, n, 7, add, 64, "S_arr");
        emit_init(&mut a, shadow, n, 3, 2, 64, "S_shadow");
        // Base work: one in-place butterfly pass (pairs (2i, 2i+1)).
        a.imm(R6, n / 2);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 16);
            a.alui(AluOp::Add, R5, R5, arr as i64);
            a.load(R4, R5, 0);
            a.load(R8, R5, 8);
            a.alu(AluOp::Add, Reg(9), R4, R8);
            a.store(Reg(9), R5, 0);
            a.alu(AluOp::Sub, Reg(9), R4, R8);
            a.store(Reg(9), R5, 8);
        });
        a.imm(R8, 0);
        a.imm(R6, n);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alui(AluOp::Add, R5, R5, arr as i64);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        let hook = a.new_label();
        let back = a.new_label();
        a.jump(hook);
        a.bind(back);
        a.halt();

        let mut bug = None;
        let mut extra = Vec::new();
        if p.new_code {
            a.func("touch_array");
            a.bind(hook);
            a.imm(Reg(20), pstride as i64);
            a.load(Reg(21), Reg(20), 0); // stride
            a.imm(R8, 0);
            a.imm(R6, n / 2);
            let mut l_touch = 0;
            count_loop(&mut a, R2, R6, R3, |a| {
                a.alu(AluOp::Mul, R5, R2, Reg(21));
                a.alui(AluOp::Mul, R5, R5, 8);
                a.alui(AluOp::Add, R5, R5, arr as i64);
                a.mark("L_touch_arr");
                l_touch = a.load(R4, R5, 0);
                a.alu(AluOp::Add, R8, R8, R4);
            });
            a.out(R8);
            a.jump(back);
            bug = Some(BugInfo {
                description: "Injected: touch_array's stride escapes the array into the \
                              shadow buffer"
                    .into(),
                class: BugClass::BufferOverflow,
                store_pcs: vec![],
                load_pcs: vec![l_touch],
            });
            // Correct new output: sum of arr[0..n/2] after the base pass.
            let after = base_pass(n, add);
            let correct: i64 = (0..n / 2).map(|i| after[i as usize]).sum();
            extra.push(correct);
        } else {
            a.func("touch_array_stub");
            a.bind(hook);
            a.jump(back);
        }

        let after = base_pass(n, add);
        let base_sum: i64 = after.iter().sum();
        let mut expected = vec![base_sum];
        expected.extend(extra);

        BuiltWorkload {
            program: a.finish().expect("fft:touch_array assembles"),
            expected_output: expected,
            bug,
        }
    }
}

fn base_pass(n: i64, add: i64) -> Vec<i64> {
    let mut x = init_vals(n, 7, add, 64);
    for i in 0..(n / 2) as usize {
        let (a, b) = (x[2 * i], x[2 * i + 1]);
        x[2 * i] = a + b;
        x[2 * i + 1] = a - b;
    }
    x
}

// --------------------------------------------------------------------
// barnes: vlist_interaction — wrong base pointer reads bodies, not forces.
// --------------------------------------------------------------------

/// `barnes` with an injected `vlist_interaction` function (Table VI).
#[derive(Debug, Clone, Copy, Default)]
pub struct BarnesVlist;

impl Workload for BarnesVlist {
    fn name(&self) -> &'static str {
        "barnes:vlist_interaction"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::InjectedBug
    }

    fn norm_code_len(&self) -> Option<usize> {
        Some(256)
    }

    fn default_params(&self) -> Params {
        Params { size: 12, threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = (p.size as i64).max(8);
        let add = (p.seed % 6) as i64;

        let mut a = Asm::new();
        let bodies = a.static_zeroed(n as usize);
        let forces = a.static_zeroed(n as usize);
        // The parameter is the base pointer the new function walks: the
        // correct forces array, or (injected bug) the bodies array.
        let base_ptr = if p.trigger_bug { bodies } else { forces };
        let pbase = a.static_data(&[base_ptr as i64]);

        a.func("main");
        emit_init(&mut a, bodies, n, 9, add, 70, "S_body");
        // Base work: forces[i] = (bodies[i] - bodies[(i+1)%n]) >> 1.
        a.imm(R6, n);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alui(AluOp::Add, R5, R5, bodies as i64);
            a.load(R4, R5, 0);
            a.alui(AluOp::Add, R5, R2, 1);
            a.alui(AluOp::Rem, R5, R5, n);
            a.alui(AluOp::Mul, R5, R5, 8);
            a.alui(AluOp::Add, R5, R5, bodies as i64);
            a.load(R8, R5, 0);
            a.alu(AluOp::Sub, R4, R4, R8);
            a.alui(AluOp::Shr, R4, R4, 1);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alui(AluOp::Add, R5, R5, forces as i64);
            a.mark("S_force");
            a.store(R4, R5, 0);
        });
        a.imm(R8, 0);
        a.imm(R6, n);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alui(AluOp::Add, R5, R5, forces as i64);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        let hook = a.new_label();
        let back = a.new_label();
        a.jump(hook);
        a.bind(back);
        a.halt();

        let bodies_v = init_vals(n, 9, add, 70);
        let forces_v: Vec<i64> = (0..n)
            .map(|i| (bodies_v[i as usize] - bodies_v[((i + 1) % n) as usize]) >> 1)
            .collect();

        let mut bug = None;
        let mut extra = Vec::new();
        if p.new_code {
            a.func("vlist_interaction");
            a.bind(hook);
            a.imm(Reg(20), pbase as i64);
            a.load(Reg(21), Reg(20), 0); // base pointer (param)
            a.imm(R8, 0);
            a.imm(R6, n);
            let mut l_vl = 0;
            count_loop(&mut a, R2, R6, R3, |a| {
                a.alui(AluOp::Mul, R5, R2, 8);
                a.alu(AluOp::Add, R5, Reg(21), R5);
                a.mark("L_vlist");
                l_vl = a.load(R4, R5, 0);
                a.alui(AluOp::Mul, R4, R4, 3);
                a.alu(AluOp::Add, R8, R8, R4);
            });
            a.out(R8);
            a.jump(back);
            bug = Some(BugInfo {
                description: "Injected: vlist_interaction walks the bodies array instead \
                              of the forces array"
                    .into(),
                class: BugClass::Semantic,
                store_pcs: vec![],
                load_pcs: vec![l_vl],
            });
            let correct: i64 = forces_v.iter().map(|v| v * 3).sum();
            extra.push(correct);
        } else {
            a.func("vlist_stub");
            a.bind(hook);
            a.jump(back);
        }

        let base_sum: i64 = forces_v.iter().sum();
        let mut expected = vec![base_sum];
        expected.extend(extra);

        BuiltWorkload {
            program: a.finish().expect("barnes:vlist assembles"),
            expected_output: expected,
            bug,
        }
    }
}

// --------------------------------------------------------------------
// fluidanimate: compute_densities_mt — broken lock sharing loses updates.
// --------------------------------------------------------------------

/// `fluidanimate` with an injected parallel `compute_densities_mt`
/// function (Table VI).
#[derive(Debug, Clone, Copy, Default)]
pub struct FluidDensitiesMt;

/// Increments each new-code worker adds to the shared accumulator.
const MT_ROUNDS: i64 = 6;

impl Workload for FluidDensitiesMt {
    fn name(&self) -> &'static str {
        "fluidanimate:compute_densities_mt"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::InjectedBug
    }

    fn norm_code_len(&self) -> Option<usize> {
        Some(256)
    }

    fn default_params(&self) -> Params {
        Params { size: 16, threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = (p.size as i64).max(8);
        let add = (p.seed % 7) as i64;

        let mut a = Asm::new();
        let cells = a.static_zeroed(n as usize);
        let acc = a.static_zeroed(1);
        let lock_a = a.static_zeroed(1);
        let lock_b = a.static_zeroed(1);
        // Parameters: each worker's lock address, start delay, and in-lock
        // window. Clean: both use lock_a and worker 1 starts late. Trigger:
        // different locks, simultaneous start, wide read..write window.
        let (lock0, lock1, start1, window) = if p.trigger_bug {
            (lock_a as i64, lock_b as i64, 0i64, 120i64)
        } else {
            (lock_a as i64, lock_a as i64, 4000, 0)
        };
        let plock0 = a.static_data(&[lock0]);
        let plock1 = a.static_data(&[lock1]);
        let pstart1 = a.static_data(&[start1]);
        let pwindow = a.static_data(&[window]);
        let pzero = a.static_data(&[0]);

        a.func("main");
        emit_init(&mut a, cells, n, 5, add, 40, "S_cell");
        // Base: sequential density sum.
        a.imm(R8, 0);
        a.imm(R6, n);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alui(AluOp::Add, R5, R5, cells as i64);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        let hook = a.new_label();
        let back = a.new_label();
        a.jump(hook);
        a.bind(back);
        a.halt();

        let cells_v = init_vals(n, 5, add, 40);
        let base_sum: i64 = cells_v.iter().sum();

        let mut bug = None;
        let mut extra = Vec::new();
        if p.new_code {
            // New code: two workers each add MT_ROUNDS increments of 1 into
            // the shared accumulator under (what they think is) a lock.
            let mt_worker = a.new_label();
            a.func("compute_densities_mt");
            a.bind(hook);
            a.imm(Reg(20), acc as i64);
            a.imm(R2, 0);
            a.mark("S_acc0");
            let s_acc0 = a.store(R2, Reg(20), 0);
            a.imm(R2, 0);
            a.spawn(Reg(10), mt_worker, R2);
            a.imm(R2, 1);
            a.spawn(Reg(11), mt_worker, R2);
            a.join(Reg(10));
            a.join(Reg(11));
            a.mark("L_acc_final");
            let l_acc_final = a.load(R4, Reg(20), 0);
            a.out(R4);
            a.jump(back);

            a.func("mt_worker");
            a.bind(mt_worker);
            a.imm(Reg(20), acc as i64);
            // Pick this worker's lock address and start delay.
            let use0 = a.new_label();
            let picked = a.new_label();
            a.bez(Reg(1), use0);
            a.imm(Reg(22), plock1 as i64);
            a.load(Reg(21), Reg(22), 0);
            delay_from(&mut a, pstart1, R5, R2);
            a.jump(picked);
            a.bind(use0);
            a.imm(Reg(22), plock0 as i64);
            a.load(Reg(21), Reg(22), 0);
            a.bind(picked);
            a.imm(R6, MT_ROUNDS);
            let mut l_acc = 0;
            let _ = s_acc0;
            count_loop(&mut a, R2, R6, R3, |a| {
                a.lock(Reg(21), 0);
                a.mark("L_acc");
                l_acc = a.load(R4, Reg(20), 0);
                delay_from(a, if window > 0 { pwindow } else { pzero }, R5, R8);
                a.alui(AluOp::Add, R4, R4, 1);
                a.mark("S_acc");
                a.store(R4, Reg(20), 0);
                a.unlock(Reg(21), 0);
            });
            a.halt();

            bug = Some(BugInfo {
                description: "Injected: compute_densities_mt workers use different lock \
                              words, so the accumulator read-modify-write races"
                    .into(),
                class: BugClass::AtomicityViolation,
                store_pcs: vec![],
                load_pcs: vec![l_acc, l_acc_final],
            });
            extra.push(2 * MT_ROUNDS);
        } else {
            a.func("compute_densities_mt_stub");
            a.bind(hook);
            a.jump(back);
        }

        let mut expected = vec![base_sum];
        expected.extend(extra);

        BuiltWorkload {
            program: a.finish().expect("fluid:mt assembles"),
            expected_output: expected,
            bug,
        }
    }
}

// --------------------------------------------------------------------
// swaptions: worker — aggregate reads results before they are final.
// --------------------------------------------------------------------

/// `swaptions` with an injected early-aggregation `worker` function
/// (Table VI).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwaptionsWorker;

impl Workload for SwaptionsWorker {
    fn name(&self) -> &'static str {
        "swaptions:worker"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::InjectedBug
    }

    fn norm_code_len(&self) -> Option<usize> {
        Some(256)
    }

    fn default_params(&self) -> Params {
        Params { size: 30, threads: 2, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let iters = (p.size as i64).max(8);
        let add = (p.seed % 23) as i64;
        // The new aggregator waits d_agg before reading the result slots.
        let d_agg = if p.trigger_bug { 20i64 } else { 30_000 };

        let mut a = Asm::new();
        let results = a.static_zeroed(2);
        let pd_agg = a.static_data(&[d_agg]);

        let price = |w: i64| {
            let mut acc = w * 100 + add;
            for it in 0..iters {
                acc = (acc * 31 + it) % 100_003;
            }
            acc
        };

        a.func("main");
        let worker = a.new_label();
        a.imm(Reg(20), results as i64);
        // Zero the result slots (stores, so the early read forms a dep).
        a.imm(R2, 0);
        a.mark("S_zero0");
        let s_zero0 = a.store(R2, Reg(20), 0);
        a.mark("S_zero1");
        let s_zero1 = a.store(R2, Reg(20), 8);
        a.imm(R2, 0);
        a.spawn(Reg(10), worker, R2);
        a.imm(R2, 1);
        a.spawn(Reg(11), worker, R2);
        let hook = a.new_label();
        let back = a.new_label();
        a.jump(hook);
        a.bind(back);
        a.join(Reg(10));
        a.join(Reg(11));
        a.load(R4, Reg(20), 0);
        a.load(R5, Reg(20), 8);
        a.alu(AluOp::Add, R4, R4, R5);
        a.out(R4);
        a.halt();

        a.func("price_worker");
        a.bind(worker);
        a.alui(AluOp::Mul, R4, Reg(1), 100);
        a.alui(AluOp::Add, R4, R4, add);
        a.imm(R6, iters);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R4, 31);
            a.alu(AluOp::Add, R4, R4, R2);
            a.alui(AluOp::Rem, R4, R4, 100_003);
        });
        a.alui(AluOp::Mul, R5, Reg(1), 8);
        a.alui(AluOp::Add, R5, R5, results as i64);
        a.mark("S_final");
        a.store(R4, R5, 0);
        a.halt();

        let mut bug = None;
        let mut extra = Vec::new();
        if p.new_code {
            a.func("worker_aggregate");
            a.bind(hook);
            // New code: report partial totals WITHOUT joining first — only a
            // long delay makes it correct. The injected bug shrinks the
            // delay so the zeros are read.
            delay_from(&mut a, pd_agg, R5, R2);
            a.imm(Reg(20), results as i64);
            a.mark("L_agg0");
            let l0 = a.load(R4, Reg(20), 0);
            a.mark("L_agg1");
            let l1 = a.load(R5, Reg(20), 8);
            a.alu(AluOp::Add, R4, R4, R5);
            a.out(R4);
            a.jump(back);
            bug = Some(BugInfo {
                description: "Injected: aggregation reads worker results before the \
                              workers have finished (missing join)"
                    .into(),
                class: BugClass::OrderViolation,
                store_pcs: vec![s_zero0, s_zero1],
                load_pcs: vec![l0, l1],
            });
            extra.push(price(0) + price(1));
        } else {
            a.func("worker_stub");
            a.bind(hook);
            a.jump(back);
        }

        // Output order: the aggregate (if any) prints before the final sum.
        let mut expected = extra;
        expected.push(price(0) + price(1));

        BuiltWorkload {
            program: a.finish().expect("swaptions:worker assembles"),
            expected_output: expected,
            bug,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    fn cfg(seed: u64) -> MachineConfig {
        MachineConfig { jitter_ppm: 10_000, seed, ..Default::default() }
    }

    #[test]
    fn base_variants_run_correctly() {
        for w in all() {
            let built = w.build(&w.default_params());
            for seed in 0..3 {
                let out = Machine::new(&built.program, cfg(seed)).run();
                assert!(built.is_correct(&out), "{} base seed {seed}: {out}", w.name());
            }
        }
    }

    #[test]
    fn new_code_clean_variants_run_correctly() {
        for w in all() {
            let p = Params { new_code: true, ..w.default_params() };
            let built = w.build(&p);
            for seed in 0..3 {
                let out = Machine::new(&built.program, cfg(seed)).run();
                assert!(built.is_correct(&out), "{} new-code seed {seed}: {out}", w.name());
            }
        }
    }

    #[test]
    fn new_code_triggered_variants_fail() {
        for w in all() {
            let p = Params { new_code: true, ..w.default_params().triggered() };
            let built = w.build(&p);
            let mut failures = 0;
            for seed in 0..4 {
                let out = Machine::new(&built.program, cfg(seed)).run();
                if built.is_failure(&out) {
                    failures += 1;
                }
            }
            assert!(failures >= 3, "{}: only {failures}/4 triggered runs failed", w.name());
        }
    }

    #[test]
    fn shared_code_has_identical_pcs_across_variants() {
        for w in all() {
            let base = w.build(&w.default_params());
            let ext = w.build(&Params { new_code: true, ..w.default_params() });
            let shared = base.program.instrs.len().min(ext.program.instrs.len());
            // Everything up to the hook stub must be identical. The stub is
            // at most 2 instructions from the end of the base program.
            let check = shared.saturating_sub(2);
            assert_eq!(
                &base.program.instrs[..check],
                &ext.program.instrs[..check],
                "{}: shared code shifted between variants",
                w.name()
            );
        }
    }
}
