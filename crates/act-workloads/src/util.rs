//! Assembly-emission helpers shared by workload builders.

use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// Emit `for i in 0..n { body }` where `n` is already in register `n`.
/// `i` is the loop counter register, `t` a scratch register for the
/// condition. The body runs at least once, so callers must guarantee
/// `n >= 1`.
pub fn count_loop<F: FnOnce(&mut Asm)>(a: &mut Asm, i: Reg, n: Reg, t: Reg, body: F) {
    a.imm(i, 0);
    let top = a.label_here();
    body(a);
    a.addi(i, i, 1);
    a.alu(AluOp::Lt, t, i, n);
    a.bnz(t, top);
}

/// Emit a register-only delay loop whose iteration count is loaded from the
/// data-segment word at `param_addr`.
///
/// Delay parameters are *preloaded* data (never stored to by the program),
/// so the load forms no RAW dependence — delays perturb timing without
/// adding communication noise. A zero parameter skips the loop entirely.
pub fn delay_from(a: &mut Asm, param_addr: u64, addr_t: Reg, ctr: Reg) {
    a.imm(addr_t, param_addr as i64);
    a.load(ctr, addr_t, 0);
    let done = a.new_label();
    let top = a.label_here();
    a.bez(ctr, done);
    a.alui(AluOp::Sub, ctr, ctr, 1);
    a.jump(top);
    a.bind(done);
}

/// Emit `dst = base_addr + idx * 8` (word-address computation).
pub fn word_addr(a: &mut Asm, dst: Reg, base_addr: u64, idx: Reg) {
    a.alui(AluOp::Mul, dst, idx, 8);
    a.alui(AluOp::Add, dst, dst, base_addr as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;
    use act_sim::outcome::RunOutcome;

    const R1: Reg = Reg(1);
    const R2: Reg = Reg(2);
    const R3: Reg = Reg(3);
    const R4: Reg = Reg(4);

    fn run(p: &act_sim::program::Program) -> RunOutcome {
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        Machine::new(p, cfg).run()
    }

    #[test]
    fn count_loop_iterates_n_times() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(R2, 5); // n
        a.imm(R4, 0); // sum
        count_loop(&mut a, R1, R2, R3, |a| {
            a.addi(R4, R4, 2);
        });
        a.out(R4);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(run(&p), RunOutcome::Completed { output: vec![10] });
    }

    #[test]
    fn delay_from_burns_cycles_without_deps() {
        let build = |d: i64| {
            let mut a = Asm::new();
            let param = a.static_data(&[d]);
            a.func("main");
            delay_from(&mut a, param, R1, R2);
            a.halt();
            a.finish().unwrap()
        };
        let fast = build(0);
        let slow = build(500);
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let mut mf = Machine::new(&fast, cfg.clone());
        mf.run();
        let mut ms = Machine::new(&slow, cfg);
        ms.run();
        assert!(ms.stats().total_cycles > mf.stats().total_cycles + 400);
        // Parameter loads form no dependences (preloaded data).
        assert_eq!(ms.stats().mem.deps_formed, 0);
    }

    #[test]
    fn word_addr_computes_element_address() {
        let mut a = Asm::new();
        let arr = a.static_data(&[10, 20, 30]);
        a.func("main");
        a.imm(R1, 2);
        word_addr(&mut a, R2, arr, R1);
        a.load(R3, R2, 0);
        a.out(R3);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(run(&p), RunOutcome::Completed { output: vec![30] });
    }
}
