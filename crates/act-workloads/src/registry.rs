//! Name-indexed access to every workload.

use crate::spec::Workload;

/// All workloads: clean kernels, real bugs, injected bugs.
pub fn all() -> Vec<Box<dyn Workload>> {
    let mut v = crate::kernels::all();
    v.extend(crate::bugs::all());
    v.extend(crate::injected::all());
    v
}

/// Look a workload up by its `name()`.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadKind;

    #[test]
    fn registry_has_all_paper_workloads() {
        let names: Vec<&str> = all().iter().map(|w| w.name()).collect();
        // 8 clean kernels.
        for k in [
            "lu",
            "fft",
            "canneal",
            "fluidanimate",
            "swaptions",
            "barnes",
            "streamcluster",
            "bc",
            "mcf",
            "hmmer",
            "bzip2",
            "ocean",
        ] {
            assert!(names.contains(&k), "missing kernel {k}");
        }
        // 11 real bugs (Table V).
        for b in [
            "aget",
            "apache",
            "memcached",
            "mysql1",
            "mysql2",
            "mysql3",
            "pbzip2",
            "gzip",
            "seq",
            "ptx",
            "paste",
        ] {
            assert!(names.contains(&b), "missing real bug {b}");
        }
        // 5 injected bugs (Table VI).
        assert_eq!(all().iter().filter(|w| w.kind() == WorkloadKind::InjectedBug).count(), 5);
        assert_eq!(all().iter().filter(|w| w.kind() == WorkloadKind::RealBug).count(), 11);
    }

    #[test]
    fn by_name_round_trips() {
        assert!(by_name("apache").is_some());
        assert!(by_name("lu").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
