//! # act-workloads — benchmark kernels and buggy applications
//!
//! Mini-ISA programs standing in for the paper's evaluation targets:
//! clean SPLASH2/PARSEC/coreutils-style kernels (Table IV, Figs 7–9), the
//! 11 real-world bugs of Table V, and the 5 injected-in-new-code bugs of
//! Table VI. Every workload carries a Rust-side oracle (its expected
//! output) and, when buggy, a ground-truth [`spec::BugInfo`] naming the
//! buggy store/load instruction addresses so diagnosis rankings can be
//! scored automatically.

pub mod bugs;
pub mod injected;
pub mod kernels;
pub mod registry;
pub mod spec;
pub mod util;

pub use spec::{BugClass, BugInfo, BuiltWorkload, Params, Workload, WorkloadKind, NORM_CODE_LEN};
