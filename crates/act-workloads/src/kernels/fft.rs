//! `fft` — a butterfly-network kernel in the spirit of SPLASH2's FFT:
//! `log2(n)` passes over an array, each pass combining disjoint element
//! pairs, with worker threads partitioning the pairs. Pairs are disjoint
//! within a pass, so the integer result is interleaving-independent.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The FFT-style butterfly kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fft;

const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const RN: Reg = Reg(20);
const RB: Reg = Reg(21);

fn oracle(n: usize, seed: u64) -> Vec<i64> {
    let mut x: Vec<i64> = (0..n as i64).map(|i| (i * 7 + (seed as i64 % 11)) % 64).collect();
    let passes = n.trailing_zeros() as usize;
    for pass in 0..passes {
        let stride = 1i64 << pass;
        let mut y = x.clone();
        for p in 0..(n as i64) / 2 {
            let q = p / stride;
            let r = p % stride;
            let i1 = (q * 2 * stride + r) as usize;
            let i2 = (i1 as i64 + stride) as usize;
            let (a, b) = (x[i1], x[i2]);
            y[i1] = a.wrapping_add(b);
            y[i2] = a.wrapping_sub(b);
        }
        x = y;
    }
    let sum = x.iter().fold(0i64, |a, &b| a.wrapping_add(b.wrapping_mul(b) & 0xffff));
    vec![sum]
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 32, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.next_power_of_two().max(8);
        let t = p.threads.clamp(1, 7);
        let passes = n.trailing_zeros() as i64;
        let mut a = Asm::new();
        let arr = a.static_zeroed(n);
        let seed_term = (p.seed % 11) as i64;

        a.func("main");
        a.imm(RN, n as i64);
        a.imm(RB, arr as i64);
        count_loop(&mut a, R2, RN, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 7);
            a.alui(AluOp::Add, R4, R4, seed_term);
            a.alui(AluOp::Rem, R4, R4, 64);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.store(R4, R5, 0);
        });

        // Pass loop.
        let worker = a.new_label();
        a.imm(R9, 0); // pass
        let pass_top = a.label_here();
        for w in 0..t {
            a.alui(AluOp::Mul, R2, R9, 256);
            a.alui(AluOp::Add, R2, R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        a.addi(R9, R9, 1);
        a.alui(AluOp::Lt, R2, R9, passes);
        a.bnz(R2, pass_top);

        // Checksum: sum of (x[i]^2 & 0xffff).
        a.imm(R8, 0);
        count_loop(&mut a, R2, RN, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Mul, R4, R4, R4);
            a.alui(AluOp::And, R4, R4, 0xffff);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Worker: arg = pass*256 + w. Pairs p = w, w+t, ... < n/2.
        a.func("fft_worker");
        a.bind(worker);
        a.alui(AluOp::Shr, R2, R1, 8); // pass
        a.alui(AluOp::And, R3, R1, 255); // w
        a.imm(RB, arr as i64);
        a.imm(R9, 1);
        a.alu(AluOp::Shl, R9, R9, R2); // stride = 1 << pass
        a.imm(RN, (n / 2) as i64);
        a.alui(AluOp::Add, R4, R3, 0); // p = w
        let done = a.new_label();
        let top = a.label_here();
        a.alu(AluOp::Lt, R5, R4, RN);
        a.bez(R5, done);
        // i1 = (p / stride) * 2*stride + p % stride
        a.alu(AluOp::Div, R5, R4, R9);
        a.alu(AluOp::Mul, R5, R5, R9);
        a.alui(AluOp::Mul, R5, R5, 2);
        a.alu(AluOp::Rem, R6, R4, R9);
        a.alu(AluOp::Add, R5, R5, R6); // i1
        a.alu(AluOp::Add, R6, R5, R9); // i2 = i1 + stride
                                       // addresses
        a.alui(AluOp::Mul, R5, R5, 8);
        a.alu(AluOp::Add, R5, RB, R5);
        a.alui(AluOp::Mul, R6, R6, 8);
        a.alu(AluOp::Add, R6, RB, R6);
        a.load(R7, R5, 0); // a
        a.load(R8, R6, 0); // b
        a.alu(AluOp::Add, R2, R7, R8);
        a.store(R2, R5, 0);
        a.alu(AluOp::Sub, R2, R7, R8);
        a.store(R2, R6, 0);
        // NOTE: R2 was pass; stride already captured in R9 so this is safe.
        a.alui(AluOp::Add, R4, R4, t as i64);
        a.jump(top);
        a.bind(done);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("fft assembles"),
            expected_output: oracle(n, p.seed),
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle() {
        let w = Fft;
        for threads in [1, 3] {
            let built = w.build(&Params { threads, ..w.default_params() });
            let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "threads={threads}: {out}");
        }
    }
}
