//! `canneal` — a lock-based element-swapping kernel in the spirit of
//! PARSEC's canneal: worker threads repeatedly pick element pairs (from a
//! precomputed random schedule) and conditionally swap them under a global
//! lock. The element *sum* is swap-invariant, giving a deterministic oracle
//! under any interleaving.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The canneal-style swapping kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Canneal;

const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const RB: Reg = Reg(21);
const RL: Reg = Reg(22);
const RS: Reg = Reg(23);

const ITERS_PER_WORKER: usize = 12;

impl Workload for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 24, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(8);
        let t = p.threads.clamp(1, 7);
        let mut rng = StdRng::seed_from_u64(p.seed.wrapping_mul(0xc0ffee) ^ 7);

        // Precomputed swap schedule: 2 indices per iteration per worker.
        let schedule: Vec<i64> =
            (0..t * ITERS_PER_WORKER * 2).map(|_| rng.gen_range(0..n as i64)).collect();
        let init: Vec<i64> =
            (0..n).map(|i| ((i as i64) * 13 + (p.seed as i64 % 17)) % 50).collect();
        let expected: i64 = init.iter().sum();

        let mut a = Asm::new();
        let elems = a.static_zeroed(n);
        let lock_word = a.static_zeroed(1);
        let sched = a.static_data(&schedule);

        a.func("main");
        a.imm(RB, elems as i64);
        a.imm(R6, n as i64);
        let seed_term = (p.seed % 17) as i64;
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 13);
            a.alui(AluOp::Add, R4, R4, seed_term);
            a.alui(AluOp::Rem, R4, R4, 50);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.store(R4, R5, 0);
        });
        let worker = a.new_label();
        for w in 0..t {
            a.imm(R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        // Sum (swap-invariant).
        a.imm(R6, n as i64);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Worker w: iterate the schedule slice [w*ITERS .. (w+1)*ITERS).
        a.func("canneal_worker");
        a.bind(worker);
        a.imm(RB, elems as i64);
        a.imm(RL, lock_word as i64);
        a.imm(RS, sched as i64);
        // schedule cursor = (w * ITERS) * 2 words
        a.alui(AluOp::Mul, R9, R1, (ITERS_PER_WORKER * 16) as i64);
        a.alu(AluOp::Add, R9, RS, R9);
        a.imm(R8, ITERS_PER_WORKER as i64);
        count_loop(&mut a, R2, R8, R3, |a| {
            a.load(R4, R9, 0); // i (preloaded schedule: no dep)
            a.load(R5, R9, 8); // j
            a.alui(AluOp::Mul, R4, R4, 8);
            a.alu(AluOp::Add, R4, RB, R4);
            a.alui(AluOp::Mul, R5, R5, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.lock(RL, 0);
            a.load(R6, R4, 0);
            a.load(R7, R5, 0);
            // Swap into sorted order if out of order.
            let skip = a.new_label();
            let tmp = Reg(15);
            a.alu(AluOp::Le, tmp, R6, R7);
            a.bnz(tmp, skip);
            a.store(R7, R4, 0);
            a.store(R6, R5, 0);
            a.bind(skip);
            a.unlock(RL, 0);
            a.alui(AluOp::Add, R9, R9, 16);
        });
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("canneal assembles"),
            expected_output: vec![expected],
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn sum_is_invariant_under_heavy_jitter() {
        let w = Canneal;
        let built = w.build(&w.default_params());
        for seed in 0..3 {
            let cfg = MachineConfig { jitter_ppm: 80_000, seed, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn uses_locks() {
        let w = Canneal;
        let built = w.build(&w.default_params());
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let mut m = Machine::new(&built.program, cfg);
        let _ = m.run();
        assert!(m.stats().lock_acquires >= (4 * ITERS_PER_WORKER) as u64);
    }
}
