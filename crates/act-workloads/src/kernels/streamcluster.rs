//! `streamcluster` — a nearest-center assignment kernel in the spirit of
//! PARSEC's streamcluster: workers scan their slice of points, compute the
//! distance to every shared center, and accumulate the minimum distances
//! into per-worker cost cells that the main thread reduces.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The streamcluster-style clustering kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Streamcluster;

const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const RB: Reg = Reg(21);
const RC: Reg = Reg(22);
const RK: Reg = Reg(23);
const RACC: Reg = Reg(24);

const CENTERS: usize = 4;

fn point(i: i64, seed: u64) -> i64 {
    (i * 23 + (seed as i64 % 19)) % 200
}

fn center(c: i64) -> i64 {
    c * 50 + 10
}

fn oracle(n: usize, t: usize, seed: u64) -> Vec<i64> {
    let mut total = 0i64;
    for i in 0..n as i64 {
        let x = point(i, seed);
        let best = (0..CENTERS as i64)
            .map(|c| {
                let d = x - center(c);
                d.max(-d)
            })
            .min()
            .unwrap();
        total = total.wrapping_add(best);
    }
    let _ = t;
    vec![total]
}

impl Workload for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 32, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(8);
        let t = p.threads.clamp(1, 7);
        let mut a = Asm::new();
        let points = a.static_zeroed(n);
        let centers = a.static_zeroed(CENTERS);
        let costs = a.static_zeroed(t);
        let seed_term = (p.seed % 19) as i64;

        a.func("main");
        a.imm(RB, points as i64);
        a.imm(R6, n as i64);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 23);
            a.alui(AluOp::Add, R4, R4, seed_term);
            a.alui(AluOp::Rem, R4, R4, 200);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.store(R4, R5, 0);
        });
        a.imm(RC, centers as i64);
        a.imm(R6, CENTERS as i64);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 50);
            a.alui(AluOp::Add, R4, R4, 10);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RC, R5);
            a.store(R4, R5, 0);
        });
        let worker = a.new_label();
        for w in 0..t {
            a.imm(R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        a.imm(RB, costs as i64);
        a.imm(R6, t as i64);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Worker w: points i = w, w+t, ...; acc of min distances.
        a.func("assign_points");
        a.bind(worker);
        a.imm(RB, points as i64);
        a.imm(RC, centers as i64);
        a.imm(RACC, 0);
        a.alui(AluOp::Add, R4, R1, 0); // i = w
        let done = a.new_label();
        let top = a.label_here();
        a.alui(AluOp::Lt, R5, R4, n as i64);
        a.bez(R5, done);
        a.alui(AluOp::Mul, R5, R4, 8);
        a.alu(AluOp::Add, R5, RB, R5);
        a.load(R6, R5, 0); // x
        a.imm(R9, i64::MAX); // best
        a.imm(RK, CENTERS as i64);
        count_loop(&mut a, R2, RK, R3, |a| {
            a.alui(AluOp::Mul, R7, R2, 8);
            a.alu(AluOp::Add, R7, RC, R7);
            a.load(R7, R7, 0); // center
            a.alu(AluOp::Sub, R8, R6, R7); // d
            a.alu(AluOp::Sub, R7, act_sim::isa::ZERO, R8); // -d
            a.alu(AluOp::Max, R8, R8, R7); // |d|
            a.alu(AluOp::Min, R9, R9, R8);
        });
        a.alu(AluOp::Add, RACC, RACC, R9);
        a.alui(AluOp::Add, R4, R4, t as i64);
        a.jump(top);
        a.bind(done);
        a.alui(AluOp::Mul, R5, R1, 8);
        a.alui(AluOp::Add, R5, R5, costs as i64);
        a.store(RACC, R5, 0);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("streamcluster assembles"),
            expected_output: oracle(n, t, p.seed),
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle() {
        let w = Streamcluster;
        let built = w.build(&w.default_params());
        let cfg = MachineConfig { jitter_ppm: 20_000, seed: 4, ..Default::default() };
        let out = Machine::new(&built.program, cfg).run();
        assert!(built.is_correct(&out), "{out}");
    }
}
