//! `barnes` — a pairwise-interaction kernel in the spirit of SPLASH2's
//! Barnes-Hut force phase: workers walk a precomputed interaction list and
//! accumulate forces into *private* per-worker arrays (read-shared bodies,
//! private accumulation), which the main thread reduces.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The Barnes-Hut-style interaction kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Barnes;

const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const RB: Reg = Reg(21);
const RF: Reg = Reg(22);
const RS: Reg = Reg(23);

const PAIRS_PER_WORKER: usize = 16;

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 20, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(8);
        let t = p.threads.clamp(1, 7);
        let mut rng = StdRng::seed_from_u64(p.seed.wrapping_mul(0xbadc0de) ^ 3);
        let pairs: Vec<(i64, i64)> = (0..t * PAIRS_PER_WORKER)
            .map(|_| (rng.gen_range(0..n as i64), rng.gen_range(0..n as i64)))
            .collect();
        let flat: Vec<i64> = pairs.iter().flat_map(|&(i, j)| [i, j]).collect();
        let body = |i: i64| (i * 9 + (p.seed as i64 % 5)) % 70;

        // Oracle.
        let mut forces = vec![0i64; n * t];
        for (w, chunk) in pairs.chunks(PAIRS_PER_WORKER).enumerate() {
            for &(i, j) in chunk {
                let d = (body(i) - body(j)) >> 2;
                forces[w * n + i as usize] = forces[w * n + i as usize].wrapping_add(d);
                forces[w * n + j as usize] = forces[w * n + j as usize].wrapping_sub(d);
            }
        }
        let expected: i64 = forces.iter().fold(0, |a, &b| a.wrapping_add(b.wrapping_mul(3)));

        let mut a = Asm::new();
        let bodies = a.static_zeroed(n);
        let force = a.static_zeroed(n * t);
        let sched = a.static_data(&flat);
        let seed_term = (p.seed % 5) as i64;

        a.func("main");
        a.imm(RB, bodies as i64);
        a.imm(R6, n as i64);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 9);
            a.alui(AluOp::Add, R4, R4, seed_term);
            a.alui(AluOp::Rem, R4, R4, 70);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.store(R4, R5, 0);
        });
        let worker = a.new_label();
        for w in 0..t {
            a.imm(R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        a.imm(RF, force as i64);
        a.imm(R6, (n * t) as i64);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RF, R5);
            a.load(R4, R5, 0);
            a.alui(AluOp::Mul, R4, R4, 3);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Worker w: pairs [w*P .. (w+1)*P), private force slice at w*n.
        a.func("vlist_walk");
        a.bind(worker);
        a.imm(RB, bodies as i64);
        a.alui(AluOp::Mul, RF, R1, (n * 8) as i64);
        a.alui(AluOp::Add, RF, RF, force as i64);
        a.alui(AluOp::Mul, RS, R1, (PAIRS_PER_WORKER * 16) as i64);
        a.alui(AluOp::Add, RS, RS, sched as i64);
        a.imm(R8, PAIRS_PER_WORKER as i64);
        count_loop(&mut a, R2, R8, R3, |a| {
            a.load(R4, RS, 0); // i (schedule: preloaded, no dep)
            a.load(R5, RS, 8); // j
                               // d = (body[i] - body[j]) >> 2
            a.alui(AluOp::Mul, R6, R4, 8);
            a.alu(AluOp::Add, R6, RB, R6);
            a.load(R6, R6, 0);
            a.alui(AluOp::Mul, R7, R5, 8);
            a.alu(AluOp::Add, R7, RB, R7);
            a.load(R7, R7, 0);
            a.alu(AluOp::Sub, R6, R6, R7);
            a.alui(AluOp::Shr, R6, R6, 2);
            // force[i] += d
            a.alui(AluOp::Mul, R7, R4, 8);
            a.alu(AluOp::Add, R7, RF, R7);
            a.load(R9, R7, 0);
            a.alu(AluOp::Add, R9, R9, R6);
            a.store(R9, R7, 0);
            // force[j] -= d
            a.alui(AluOp::Mul, R7, R5, 8);
            a.alu(AluOp::Add, R7, RF, R7);
            a.load(R9, R7, 0);
            a.alu(AluOp::Sub, R9, R9, R6);
            a.store(R9, R7, 0);
            a.alui(AluOp::Add, RS, RS, 16);
        });
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("barnes assembles"),
            expected_output: vec![expected],
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle() {
        let w = Barnes;
        let built = w.build(&w.default_params());
        let cfg = MachineConfig { jitter_ppm: 30_000, seed: 2, ..Default::default() };
        let out = Machine::new(&built.program, cfg).run();
        assert!(built.is_correct(&out), "{out}");
    }
}
