//! `bc` — a sequential stack-machine expression evaluator in the spirit of
//! GNU `bc`: a random arithmetic program (push / add / sub / mul opcodes)
//! is interpreted over an in-memory operand stack. This is the crate's
//! representative *sequential* application with data-dependent control flow
//! (an opcode dispatch chain) and rich intra-thread RAW dependences through
//! the stack.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The bc-style stack-machine interpreter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bc;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const RIP: Reg = Reg(20);
const RSP: Reg = Reg(21);

/// Opcodes of the interpreted bytecode.
const OP_PUSH: i64 = 0;
const OP_ADD: i64 = 1;
const OP_SUB: i64 = 2;
const OP_MUL: i64 = 3;
const OP_END: i64 = 4;

/// Generate a well-formed bytecode program and its result. The *structure*
/// (opcode sequence) is fixed — it is the program being interpreted — while
/// the pushed immediates vary with the seed, like running the same bc
/// script on different inputs.
fn gen_bytecode(size: usize, seed: u64) -> (Vec<i64>, i64) {
    let mut structure = StdRng::seed_from_u64(0xbc_bc_bc);
    let mut values = StdRng::seed_from_u64(seed.wrapping_mul(0x5eed) ^ 99);
    let mut code = Vec::new();
    let mut stack: Vec<i64> = Vec::new();
    let ops = size.max(6);
    for _ in 0..ops {
        if stack.len() < 2 || structure.gen_bool(0.5) {
            let v = values.gen_range(-20i64..20);
            code.extend([OP_PUSH, v]);
            stack.push(v);
        } else {
            let b = stack.pop().unwrap();
            let a = stack.pop().unwrap();
            let (op, r) = match structure.gen_range(0..3) {
                0 => (OP_ADD, a.wrapping_add(b)),
                1 => (OP_SUB, a.wrapping_sub(b)),
                _ => (OP_MUL, (a.wrapping_mul(b)) % 1000),
            };
            code.push(op);
            stack.push(r);
        }
    }
    // Fold the stack down to one value with adds.
    while stack.len() > 1 {
        let b = stack.pop().unwrap();
        let a = stack.pop().unwrap();
        code.push(OP_ADD);
        stack.push(a.wrapping_add(b));
    }
    code.push(OP_END);
    (code, stack[0])
}

impl Workload for Bc {
    fn name(&self) -> &'static str {
        "bc"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 40, threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let (code, result) = gen_bytecode(p.size, p.seed);
        let mut a = Asm::new();
        let bytecode = a.static_data(&code);
        // Worst case every opcode is a push, so size the stack accordingly.
        let stack = a.static_zeroed(p.size.max(6) + 8);

        a.func("main");
        a.imm(RIP, bytecode as i64);
        a.imm(RSP, stack as i64); // empty ascending stack
        let fetch = a.new_label();
        let do_push = a.new_label();
        let do_add = a.new_label();
        let do_sub = a.new_label();
        let do_mul = a.new_label();
        let do_end = a.new_label();
        let binop_done = a.new_label();

        a.bind(fetch);
        a.load(R2, RIP, 0); // opcode (preloaded bytecode: no dep noise)
        a.addi(RIP, RIP, 8);
        a.alui(AluOp::Eq, R3, R2, OP_PUSH);
        a.bnz(R3, do_push);
        a.alui(AluOp::Eq, R3, R2, OP_ADD);
        a.bnz(R3, do_add);
        a.alui(AluOp::Eq, R3, R2, OP_SUB);
        a.bnz(R3, do_sub);
        a.alui(AluOp::Eq, R3, R2, OP_MUL);
        a.bnz(R3, do_mul);
        a.jump(do_end);

        a.bind(do_push);
        a.load(R4, RIP, 0); // immediate operand
        a.addi(RIP, RIP, 8);
        a.store(R4, RSP, 0);
        a.addi(RSP, RSP, 8);
        a.jump(fetch);

        // Binary ops: pop b, pop a, push result (stack loads form deps).
        a.bind(do_add);
        a.load(R5, RSP, -8); // b
        a.load(R4, RSP, -16); // a
        a.alu(AluOp::Add, R4, R4, R5);
        a.jump(binop_done);

        a.bind(do_sub);
        a.load(R5, RSP, -8);
        a.load(R4, RSP, -16);
        a.alu(AluOp::Sub, R4, R4, R5);
        a.jump(binop_done);

        a.bind(do_mul);
        a.load(R5, RSP, -8);
        a.load(R4, RSP, -16);
        a.alu(AluOp::Mul, R4, R4, R5);
        a.alui(AluOp::Rem, R4, R4, 1000);
        a.jump(binop_done);

        a.bind(binop_done);
        a.addi(RSP, RSP, -16);
        a.store(R4, RSP, 0);
        a.addi(RSP, RSP, 8);
        a.jump(fetch);

        a.bind(do_end);
        a.load(R4, RSP, -8);
        a.out(R4);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("bc assembles"),
            expected_output: vec![result],
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn evaluates_random_programs_correctly() {
        for seed in 0..5 {
            let w = Bc;
            let built = w.build(&Params { seed, ..w.default_params() });
            let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn stack_traffic_forms_dependences() {
        let w = Bc;
        let built = w.build(&w.default_params());
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let mut m = Machine::new(&built.program, cfg);
        let _ = m.run();
        assert!(m.stats().mem.deps_formed > 10);
    }
}
