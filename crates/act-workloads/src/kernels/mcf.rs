//! `mcf` — a pointer-chasing kernel in the spirit of SPEC INT's mcf: a
//! linked list threaded through memory in shuffled order is built with
//! stores and then traversed by loads, accumulating node values. Dependences
//! flow through the `next` pointers themselves, giving the long
//! load-to-load chains mcf is famous for.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use act_rng::rngs::StdRng;
use act_rng::seq::SliceRandom;
use act_rng::SeedableRng;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The mcf-style pointer-chasing kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcf;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R8: Reg = Reg(8);

impl Workload for Mcf {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 24, threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(8);
        let mut rng = StdRng::seed_from_u64(p.seed.wrapping_mul(0x3cf) ^ 17);
        // A random permutation defines the traversal order.
        let mut order: Vec<usize> = (1..n).collect();
        order.shuffle(&mut rng);
        let chain: Vec<usize> = std::iter::once(0).chain(order.iter().copied()).collect();

        let mut a = Asm::new();
        // Node layout: [value, next_ptr] per node.
        let nodes = a.static_zeroed(2 * n);
        let node_addr = |i: usize| nodes + (2 * i as u64) * 8;
        // The chain order ships as preloaded data (the "input file").
        let order_data: Vec<i64> = chain.iter().map(|&i| node_addr(i) as i64).collect();
        let order_seg = a.static_data(&order_data);

        let value = |i: usize| ((i as i64) * 37 + (p.seed as i64 % 11)) % 90;

        a.func("main");
        // Build phase: walk the order list, storing each node's value and
        // linking it to the next (stores create the dependences the
        // traversal will consume).
        a.imm(Reg(20), order_seg as i64);
        a.imm(R6, n as i64);
        a.imm(R2, 0); // index
        let build_top = a.label_here();
        a.alui(AluOp::Mul, R3, R2, 8);
        a.alu(AluOp::Add, R3, Reg(20), R3);
        a.load(R4, R3, 0); // node address (preloaded: no dep)
                           // value = (chain_pos * 37 + seed) % 90, computed from the index.
        a.alui(AluOp::Mul, R5, R2, 37);
        a.alui(AluOp::Add, R5, R5, (p.seed % 11) as i64);
        a.alui(AluOp::Rem, R5, R5, 90);
        a.mark("S_value");
        a.store(R5, R4, 0);
        // next pointer: order[i + 1], or 0 at the end.
        let last = a.new_label();
        let linked = a.new_label();
        a.alui(AluOp::Lt, R5, R2, n as i64 - 1);
        a.bez(R5, last);
        a.load(R5, R3, 8);
        a.jump(linked);
        a.bind(last);
        a.imm(R5, 0);
        a.bind(linked);
        a.mark("S_next");
        a.store(R5, R4, 8);
        a.addi(R2, R2, 1);
        a.alui(AluOp::Lt, R3, R2, n as i64);
        a.bnz(R3, build_top);

        // Traversal phase: chase pointers, summing values. Each next-load
        // depends on the build's S_next store; each value-load on S_value.
        a.imm(R4, node_addr(chain[0]) as i64);
        a.imm(R8, 0);
        let walk_top = a.label_here();
        let done = a.new_label();
        a.bez(R4, done);
        a.mark("L_value");
        a.load(R5, R4, 0);
        a.alu(AluOp::Add, R8, R8, R5);
        a.mark("L_next");
        a.load(R4, R4, 8);
        a.jump(walk_top);
        a.bind(done);
        a.out(R8);
        a.halt();

        // Oracle: values are a function of chain position, so the sum does
        // not depend on the permutation.
        let expected: i64 = (0..n).map(value).sum();

        BuiltWorkload {
            program: a.finish().expect("mcf assembles"),
            expected_output: vec![expected],
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle_across_seeds() {
        let w = Mcf;
        for seed in 0..4 {
            let built = w.build(&Params { seed, ..w.default_params() });
            let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn traversal_forms_pointer_dependences() {
        let w = Mcf;
        let built = w.build(&w.default_params());
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let mut m = Machine::new(&built.program, cfg);
        assert!(m.run().completed());
        // Each traversal step loads a value and a next pointer written in
        // the build phase.
        assert!(m.stats().mem.deps_formed as usize >= 2 * 20);
    }
}
