//! `hmmer` — a dynamic-programming kernel in the spirit of SPEC INT's
//! hmmer (profile HMM scoring): fills a scoring table row by row, each cell
//! reading its three predecessors (left, up, diagonal), clamped through a
//! max — dense, regular intra-thread RAW chains.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The hmmer-style dynamic-programming kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hmmer;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);

const R8: Reg = Reg(8);
const R9: Reg = Reg(9);

fn score(i: i64, j: i64, seed: u64) -> i64 {
    (i * 7 + j * 3 + (seed as i64 % 13)) % 17 - 8
}

fn oracle(rows: i64, cols: i64, seed: u64) -> Vec<i64> {
    let idx = |i: i64, j: i64| (i * cols + j) as usize;
    let mut t = vec![0i64; (rows * cols) as usize];
    for i in 1..rows {
        for j in 1..cols {
            let best = t[idx(i - 1, j)].max(t[idx(i, j - 1)]).max(t[idx(i - 1, j - 1)]);
            t[idx(i, j)] = (best + score(i, j, seed)).max(0);
        }
    }
    vec![t[idx(rows - 1, cols - 1)], t.iter().sum::<i64>()]
}

impl Workload for Hmmer {
    fn name(&self) -> &'static str {
        "hmmer"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 10, threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let rows = p.size.max(6) as i64;
        let cols = rows;
        let seed_term = (p.seed % 13) as i64;
        let mut a = Asm::new();
        let table = a.static_zeroed((rows * cols) as usize);

        a.func("main");
        a.imm(Reg(20), table as i64);
        // Zero row 0 and column 0 with explicit stores so the first real
        // cells form dependences.
        a.imm(R6, cols);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.imm(R4, 0);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.store(R4, R5, 0);
        });
        a.imm(R6, rows);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.imm(R4, 0);
            a.alui(AluOp::Mul, R5, R2, cols * 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.store(R4, R5, 0);
        });
        // Fill: for i in 1..rows, j in 1..cols.
        a.imm(R8, 1); // i
        let row_top = a.label_here();
        a.imm(R9, 1); // j
        let col_top = a.label_here();
        // cell address = table + (i*cols + j)*8
        a.alui(AluOp::Mul, R2, R8, cols);
        a.alu(AluOp::Add, R2, R2, R9);
        a.alui(AluOp::Mul, R2, R2, 8);
        a.alu(AluOp::Add, R2, Reg(20), R2);
        a.mark("L_up");
        a.load(R3, R2, -(cols * 8)); // up
        a.mark("L_left");
        a.load(R4, R2, -8); // left
        a.mark("L_diag");
        a.load(R5, R2, -(cols * 8) - 8); // diagonal
        a.alu(AluOp::Max, R3, R3, R4);
        a.alu(AluOp::Max, R3, R3, R5);
        // score(i, j) = (i*7 + j*3 + seed) % 17 - 8
        a.alui(AluOp::Mul, R4, R8, 7);
        a.alui(AluOp::Mul, R5, R9, 3);
        a.alu(AluOp::Add, R4, R4, R5);
        a.alui(AluOp::Add, R4, R4, seed_term);
        a.alui(AluOp::Rem, R4, R4, 17);
        a.alui(AluOp::Sub, R4, R4, 8);
        a.alu(AluOp::Add, R3, R3, R4);
        a.alui(AluOp::Max, R3, R3, 0);
        a.mark("S_cell");
        a.store(R3, R2, 0);
        a.addi(R9, R9, 1);
        a.alui(AluOp::Lt, R4, R9, cols);
        a.bnz(R4, col_top);
        a.addi(R8, R8, 1);
        a.alui(AluOp::Lt, R4, R8, rows);
        a.bnz(R4, row_top);
        // Emit the final cell and the table checksum.
        a.imm(R2, rows * cols - 1); // final cell index
        a.alui(AluOp::Mul, R2, R2, 8);
        a.alu(AluOp::Add, R2, Reg(20), R2);
        a.load(R3, R2, 0);
        a.out(R3);
        a.imm(R6, rows * cols);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("hmmer assembles"),
            expected_output: oracle(rows, cols, p.seed),
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle_across_seeds() {
        let w = Hmmer;
        for seed in 0..4 {
            let built = w.build(&Params { seed, ..w.default_params() });
            let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }
}
