//! `bzip2` — a compress/verify kernel in the spirit of SPEC INT's bzip2:
//! run-length-encodes an input buffer into an output buffer, then decodes
//! it back and emits both the compressed length and a round-trip checksum.
//! The decode's loads depend on the encode's stores — a classic
//! producer/consumer RAW chain through memory.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The bzip2-style run-length compress/verify kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bzip2;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);

fn gen_input(n: usize, seed: u64) -> Vec<i64> {
    // Runs of repeated symbols, as compressible input.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xb21b) ^ 5);
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        let sym = rng.gen_range(1i64..6);
        let run = rng.gen_range(1usize..6).min(n - v.len());
        v.extend(std::iter::repeat(sym).take(run));
    }
    v
}

fn rle(input: &[i64]) -> Vec<i64> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < input.len() {
        let sym = input[i];
        let mut run = 1i64;
        while i + (run as usize) < input.len() && input[i + run as usize] == sym {
            run += 1;
        }
        out.push(sym);
        out.push(run);
        i += run as usize;
    }
    out
}

impl Workload for Bzip2 {
    fn name(&self) -> &'static str {
        "bzip2"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 40, threads: 1, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(12);
        let input = gen_input(n, p.seed);
        let encoded = rle(&input);
        let checksum: i64 = input.iter().enumerate().map(|(i, &v)| v * (i as i64 + 1)).sum();

        let mut a = Asm::new();
        let raw = a.static_data(&input);
        let comp = a.static_zeroed(2 * n + 2);
        let decomp = a.static_zeroed(n + 2);

        a.func("main");
        a.imm(Reg(20), raw as i64);
        a.imm(Reg(21), comp as i64);
        a.imm(Reg(22), decomp as i64);

        // ---- encode: RLE over the input (input loads are preloaded) ----
        a.func("compress");
        a.imm(R2, 0); // in pos
        a.imm(R3, 0); // out pos (pairs)
        let enc_top = a.label_here();
        let enc_done = a.new_label();
        a.alui(AluOp::Lt, R4, R2, n as i64);
        a.bez(R4, enc_done);
        a.alui(AluOp::Mul, R5, R2, 8);
        a.alu(AluOp::Add, R5, Reg(20), R5);
        a.load(R6, R5, 0); // current symbol
        a.imm(R7, 1); // run length
        let run_top = a.label_here();
        let run_done = a.new_label();
        a.alu(AluOp::Add, R8, R2, R7);
        a.alui(AluOp::Lt, R9, R8, n as i64);
        a.bez(R9, run_done);
        a.alui(AluOp::Mul, R8, R8, 8);
        a.alu(AluOp::Add, R8, Reg(20), R8);
        a.load(R9, R8, 0);
        a.alu(AluOp::Eq, R9, R9, R6);
        a.bez(R9, run_done);
        a.addi(R7, R7, 1);
        a.jump(run_top);
        a.bind(run_done);
        // emit (symbol, run)
        a.alui(AluOp::Mul, R8, R3, 8);
        a.alu(AluOp::Add, R8, Reg(21), R8);
        a.mark("S_sym");
        a.store(R6, R8, 0);
        a.mark("S_run");
        a.store(R7, R8, 8);
        a.addi(R3, R3, 2);
        a.alu(AluOp::Add, R2, R2, R7);
        a.jump(enc_top);
        a.bind(enc_done);
        a.out(R3); // compressed length in words

        // ---- decode: expand runs back (loads depend on the encode) ----
        a.func("decompress");
        a.imm(R2, 0); // comp pos
        a.imm(R4, 0); // out pos
        let dec_top = a.label_here();
        let dec_done = a.new_label();
        a.alu(AluOp::Lt, R5, R2, R3);
        a.bez(R5, dec_done);
        a.alui(AluOp::Mul, R5, R2, 8);
        a.alu(AluOp::Add, R5, Reg(21), R5);
        a.mark("L_sym");
        a.load(R6, R5, 0);
        a.mark("L_run");
        a.load(R7, R5, 8);
        let fill_top = a.label_here();
        let fill_done = a.new_label();
        a.bez(R7, fill_done);
        a.alui(AluOp::Mul, R8, R4, 8);
        a.alu(AluOp::Add, R8, Reg(22), R8);
        a.mark("S_out");
        a.store(R6, R8, 0);
        a.addi(R4, R4, 1);
        a.alui(AluOp::Sub, R7, R7, 1);
        a.jump(fill_top);
        a.bind(fill_done);
        a.addi(R2, R2, 2);
        a.jump(dec_top);
        a.bind(dec_done);

        // ---- verify: position-weighted checksum of the round trip ----
        a.func("verify");
        a.imm(R2, 0);
        a.imm(R8, 0);
        let v_top = a.label_here();
        let v_done = a.new_label();
        a.alu(AluOp::Lt, R5, R2, R4);
        a.bez(R5, v_done);
        a.alui(AluOp::Mul, R5, R2, 8);
        a.alu(AluOp::Add, R5, Reg(22), R5);
        a.mark("L_verify");
        a.load(R6, R5, 0);
        a.alui(AluOp::Add, R7, R2, 1);
        a.alu(AluOp::Mul, R6, R6, R7);
        a.alu(AluOp::Add, R8, R8, R6);
        a.addi(R2, R2, 1);
        a.jump(v_top);
        a.bind(v_done);
        a.out(R8);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("bzip2 assembles"),
            expected_output: vec![encoded.len() as i64, checksum],
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn round_trip_matches_oracle() {
        let w = Bzip2;
        for seed in 0..4 {
            let built = w.build(&Params { seed, ..w.default_params() });
            let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn compression_actually_compresses() {
        let w = Bzip2;
        let built = w.build(&w.default_params());
        // Runs of 1..6 over 40 symbols should encode well under 2n words.
        assert!(built.expected_output[0] < 80);
        assert!(built.expected_output[0] >= 2);
    }
}
