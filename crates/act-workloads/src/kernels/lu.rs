//! `lu` — a blocked row-reduction kernel in the spirit of SPLASH2's LU:
//! phase `k` updates every row below `k` using row `k`, with worker threads
//! owning interleaved rows. Row `k` is read-only during phase `k`, so the
//! result is deterministic while still exercising inter-thread RAW
//! dependences (workers read rows finalized by other workers in earlier
//! phases).

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The LU-style row-reduction kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lu;

const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const RN: Reg = Reg(20);
const RB: Reg = Reg(21);

fn init_value(i: i64, seed: u64) -> i64 {
    (i * 31 + (seed as i64 % 13)) % 97 + 3
}

/// Rust oracle mirroring the assembly exactly (wrapping i64 arithmetic).
fn oracle(n: usize, threads: usize, seed: u64) -> Vec<i64> {
    let mut m = vec![0i64; n * n];
    for (i, v) in m.iter_mut().enumerate() {
        *v = init_value(i as i64, seed);
    }
    let _ = threads; // row ownership does not affect the result
    for k in 0..n - 1 {
        for i in k + 1..n {
            for j in 0..n {
                let delta = (m[i * n + k].wrapping_mul(m[k * n + j])) >> 8;
                m[i * n + j] = m[i * n + j].wrapping_sub(delta);
            }
        }
    }
    let sum = m.iter().fold(0i64, |a, &b| a.wrapping_add(b));
    vec![sum]
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 8, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(4);
        let t = p.threads.clamp(1, 7);
        let mut a = Asm::new();
        let mat = a.static_zeroed(n * n);

        a.func("main");
        // Init: m[i] = (i*31 + seed%13) % 97 + 3, via stores so deps form.
        a.imm(RN, (n * n) as i64);
        a.imm(RB, mat as i64);
        let seed_term = (p.seed % 13) as i64;
        count_loop(&mut a, R2, RN, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 31);
            a.alui(AluOp::Add, R4, R4, seed_term);
            a.alui(AluOp::Rem, R4, R4, 97);
            a.alui(AluOp::Add, R4, R4, 3);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.store(R4, R5, 0);
        });

        // Phase loop: k in 0..n-1, spawning t workers per phase.
        let worker = a.new_label();
        a.imm(R9, 0); // k
        let phase_top = a.label_here();
        for w in 0..t {
            a.alui(AluOp::Mul, R2, R9, 256);
            a.alui(AluOp::Add, R2, R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        a.addi(R9, R9, 1);
        a.alui(AluOp::Lt, R2, R9, (n - 1) as i64);
        a.bnz(R2, phase_top);

        // Sum and emit.
        a.imm(RN, (n * n) as i64);
        a.imm(R8, 0);
        count_loop(&mut a, R2, RN, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Worker: arg = k*256 + w; rows i = w, w+t, ... with i > k.
        a.func("lu_worker");
        a.bind(worker);
        a.alui(AluOp::Shr, R2, R1, 8); // k
        a.alui(AluOp::And, R3, R1, 255); // w
        a.imm(RN, n as i64);
        a.imm(RB, mat as i64);
        a.alui(AluOp::Add, R4, R3, 0); // i = w
        let done = a.new_label();
        let next_i = a.new_label();
        let row_top = a.label_here();
        a.alu(AluOp::Lt, R5, R4, RN);
        a.bez(R5, done);
        a.alu(AluOp::Le, R5, R4, R2); // i <= k -> skip
        a.bnz(R5, next_i);
        // j loop over the row.
        a.imm(R6, 0);
        let j_top = a.label_here();
        // r7 = m[i*n + k]
        a.alu(AluOp::Mul, R7, R4, RN);
        a.alu(AluOp::Add, R7, R7, R2);
        a.alui(AluOp::Mul, R7, R7, 8);
        a.alu(AluOp::Add, R7, RB, R7);
        a.load(R7, R7, 0);
        // r8 = m[k*n + j]
        a.alu(AluOp::Mul, R8, R2, RN);
        a.alu(AluOp::Add, R8, R8, R6);
        a.alui(AluOp::Mul, R8, R8, 8);
        a.alu(AluOp::Add, R8, RB, R8);
        a.load(R8, R8, 0);
        // delta = (r7*r8) >> 8
        a.alu(AluOp::Mul, R7, R7, R8);
        a.alui(AluOp::Shr, R7, R7, 8);
        // m[i*n + j] -= delta
        a.alu(AluOp::Mul, R8, R4, RN);
        a.alu(AluOp::Add, R8, R8, R6);
        a.alui(AluOp::Mul, R8, R8, 8);
        a.alu(AluOp::Add, R8, RB, R8);
        a.load(R9, R8, 0);
        a.alu(AluOp::Sub, R9, R9, R7);
        a.store(R9, R8, 0);
        a.addi(R6, R6, 1);
        a.alu(AluOp::Lt, R5, R6, RN);
        a.bnz(R5, j_top);
        a.bind(next_i);
        a.alui(AluOp::Add, R4, R4, t as i64);
        a.jump(row_top);
        a.bind(done);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("lu assembles"),
            expected_output: oracle(n, t, p.seed),
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle_across_thread_counts() {
        for threads in [1, 2, 4] {
            let w = Lu;
            let p = Params { threads, ..w.default_params() };
            let built = w.build(&p);
            let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "threads={threads}: {out}");
        }
    }

    #[test]
    fn produces_inter_thread_dependences() {
        let w = Lu;
        let built = w.build(&w.default_params());
        struct Count(u64);
        impl act_sim::attach::Observer for Count {
            fn on_load(&mut self, ev: &act_sim::events::LoadEvent) {
                if ev.dep.is_some_and(|d| d.inter_thread) {
                    self.0 += 1;
                }
            }
        }
        let mut obs = Count(0);
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let mut m = Machine::new(&built.program, cfg);
        let _ = m.run_observed(&mut obs);
        assert!(obs.0 > 10, "only {} inter-thread deps", obs.0);
    }
}
