//! `fluidanimate` — a two-phase stencil kernel in the spirit of PARSEC's
//! fluidanimate: phase one computes each cell's "density" from its
//! neighborhood (reads cross thread-partition boundaries), phase two folds
//! the densities back into the cells. Phases are separated by joins, so the
//! result is deterministic.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The fluidanimate-style stencil kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fluidanimate;

const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const RB: Reg = Reg(21);
const RD: Reg = Reg(22);

fn oracle(n: usize, steps: usize, seed: u64) -> Vec<i64> {
    let mut c: Vec<i64> = (0..n as i64).map(|i| (i * 5 + (seed as i64 % 7)) % 40).collect();
    for _ in 0..steps {
        let mut d = vec![0i64; n];
        for i in 0..n {
            let left = if i == 0 { 0 } else { c[i - 1] };
            let right = if i + 1 == n { 0 } else { c[i + 1] };
            d[i] = left.wrapping_add(c[i]).wrapping_add(right);
        }
        for i in 0..n {
            c[i] = d[i] >> 1;
        }
    }
    vec![c.iter().fold(0i64, |a, &b| a.wrapping_add(b))]
}

impl Workload for Fluidanimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 32, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(8);
        let t = p.threads.clamp(1, 7);
        let steps = 3usize;
        let mut a = Asm::new();
        let cells = a.static_zeroed(n);
        let dens = a.static_zeroed(n);

        a.func("main");
        a.imm(RB, cells as i64);
        a.imm(R6, n as i64);
        let seed_term = (p.seed % 7) as i64;
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 5);
            a.alui(AluOp::Add, R4, R4, seed_term);
            a.alui(AluOp::Rem, R4, R4, 40);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.store(R4, R5, 0);
        });
        // Step loop: phase A (density) workers, then phase B (fold) workers.
        let worker_a = a.new_label();
        let worker_b = a.new_label();
        a.imm(R9, 0);
        let step_top = a.label_here();
        for w in 0..t {
            a.imm(R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker_a, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        for w in 0..t {
            a.imm(R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker_b, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        a.addi(R9, R9, 1);
        a.alui(AluOp::Lt, R2, R9, steps as i64);
        a.bnz(R2, step_top);
        // Checksum.
        a.imm(R6, n as i64);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Phase A worker: d[i] = c[i-1] + c[i] + c[i+1] for owned cells.
        a.func("compute_densities");
        a.bind(worker_a);
        a.imm(RB, cells as i64);
        a.imm(RD, dens as i64);
        a.alui(AluOp::Add, R4, R1, 0); // i = w
        let done_a = a.new_label();
        let top_a = a.label_here();
        a.alui(AluOp::Lt, R5, R4, n as i64);
        a.bez(R5, done_a);
        a.alui(AluOp::Mul, R6, R4, 8);
        a.alu(AluOp::Add, R6, RB, R6);
        a.load(R7, R6, 0); // c[i]
                           // left neighbor (0 at boundary)
        let no_left = a.new_label();
        let have_left = a.new_label();
        a.bez(R4, no_left);
        a.load(R8, R6, -8);
        a.jump(have_left);
        a.bind(no_left);
        a.imm(R8, 0);
        a.bind(have_left);
        a.alu(AluOp::Add, R7, R7, R8);
        // right neighbor (0 at boundary)
        let no_right = a.new_label();
        let have_right = a.new_label();
        a.alui(AluOp::Lt, R5, R4, (n - 1) as i64);
        a.bez(R5, no_right);
        a.load(R8, R6, 8);
        a.jump(have_right);
        a.bind(no_right);
        a.imm(R8, 0);
        a.bind(have_right);
        a.alu(AluOp::Add, R7, R7, R8);
        a.alui(AluOp::Mul, R9, R4, 8);
        a.alu(AluOp::Add, R9, RD, R9);
        a.store(R7, R9, 0);
        a.alui(AluOp::Add, R4, R4, t as i64);
        a.jump(top_a);
        a.bind(done_a);
        a.halt();

        // Phase B worker: c[i] = d[i] >> 1.
        a.func("fold_densities");
        a.bind(worker_b);
        a.imm(RB, cells as i64);
        a.imm(RD, dens as i64);
        a.alui(AluOp::Add, R4, R1, 0);
        let done_b = a.new_label();
        let top_b = a.label_here();
        a.alui(AluOp::Lt, R5, R4, n as i64);
        a.bez(R5, done_b);
        a.alui(AluOp::Mul, R6, R4, 8);
        a.alu(AluOp::Add, R7, RD, R6);
        a.load(R8, R7, 0);
        a.alui(AluOp::Shr, R8, R8, 1);
        a.alu(AluOp::Add, R7, RB, R6);
        a.store(R8, R7, 0);
        a.alui(AluOp::Add, R4, R4, t as i64);
        a.jump(top_b);
        a.bind(done_b);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("fluidanimate assembles"),
            expected_output: oracle(n, steps, p.seed),
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle_with_jitter() {
        let w = Fluidanimate;
        let built = w.build(&w.default_params());
        for seed in 0..2 {
            let cfg = MachineConfig { jitter_ppm: 50_000, seed, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "seed {seed}: {out}");
        }
    }
}
