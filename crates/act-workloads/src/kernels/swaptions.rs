//! `swaptions` — an embarrassingly parallel Monte-Carlo-style kernel in the
//! spirit of PARSEC's swaptions: each worker runs an independent pricing
//! loop over its own scratch memory and publishes one result; the main
//! thread reduces. Sharing is minimal (results only), making this the
//! low-communication end of the kernel spectrum.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The swaptions-style independent-worker kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Swaptions;

const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R8: Reg = Reg(8);
const RB: Reg = Reg(21);

fn worker_result(w: i64, iters: i64, seed: u64) -> i64 {
    let mut acc: i64 = w * 100 + (seed as i64 % 23);
    for it in 0..iters {
        acc = acc.wrapping_mul(31).wrapping_add(it) % 100_003;
    }
    acc
}

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 40, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let iters = p.size.max(8) as i64;
        let t = p.threads.clamp(1, 7);
        let mut a = Asm::new();
        let results = a.static_zeroed(t);
        // Per-worker scratch: each worker streams through its own slice so
        // private (intra-thread) dependences dominate.
        let scratch = a.static_zeroed(t * 8);
        let seed_term = (p.seed % 23) as i64;

        a.func("main");
        let worker = a.new_label();
        for w in 0..t {
            a.imm(R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        a.imm(RB, results as i64);
        a.imm(R6, t as i64);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, RB, R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Worker: acc = w*100 + seed%23; iters times:
        //   acc = (acc*31 + it) % 100003, round-tripped through scratch.
        a.func("worker");
        a.bind(worker);
        a.alui(AluOp::Mul, R4, R1, 100);
        a.alui(AluOp::Add, R4, R4, seed_term); // acc
        a.alui(AluOp::Mul, R5, R1, 64);
        a.alui(AluOp::Add, R5, R5, scratch as i64); // scratch base
        a.imm(R6, iters);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R4, 31);
            a.alu(AluOp::Add, R4, R4, R2);
            a.alui(AluOp::Rem, R4, R4, 100_003);
            // Round-trip through private scratch (forms intra-thread deps).
            a.store(R4, R5, 0);
            a.load(R4, R5, 0);
        });
        a.alui(AluOp::Mul, R5, R1, 8);
        a.alui(AluOp::Add, R5, R5, results as i64);
        a.store(R4, R5, 0);
        a.halt();

        let expected: i64 = (0..t as i64).map(|w| worker_result(w, iters, p.seed)).sum();
        BuiltWorkload {
            program: a.finish().expect("swaptions assembles"),
            expected_output: vec![expected],
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle() {
        let w = Swaptions;
        let built = w.build(&w.default_params());
        let cfg = MachineConfig { jitter_ppm: 30_000, seed: 1, ..Default::default() };
        let out = Machine::new(&built.program, cfg).run();
        assert!(built.is_correct(&out), "{out}");
    }
}
