//! Clean benchmark kernels modeled on the paper's SPLASH2 / PARSEC /
//! SPEC / coreutils applications. Each kernel is a deterministic
//! multithreaded (or sequential) program with a Rust-side oracle, used by
//! the training (Table IV), prediction (Fig 7), overhead (Fig 8), and
//! granularity (Fig 9) experiments.

pub mod barnes;
pub mod bc;
pub mod bzip2;
pub mod canneal;
pub mod fft;
pub mod fluidanimate;
pub mod hmmer;
pub mod lu;
pub mod mcf;
pub mod ocean;
pub mod streamcluster;
pub mod swaptions;

pub use barnes::Barnes;
pub use bc::Bc;
pub use bzip2::Bzip2;
pub use canneal::Canneal;
pub use fft::Fft;
pub use fluidanimate::Fluidanimate;
pub use hmmer::Hmmer;
pub use lu::Lu;
pub use mcf::Mcf;
pub use ocean::Ocean;
pub use streamcluster::Streamcluster;
pub use swaptions::Swaptions;

/// All clean kernels, boxed for the registry.
pub fn all() -> Vec<Box<dyn crate::spec::Workload>> {
    vec![
        Box::new(Lu),
        Box::new(Fft),
        Box::new(Canneal),
        Box::new(Fluidanimate),
        Box::new(Swaptions),
        Box::new(Barnes),
        Box::new(Streamcluster),
        Box::new(Bc),
        Box::new(Mcf),
        Box::new(Hmmer),
        Box::new(Bzip2),
        Box::new(Ocean),
    ]
}

#[cfg(test)]
mod tests {
    use crate::spec::{Params, WorkloadKind};
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    /// Every kernel must run correctly under its oracle, both without and
    /// with interleaving jitter, at a couple of seeds.
    #[test]
    fn all_kernels_run_correctly() {
        for w in super::all() {
            assert_eq!(w.kind(), WorkloadKind::CleanKernel);
            for seed in [0u64, 3] {
                let params = Params { seed, ..w.default_params() };
                let built = w.build(&params);
                built.program.validate().expect("valid program");
                assert!(built.bug.is_none());
                for (jitter, mseed) in [(0u32, 0u64), (20_000, 11)] {
                    let cfg =
                        MachineConfig { jitter_ppm: jitter, seed: mseed, ..Default::default() };
                    let outcome = Machine::new(&built.program, cfg).run();
                    assert!(
                        built.is_correct(&outcome),
                        "{} seed {seed} jitter {jitter}: {outcome} (expected {:?}, got {:?})",
                        w.name(),
                        built.expected_output,
                        outcome.output(),
                    );
                }
            }
        }
    }

    /// Kernels must produce RAW dependences (otherwise they are useless for
    /// training communication invariants).
    #[test]
    fn all_kernels_form_dependences() {
        for w in super::all() {
            let built = w.build(&w.default_params());
            let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
            let mut m = Machine::new(&built.program, cfg);
            let _ = m.run();
            assert!(
                m.stats().mem.deps_formed > 12,
                "{} formed only {} deps",
                w.name(),
                m.stats().mem.deps_formed
            );
        }
    }

    /// Concurrent kernels must actually communicate across threads.
    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = super::all().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
