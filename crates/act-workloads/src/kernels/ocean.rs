//! `ocean` — a red/black relaxation kernel in the spirit of SPLASH2's
//! Ocean: persistent worker threads sweep a grid for several iterations,
//! separated by **barriers** (not per-phase spawn/join like `lu`/`fft`).
//! Red cells (even index) update from their odd neighbours and vice versa,
//! so each phase's read and write sets are disjoint and the result is
//! interleaving-independent.

use crate::spec::{BuiltWorkload, Params, Workload, WorkloadKind};
use crate::util::count_loop;
use act_sim::asm::Asm;
use act_sim::isa::{AluOp, Reg};

/// The ocean-style barrier-synchronized relaxation kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ocean;

const R2: Reg = Reg(2);
const R3: Reg = Reg(3);
const R4: Reg = Reg(4);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);

const ITERS: i64 = 4;

fn oracle(n: i64, t: usize, seed: u64) -> Vec<i64> {
    let _ = t;
    let mut g: Vec<i64> = (0..n).map(|i| (i * 11 + (seed as i64 % 9)) % 60).collect();
    for _ in 0..ITERS {
        for parity in [0i64, 1] {
            let prev = g.clone();
            for i in 0..n {
                if i % 2 == parity {
                    let left = if i == 0 { 0 } else { prev[(i - 1) as usize] };
                    let right = if i + 1 == n { 0 } else { prev[(i + 1) as usize] };
                    g[i as usize] = (prev[i as usize] + ((left + right) >> 1)) % 1000;
                }
            }
        }
    }
    vec![g.iter().fold(0i64, |a, &b| a.wrapping_add(b))]
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::CleanKernel
    }

    fn default_params(&self) -> Params {
        Params { size: 24, threads: 4, ..Params::default() }
    }

    fn build(&self, p: &Params) -> BuiltWorkload {
        let n = p.size.max(8) as i64;
        let t = p.threads.clamp(1, 7);
        let seed_term = (p.seed % 9) as i64;
        let mut a = Asm::new();
        let grid = a.static_zeroed(n as usize);
        // The barrier word holds the participant count (the T workers).
        let bar = a.static_data(&[t as i64]);

        a.func("main");
        a.imm(Reg(20), grid as i64);
        a.imm(R6, n);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R4, R2, 11);
            a.alui(AluOp::Add, R4, R4, seed_term);
            a.alui(AluOp::Rem, R4, R4, 60);
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.store(R4, R5, 0);
        });
        let worker = a.new_label();
        for w in 0..t {
            a.imm(R2, w as i64);
            a.spawn(Reg(10 + w as u8), worker, R2);
        }
        for w in 0..t {
            a.join(Reg(10 + w as u8));
        }
        a.imm(R6, n);
        a.imm(R8, 0);
        count_loop(&mut a, R2, R6, R3, |a| {
            a.alui(AluOp::Mul, R5, R2, 8);
            a.alu(AluOp::Add, R5, Reg(20), R5);
            a.load(R4, R5, 0);
            a.alu(AluOp::Add, R8, R8, R4);
        });
        a.out(R8);
        a.halt();

        // Persistent worker: ITERS iterations × (red phase, barrier, black
        // phase, barrier). Cells are partitioned i = w, w+t, ...
        a.func("relax_worker");
        a.bind(worker);
        a.imm(Reg(20), grid as i64);
        a.imm(Reg(21), bar as i64);
        a.imm(Reg(22), 0); // iteration
        let iter_top = a.label_here();
        for parity in 0..2i64 {
            // Sweep owned cells of this parity.
            a.alui(AluOp::Add, R4, Reg(1), 0); // i = w
            let done = a.new_label();
            let next = a.new_label();
            let top = a.label_here();
            a.alui(AluOp::Lt, R5, R4, n);
            a.bez(R5, done);
            a.alui(AluOp::Rem, R5, R4, 2);
            a.alui(AluOp::Ne, R5, R5, parity);
            a.bnz(R5, next);
            // address of cell i
            a.alui(AluOp::Mul, R6, R4, 8);
            a.alu(AluOp::Add, R6, Reg(20), R6);
            // left neighbour (0 at boundary)
            let no_left = a.new_label();
            let have_left = a.new_label();
            a.bez(R4, no_left);
            a.load(R7, R6, -8);
            a.jump(have_left);
            a.bind(no_left);
            a.imm(R7, 0);
            a.bind(have_left);
            // right neighbour (0 at boundary)
            let no_right = a.new_label();
            let have_right = a.new_label();
            a.alui(AluOp::Lt, R5, R4, n - 1);
            a.bez(R5, no_right);
            a.load(R8, R6, 8);
            a.jump(have_right);
            a.bind(no_right);
            a.imm(R8, 0);
            a.bind(have_right);
            a.alu(AluOp::Add, R7, R7, R8);
            a.alui(AluOp::Shr, R7, R7, 1);
            a.load(R8, R6, 0);
            a.alu(AluOp::Add, R8, R8, R7);
            a.alui(AluOp::Rem, R8, R8, 1000);
            a.store(R8, R6, 0);
            a.bind(next);
            a.alui(AluOp::Add, R4, R4, t as i64);
            a.jump(top);
            a.bind(done);
            a.barrier(Reg(21), 0);
        }
        a.addi(Reg(22), Reg(22), 1);
        a.alui(AluOp::Lt, R5, Reg(22), ITERS);
        a.bnz(R5, iter_top);
        a.halt();

        BuiltWorkload {
            program: a.finish().expect("ocean assembles"),
            expected_output: oracle(n, t, p.seed),
            bug: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::config::MachineConfig;
    use act_sim::machine::Machine;

    #[test]
    fn matches_oracle_with_jitter() {
        let w = Ocean;
        for (threads, seed) in [(1, 0u64), (4, 1), (4, 2)] {
            let built = w.build(&Params { threads, seed, ..w.default_params() });
            let cfg = MachineConfig { jitter_ppm: 30_000, seed, ..Default::default() };
            let out = Machine::new(&built.program, cfg).run();
            assert!(built.is_correct(&out), "threads={threads} seed={seed}: {out}");
        }
    }

    #[test]
    fn barrier_phases_communicate_across_threads() {
        let w = Ocean;
        let built = w.build(&w.default_params());
        struct Count(u64);
        impl act_sim::attach::Observer for Count {
            fn on_load(&mut self, ev: &act_sim::events::LoadEvent) {
                if ev.dep.is_some_and(|d| d.inter_thread) {
                    self.0 += 1;
                }
            }
        }
        let mut obs = Count(0);
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let mut m = Machine::new(&built.program, cfg);
        assert!(m.run_observed(&mut obs).completed());
        assert!(obs.0 > 10, "only {} inter-thread deps across barriers", obs.0);
    }
}
