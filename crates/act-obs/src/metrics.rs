//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are `Arc`s around atomics; recording is relaxed atomic
//! arithmetic with zero allocation. The registry itself is only locked at
//! registration and snapshot time — never on the recording path.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (snapshots skip it).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "no-obs"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "no-obs")]
        let _ = n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A plain-integer counter for hot loops that cannot afford one atomic
/// per event: increment locally, then [`flush`](LocalCounter::flush) the
/// accumulated delta into a shared [`Counter`] at an amortized interval
/// (e.g. `act-core` flushes on its existing `check_interval` boundary).
#[derive(Debug, Default)]
pub struct LocalCounter {
    pending: u64,
}

impl LocalCounter {
    /// Add one locally (no atomics).
    #[inline]
    pub fn inc(&mut self) {
        self.pending += 1;
    }

    /// Add `n` locally (no atomics).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.pending += n;
    }

    /// Increments accumulated since the last flush.
    #[inline]
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Push the accumulated delta into `target` (one relaxed atomic add)
    /// and reset.
    #[inline]
    pub fn flush(&mut self, target: &Counter) {
        if self.pending > 0 {
            target.add(self.pending);
            self.pending = 0;
        }
    }
}

/// A last-value-wins signed gauge (queue depth, resident models, IGB
/// occupancy).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "no-obs"))]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(feature = "no-obs")]
        let _ = v;
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        #[cfg(not(feature = "no-obs"))]
        self.0.fetch_add(d, Ordering::Relaxed);
        #[cfg(feature = "no-obs")]
        let _ = d;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage of a fixed-bucket histogram: `bounds[i]` is the
/// inclusive upper edge of bucket `i`; one extra overflow bucket catches
/// everything above the last bound. Bounds are fixed at registration so
/// recording allocates nothing.
#[derive(Debug)]
pub struct HistogramCells {
    bounds: Box<[u64]>,
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// A histogram not attached to any registry (snapshots skip it).
    pub fn detached(bounds: &[u64]) -> Histogram {
        let bounds: Box<[u64]> = bounds.into();
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must strictly increase");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCells { bounds, counts, sum: AtomicU64::new(0) }))
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        #[cfg(not(feature = "no-obs"))]
        {
            let cells = &*self.0;
            let idx = cells.bounds.partition_point(|&b| b < v);
            cells.counts[idx].fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "no-obs")]
        let _ = v;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Copy the cells out into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.0;
        HistogramSnapshot {
            bounds: cells.bounds.to_vec(),
            counts: cells.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: cells.sum.load(Ordering::Relaxed),
        }
    }
}

/// The default latency bucket edges, in microseconds: a 1–2.5–5 decade
/// ladder from 50 µs to 10 s. Shared by serve request latency and fleet
/// job timing so snapshots compare across subsystems.
pub fn latency_bounds_us() -> Vec<u64> {
    let mut bounds = vec![50, 100, 250, 500];
    let mut decade = 1_000u64;
    while decade <= 10_000_000 {
        bounds.extend([decade, decade * 25 / 10, decade * 5]);
        decade *= 10;
    }
    bounds.push(10_000_000 * 10); // 100 s: anything slower is the overflow bucket
    bounds
}

enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Locked only for registration and
/// snapshots; handles record lock-free.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Entry)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`. Idempotent: every caller
    /// receives a handle to the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.entries.lock().unwrap();
        if let Some(c) = entries.iter().find_map(|(n, e)| match e {
            Entry::Counter(c) if n == name => Some(c.clone()),
            _ => None,
        }) {
            return c;
        }
        let c = Counter::default();
        entries.push((name.to_string(), Entry::Counter(c.clone())));
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = self.entries.lock().unwrap();
        if let Some(g) = entries.iter().find_map(|(n, e)| match e {
            Entry::Gauge(g) if n == name => Some(g.clone()),
            _ => None,
        }) {
            return g;
        }
        let g = Gauge::default();
        entries.push((name.to_string(), Entry::Gauge(g.clone())));
        g
    }

    /// Get or create the histogram named `name` with the given bucket
    /// upper bounds (strictly increasing; an overflow bucket is added).
    /// If the name is already registered, the existing histogram wins and
    /// `bounds` is ignored.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut entries = self.entries.lock().unwrap();
        if let Some(h) = entries.iter().find_map(|(n, e)| match e {
            Entry::Histogram(h) if n == name => Some(h.clone()),
            _ => None,
        }) {
            return h;
        }
        let h = Histogram::detached(bounds);
        entries.push((name.to_string(), Entry::Histogram(h.clone())));
        h
    }

    /// Read every cell into a plain-data snapshot, sorted by metric name
    /// so output is deterministic regardless of registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, entry) in entries.iter() {
            match entry {
                Entry::Counter(c) => snap.push_counter(name, c.get()),
                Entry::Gauge(g) => snap.push_gauge(name, g.get()),
                Entry::Histogram(h) => snap.push_histogram(name, h.snapshot()),
            }
        }
        snap.entries.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// The process-wide registry. Library crates that have no natural place
/// to thread a `Registry` through (act-fleet campaigns) record here;
/// anything with its own lifecycle (an `act-serve` server) should own a
/// registry instead so side-by-side instances do not mix.
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::MetricValue;

    #[test]
    fn counter_and_gauge_record() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        let g = reg.gauge("depth");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        if crate::ENABLED {
            assert_eq!(c.get(), 5);
            assert_eq!(g.get(), 5);
        } else {
            assert_eq!(c.get(), 0);
            assert_eq!(g.get(), 0);
        }
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        a.inc();
        b.inc();
        assert_eq!(a.get(), b.get());
        let snap = reg.snapshot();
        assert_eq!(snap.entries.iter().filter(|(n, _)| n == "same").count(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        if !crate::ENABLED {
            return;
        }
        let h = Histogram::detached(&[10, 100, 1000]);
        for v in [1, 5, 50, 500, 5000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 1, 1, 1]);
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum, 5556);
        assert_eq!(snap.quantile(0.5), 100); // 3rd of 5 lands in the <=100 bucket
        assert!(snap.quantile(0.99) > 1000); // overflow bucket
    }

    #[test]
    fn local_counter_flushes_amortized() {
        let c = Counter::detached();
        let mut local = LocalCounter::default();
        for _ in 0..300 {
            local.inc();
        }
        assert_eq!(c.get(), 0, "nothing shared before flush");
        local.flush(&c);
        assert_eq!(local.pending(), 0);
        if crate::ENABLED {
            assert_eq!(c.get(), 300);
        }
    }

    #[test]
    fn latency_bounds_strictly_increase() {
        let bounds = latency_bounds_us();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        assert_eq!(*bounds.first().unwrap(), 50);
        assert_eq!(*bounds.last().unwrap(), 100_000_000);
    }

    #[test]
    fn concurrent_registration_and_increments_lose_nothing() {
        if !crate::ENABLED {
            return;
        }
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    // Every thread registers the same names itself: the
                    // registry must converge on one cell per name.
                    let c = reg.counter("shared_counter");
                    let h = reg.histogram("shared_hist", &[10, 100]);
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(i % 200);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("shared_counter"), Some(8000));
        match snap.get("shared_hist") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 8000),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_writes() {
        if !crate::ENABLED {
            return;
        }
        // Successive snapshots of a monotone counter must themselves be
        // monotone, and once the writer quiesces a snapshot must show the
        // exact retired total — nothing lost, nothing double-counted.
        let reg = Registry::new();
        let c = reg.counter("mono");
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                let mut retired = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    retired += 1;
                }
                retired
            });
            let mut last = 0u64;
            for _ in 0..200 {
                let v = reg.snapshot().counter("mono").unwrap();
                assert!(v >= last, "snapshot went backwards: {last} -> {v}");
                last = v;
            }
            stop.store(true, Ordering::Relaxed);
            let retired = writer.join().unwrap();
            assert_eq!(reg.snapshot().counter("mono"), Some(retired));
        });
    }
}
