//! Observability substrate for the ACT workspace: a lock-light metrics
//! registry and a bounded structured event ring.
//!
//! The design splits the cost of observability into three phases so the
//! hot path (classify: one retired RAW dependence per call, ~100 ns) never
//! pays for the cold one:
//!
//! - **Registration** (cold, allocates): [`Registry::counter`],
//!   [`Registry::gauge`], [`Registry::histogram`] intern a name under a
//!   mutex and hand back a cheap [`Counter`]/[`Gauge`]/[`Histogram`]
//!   handle (an `Arc` around atomics). Registration is idempotent — the
//!   same name always resolves to the same underlying cell, so concurrent
//!   registration from many threads is safe and loses no increments.
//! - **Recording** (hot, allocation-free): handle operations are relaxed
//!   atomic adds/stores. No locks, no allocation, no branching beyond the
//!   histogram bucket search. For per-event hot loops that cannot afford
//!   even an uncontended atomic per iteration, [`LocalCounter`] batches
//!   increments in a plain integer and flushes amortized.
//! - **Snapshot** (cold): [`Registry::snapshot`] reads every cell into a
//!   [`MetricsSnapshot`] — a plain-data value that serializes to a compact
//!   little-endian byte form ([`MetricsSnapshot::to_bytes`]) carried by the
//!   STATUS v2 protocol frame, and renders as a text table
//!   ([`MetricsSnapshot::render_table`]). Subsystems that keep plain-field
//!   stats structs (act-sim `Stats`, act-core `ModuleStats`) export by
//!   *building* a snapshot rather than by holding live handles, so one
//!   snapshot type serializes everything.
//!
//! Events ([`Events`]) are for rare, structured occurrences (server start,
//! worker crash, campaign progress): level + static target + timestamp +
//! small text payload, kept in a bounded ring and optionally forwarded to
//! pluggable sinks (stderr text, JSONL file).
//!
//! Building with the `no-obs` feature compiles the recording paths down to
//! no-ops: counters never move, `emit` drops the event, and snapshots come
//! back empty. The API surface is unchanged so callers need no cfg.

pub mod event;
pub mod metrics;
pub mod snapshot;

pub use event::{events, Event, EventSink, Events, JsonlSink, Level, StderrSink};
pub use metrics::{latency_bounds_us, Counter, Gauge, Histogram, LocalCounter, Registry};
pub use snapshot::{DecodeError, HistogramSnapshot, MetricValue, MetricsSnapshot};

/// Whether observability is compiled in (`false` when built with the
/// `no-obs` feature).
pub const ENABLED: bool = cfg!(not(feature = "no-obs"));
