//! Bounded structured event ring with pluggable sinks.
//!
//! Events are for *rare* occurrences — server start/stop, worker crash,
//! campaign progress — not per-request or per-dependence traffic (that is
//! what counters are for). Each event carries a level, a static target
//! (dotted subsystem path like `serve.worker`), a wall-clock timestamp,
//! and a small text payload. The newest `capacity` events are retained in
//! a ring for STATUS-style introspection; sinks see every event as it is
//! emitted.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, in increasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (BUSY rejections, cache churn).
    Debug,
    /// Lifecycle milestones (server started, campaign finished).
    Info,
    /// Something degraded but survivable (worker crash, deadline expiry).
    Warn,
    /// Something failed outright.
    Error,
}

impl Level {
    /// Lower-case name (`"warn"`), as rendered in sinks.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Static subsystem path, e.g. `"serve.worker"` or `"fleet.campaign"`.
    pub target: &'static str,
    /// Wall-clock microseconds since the Unix epoch.
    pub unix_us: u64,
    /// Small human-readable payload.
    pub message: String,
}

impl Event {
    /// Render as one JSON line (hand-rolled; the workspace has no serde).
    pub fn to_jsonl(&self) -> String {
        let mut msg = String::with_capacity(self.message.len());
        for c in self.message.chars() {
            match c {
                '"' => msg.push_str("\\\""),
                '\\' => msg.push_str("\\\\"),
                '\n' => msg.push_str("\\n"),
                '\t' => msg.push_str("\\t"),
                '\r' => msg.push_str("\\r"),
                c if (c as u32) < 0x20 => msg.push_str(&format!("\\u{:04x}", c as u32)),
                c => msg.push(c),
            }
        }
        format!(
            "{{\"ts_us\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"}}",
            self.unix_us, self.level, self.target, msg
        )
    }
}

/// Where emitted events go, beyond the in-memory ring.
pub trait EventSink: Send + Sync {
    /// Handle one event. Called with the bus lock *not* held.
    fn emit(&self, event: &Event);
}

/// Text sink to stderr: `[level target] message`.
pub struct StderrSink {
    /// Minimum level forwarded.
    pub min_level: Level,
}

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        if event.level >= self.min_level {
            eprintln!("[{} {}] {}", event.level, event.target, event.message);
        }
    }
}

/// JSONL sink: one JSON object per line, flushed per event so a crash or
/// SIGKILL loses at most the event in flight.
pub struct JsonlSink {
    file: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (or truncate) the log file at `path`.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        Ok(JsonlSink { file: Mutex::new(BufWriter::new(file)) })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut file = self.file.lock().unwrap();
        let _ = writeln!(file, "{}", event.to_jsonl());
        let _ = file.flush();
    }
}

/// A bounded event ring plus its sinks.
pub struct Events {
    ring: Mutex<VecDeque<Event>>,
    sinks: Mutex<Vec<Box<dyn EventSink>>>,
    capacity: usize,
}

impl Events {
    /// An event bus retaining the newest `capacity` events.
    pub fn new(capacity: usize) -> Events {
        Events {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            sinks: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Emit one event: stamp it, append to the ring (evicting the oldest
    /// past capacity), and forward to every sink.
    pub fn emit(&self, level: Level, target: &'static str, message: impl Into<String>) {
        #[cfg(feature = "no-obs")]
        {
            let _ = (level, target, message.into());
        }
        #[cfg(not(feature = "no-obs"))]
        {
            let event = Event { level, target, unix_us: unix_us(), message: message.into() };
            {
                let mut ring = self.ring.lock().unwrap();
                if ring.len() == self.capacity {
                    ring.pop_front();
                }
                ring.push_back(event.clone());
            }
            let sinks = self.sinks.lock().unwrap();
            for sink in sinks.iter() {
                sink.emit(&event);
            }
        }
    }

    /// Attach a sink; it sees every event emitted from now on.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        self.sinks.lock().unwrap().push(sink);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

fn unix_us() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// The process-wide event bus (ring of 256). Sinks are installed by the
/// binary (e.g. `act serve --event-log FILE` attaches a [`JsonlSink`]);
/// libraries just [`emit`](Events::emit).
pub fn events() -> &'static Events {
    static GLOBAL: OnceLock<Events> = OnceLock::new();
    GLOBAL.get_or_init(|| Events::new(256))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ring_is_bounded_and_ordered() {
        let bus = Events::new(3);
        for i in 0..5 {
            bus.emit(Level::Info, "test", format!("event {i}"));
        }
        let recent = bus.recent();
        if crate::ENABLED {
            assert_eq!(recent.len(), 3);
            let messages: Vec<&str> = recent.iter().map(|e| e.message.as_str()).collect();
            assert_eq!(messages, ["event 2", "event 3", "event 4"]);
        } else {
            assert!(recent.is_empty());
        }
    }

    #[test]
    fn sinks_see_every_event() {
        struct CountingSink(AtomicUsize);
        static HITS: AtomicUsize = AtomicUsize::new(0);
        impl EventSink for CountingSink {
            fn emit(&self, _: &Event) {
                HITS.fetch_add(1, Ordering::SeqCst);
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let bus = Events::new(8);
        bus.emit(Level::Debug, "test", "before sink"); // not seen
        bus.add_sink(Box::new(CountingSink(AtomicUsize::new(0))));
        bus.emit(Level::Warn, "test", "after sink");
        if crate::ENABLED {
            assert_eq!(HITS.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn jsonl_escapes_payload() {
        let event = Event {
            level: Level::Warn,
            target: "serve.worker",
            unix_us: 42,
            message: "crash: \"boom\"\nline2\u{1}".to_string(),
        };
        assert_eq!(
            event.to_jsonl(),
            "{\"ts_us\":42,\"level\":\"warn\",\"target\":\"serve.worker\",\
             \"msg\":\"crash: \\\"boom\\\"\\nline2\\u0001\"}"
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join(format!("act-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let bus = Events::new(8);
        bus.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
        bus.emit(Level::Info, "test", "hello");
        bus.emit(Level::Warn, "test", "world");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        if crate::ENABLED {
            assert_eq!(text.lines().count(), 2);
            assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "{text}");
            assert!(text.contains("\"msg\":\"hello\""), "{text}");
        } else {
            assert!(text.is_empty());
        }
    }
}
