//! Plain-data snapshots of metrics, with a compact little-endian wire
//! form (carried by the act-serve STATUS v2 frame) and a text-table
//! renderer (what `act request status` prints).
//!
//! A snapshot is just `Vec<(name, value)>` — subsystems with live
//! [`Registry`](crate::Registry) cells snapshot those, and subsystems with
//! plain-field stats structs (act-sim `Stats`, act-core `ModuleStats`)
//! build one directly with the `push_*` methods. Either way the same type
//! serializes, merges, and renders.

use std::fmt;

/// Plain-data copy of a fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket edges, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow last).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The upper edge of the bucket holding the `q`-quantile observation
    /// (so "p99 <= this value"). The overflow bucket reports twice the
    /// last bound as a sentinel upper edge. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&b) => b,
                    None => self.bounds.last().map_or(0, |&b| b * 2),
                };
            }
        }
        self.bounds.last().map_or(0, |&b| b * 2)
    }
}

/// One metric's value inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-value gauge.
    Gauge(i64),
    /// Fixed-bucket histogram.
    Histogram(HistogramSnapshot),
}

/// A named set of metric values — the one type every subsystem's counters
/// serialize through.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs; [`Registry::snapshot`](crate::Registry::snapshot)
    /// emits them sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

/// Wire-format tags (one byte per entry).
const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;

/// Decode limits: a snapshot is a small control-plane payload, so reject
/// anything claiming absurd cardinality before allocating for it.
const MAX_ENTRIES: usize = 4096;
const MAX_BUCKETS: usize = 1024;

/// Why a serialized snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad metrics snapshot: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError(format!("truncated at byte {}", self.pos)));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(DecodeError(format!("name of {len} bytes")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("non-utf8 name".into()))
    }
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Append a counter.
    pub fn push_counter(&mut self, name: &str, v: u64) {
        self.entries.push((name.to_string(), MetricValue::Counter(v)));
    }

    /// Append a gauge.
    pub fn push_gauge(&mut self, name: &str, v: i64) {
        self.entries.push((name.to_string(), MetricValue::Gauge(v)));
    }

    /// Append a histogram.
    pub fn push_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.entries.push((name.to_string(), MetricValue::Histogram(h)));
    }

    /// Append every entry of `other` under a `prefix.` namespace.
    pub fn merge_prefixed(&mut self, prefix: &str, other: MetricsSnapshot) {
        for (name, value) in other.entries {
            self.entries.push((format!("{prefix}.{name}"), value));
        }
    }

    /// Sum `other` into `self`, entry-by-entry by name — the fleet-wide
    /// rollup an aggregating gateway computes over per-backend snapshots.
    /// Counters and gauges add; histograms add bucket-wise when their
    /// bounds match. An entry absent from `self` is appended; a name whose
    /// kinds (or histogram bounds) disagree keeps `self`'s value, since a
    /// sum across mismatched shapes would be meaningless.
    pub fn merge_sum(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.entries {
            let Some(mine) = self.entries.iter_mut().find(|(n, _)| n == name) else {
                self.entries.push((name.clone(), value.clone()));
                continue;
            };
            match (&mut mine.1, value) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                (MetricValue::Histogram(a), MetricValue::Histogram(b))
                    if a.bounds == b.bounds && a.counts.len() == b.counts.len() =>
                {
                    for (c, d) in a.counts.iter_mut().zip(&b.counts) {
                        *c += d;
                    }
                    a.sum += b.sum;
                }
                _ => {}
            }
        }
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Look up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Look up a gauge's value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Serialize to the compact little-endian wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 24);
        out.extend((self.entries.len() as u32).to_le_bytes());
        for (name, value) in &self.entries {
            out.extend((name.len() as u32).to_le_bytes());
            out.extend(name.as_bytes());
            match value {
                MetricValue::Counter(v) => {
                    out.push(TAG_COUNTER);
                    out.extend(v.to_le_bytes());
                }
                MetricValue::Gauge(v) => {
                    out.push(TAG_GAUGE);
                    out.extend(v.to_le_bytes());
                }
                MetricValue::Histogram(h) => {
                    out.push(TAG_HISTOGRAM);
                    out.extend((h.bounds.len() as u32).to_le_bytes());
                    for b in &h.bounds {
                        out.extend(b.to_le_bytes());
                    }
                    for c in &h.counts {
                        out.extend(c.to_le_bytes());
                    }
                    out.extend(h.sum.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode the wire form. Trailing bytes after the last entry are
    /// rejected (the snapshot owns its whole buffer).
    pub fn from_bytes(buf: &[u8]) -> Result<MetricsSnapshot, DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        let n = r.u32()? as usize;
        if n > MAX_ENTRIES {
            return Err(DecodeError(format!("{n} entries (max {MAX_ENTRIES})")));
        }
        let mut snap = MetricsSnapshot::new();
        for _ in 0..n {
            let name = r.str()?;
            let value = match r.u8()? {
                TAG_COUNTER => MetricValue::Counter(r.u64()?),
                TAG_GAUGE => MetricValue::Gauge(r.u64()? as i64),
                TAG_HISTOGRAM => {
                    let nb = r.u32()? as usize;
                    if nb > MAX_BUCKETS {
                        return Err(DecodeError(format!("{nb} buckets (max {MAX_BUCKETS})")));
                    }
                    let mut bounds = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        bounds.push(r.u64()?);
                    }
                    let mut counts = Vec::with_capacity(nb + 1);
                    for _ in 0..nb + 1 {
                        counts.push(r.u64()?);
                    }
                    let sum = r.u64()?;
                    MetricValue::Histogram(HistogramSnapshot { bounds, counts, sum })
                }
                tag => return Err(DecodeError(format!("unknown tag {tag:#04x}"))),
            };
            snap.entries.push((name, value));
        }
        if r.pos != buf.len() {
            return Err(DecodeError(format!("{} trailing bytes", buf.len() - r.pos)));
        }
        Ok(snap)
    }

    /// Render as an aligned two-column text table. Histograms get a
    /// summary line (`count/mean/p50/p99`) followed by one row per
    /// non-empty bucket.
    pub fn render_table(&self) -> String {
        let width =
            self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max("metric".len());
        let mut out = String::new();
        out.push_str(&format!("{:width$}  value\n", "metric"));
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name:width$}  {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name:width$}  {v}\n")),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name:width$}  count={} mean={} p50<={} p99<={}\n",
                        h.count(),
                        render_us(h.mean() as u64),
                        render_us(h.quantile(0.5)),
                        render_us(h.quantile(0.99)),
                    ));
                    for (i, &c) in h.counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        let edge = match h.bounds.get(i) {
                            Some(&b) => format!("<= {:>9}", render_us(b)),
                            None => format!("{:>12}", "overflow"),
                        };
                        out.push_str(&format!("{:width$}    {edge}  {c}\n", ""));
                    }
                }
            }
        }
        out
    }
}

/// Human-scale a microsecond quantity (`850us`, `1.2ms`, `3.5s`).
fn render_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.1}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("requests_served", 12);
        snap.push_gauge("queue_depth", -3);
        snap.push_histogram(
            "service_us",
            HistogramSnapshot {
                bounds: vec![100, 1000, 10000],
                counts: vec![5, 3, 1, 1],
                sum: 12345,
            },
        );
        snap
    }

    #[test]
    fn wire_round_trip_is_identity() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(MetricsSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn decode_rejects_garbage() {
        let snap = sample();
        let bytes = snap.to_bytes();
        // Truncation anywhere must error, never panic.
        for cut in 0..bytes.len() {
            assert!(MetricsSnapshot::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(MetricsSnapshot::from_bytes(&padded).is_err());
        // Unknown tag.
        let mut bad = bytes;
        let tag_at = 4 + 4 + "requests_served".len();
        bad[tag_at] = 9;
        assert!(MetricsSnapshot::from_bytes(&bad).is_err());
        // Absurd entry count.
        assert!(MetricsSnapshot::from_bytes(&u32::MAX.to_le_bytes()).is_err());
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = HistogramSnapshot { bounds: vec![10, 20, 30], counts: vec![98, 1, 0, 1], sum: 0 };
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.99), 20);
        assert_eq!(h.quantile(1.0), 60); // overflow sentinel: 2 * last bound
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn table_lists_every_metric() {
        let text = sample().render_table();
        assert!(text.contains("requests_served"), "{text}");
        assert!(text.contains("queue_depth"), "{text}");
        assert!(text.contains("service_us"), "{text}");
        assert!(text.contains("count=10"), "{text}");
        assert!(text.contains("overflow"), "{text}");
    }

    #[test]
    fn merge_prefixed_namespaces_entries() {
        let mut base = MetricsSnapshot::new();
        base.push_counter("x", 1);
        base.merge_prefixed("sim", sample());
        assert_eq!(base.counter("sim.requests_served"), Some(12));
    }

    #[test]
    fn merge_sum_adds_matching_entries_and_appends_new_ones() {
        let mut total = sample();
        total.merge_sum(&sample());
        assert_eq!(total.counter("requests_served"), Some(24));
        assert_eq!(total.gauge("queue_depth"), Some(-6));
        let h = total.histogram("service_us").unwrap();
        assert_eq!(h.counts, vec![10, 6, 2, 2]);
        assert_eq!(h.sum, 24690);

        let mut extra = MetricsSnapshot::new();
        extra.push_counter("cache_trained", 3);
        total.merge_sum(&extra);
        assert_eq!(total.counter("cache_trained"), Some(3), "absent entries append");
    }

    #[test]
    fn merge_sum_leaves_mismatched_shapes_alone() {
        let mut total = sample();
        let mut other = MetricsSnapshot::new();
        other.push_gauge("requests_served", 5); // counter vs gauge
        other.push_histogram(
            "service_us",
            HistogramSnapshot { bounds: vec![7], counts: vec![1, 1], sum: 9 },
        );
        total.merge_sum(&other);
        assert_eq!(total.counter("requests_served"), Some(12), "kind mismatch: keep ours");
        assert_eq!(total.histogram("service_us").unwrap().sum, 12345, "bounds mismatch: keep ours");
    }
}
