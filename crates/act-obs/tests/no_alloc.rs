//! Steady-state allocation audit for the metrics recording path. The
//! contract (DESIGN.md §8) is that registration may allocate but
//! recording — counter adds, gauge stores, histogram observes, and
//! amortized `LocalCounter` flushes — never touches the heap.
//!
//! This file holds exactly one `#[test]` so no sibling test thread
//! allocates concurrently and trips the counter.

use act_obs::{latency_bounds_us, LocalCounter, Registry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn metric_recording_does_not_allocate_in_steady_state() {
    // Registration phase: allocation is expected and allowed here.
    let registry = Registry::new();
    let predictions = registry.counter("predictions");
    let occupancy = registry.gauge("igb_occupancy");
    let latency = registry.histogram("service_us", &latency_bounds_us());
    let mut local = LocalCounter::default();

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..2000u64 {
        predictions.inc();
        occupancy.set((i % 50) as i64);
        latency.observe(i * 37 % 5_000_000);
        local.inc();
        if i % 256 == 0 {
            local.flush(&predictions);
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "{} heap allocations across 2000 steady-state metric recordings",
        after - before
    );
}
