//! # criterion (in-tree shim)
//!
//! A minimal stand-in for the real
//! [`criterion`](https://crates.io/crates/criterion) crate, so the
//! workspace's `[[bench]]` targets compile and run **with no registry
//! access** (this repo must build fully offline). It covers exactly the
//! surface the benches use: [`black_box`], [`Criterion::benchmark_group`],
//! `group.sample_size(..)`, `group.bench_function(name, |b| b.iter(..))`,
//! `group.finish()`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up, then
//! timed over `sample_size` samples, and the **median ns/iter** is printed.
//! There is no statistics engine, no plots, and no baseline comparison. If
//! those are wanted and the registry is available, point the `criterion`
//! dev-dependency back at crates.io; the bench sources need no change.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n{}", name.into());
        BenchmarkGroup { _parent: self, sample_size: 100 }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        run_bench(&id.to_string(), 100, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 10, as in criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Time `f` under the group's configuration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("  {id}"), self.sample_size, f);
        self
    }

    /// End the group (formatting parity with criterion; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, executed `self.iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count so each sample takes roughly
    // 1ms: long enough for the clock, short enough to finish quickly.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{label:<40} {median:>12.1} ns/iter  ({samples} samples x {iters} iters)");
}

/// Collect benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn group_runs_and_returns() {
        smoke();
    }
}
