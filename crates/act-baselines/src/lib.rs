//! # act-baselines — comparison schemes for ACT's evaluation
//!
//! The two diagnosis baselines of Table V, built from scratch:
//!
//! * [`pbi`] — a sampling-based statistical debugger in the mold of PBI:
//!   branch-outcome and cache-event predicates, CBI-style Increase scoring
//!   over correct and failing runs.
//! * [`aviso`] — a learning-based failure-avoidance system in the mold of
//!   Aviso, repurposed (as the paper does) for diagnosis: event-pair
//!   scheduling constraints mined from reproduced failing runs.
//!
//! Both intentionally retain their originals' structural limitations —
//! PBI's blindness to predicate-invariant bugs and need for a failing run,
//! Aviso's need to reproduce failures and inability to see sequential
//! bugs — because those limitations are what the paper's comparison
//! measures.

pub mod aviso;
pub mod pbi;

pub use aviso::Aviso;
pub use pbi::{rank_predicates, PredicateCollector};
