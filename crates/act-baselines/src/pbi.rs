//! PBI-like sampling baseline (Arulraj et al., reference 10 of the paper): per-instruction
//! predicates from hardware performance events — branch outcomes and cache
//! events — scored with CBI-style statistical ranking over correct and
//! failing runs.
//!
//! As in the paper's comparison, this is the *extreme* PBI: instead of
//! sampling 1-in-N instructions over hundreds of runs, it observes every
//! instruction of every provided run (compensating for using only ~16
//! executions). Its characteristic weaknesses remain: it needs at least one
//! failing run, and it cannot see bugs whose predicates do not differ
//! between correct and failing executions.

use act_sim::attach::Observer;
use act_sim::events::{BranchEvent, CacheEvent, LoadEvent};
use act_sim::isa::Pc;
use std::collections::{HashMap, HashSet};

/// A PBI predicate: an instruction address paired with an observed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Predicate {
    /// Branch at `pc` with outcome `taken`.
    Branch {
        /// Branch instruction address.
        pc: Pc,
        /// Observed outcome.
        taken: bool,
    },
    /// Load at `pc` serviced as `event`.
    Cache {
        /// Load instruction address.
        pc: Pc,
        /// Observed cache event.
        event: CacheEvent,
    },
}

impl Predicate {
    /// The instruction address the predicate is anchored to.
    pub fn pc(&self) -> Pc {
        match *self {
            Predicate::Branch { pc, .. } | Predicate::Cache { pc, .. } => pc,
        }
    }
}

/// Observer that records the set of predicates observed in one run.
#[derive(Debug, Default)]
pub struct PredicateCollector {
    seen: HashSet<Predicate>,
}

impl PredicateCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The predicates observed in the run.
    pub fn into_predicates(self) -> HashSet<Predicate> {
        self.seen
    }
}

impl Observer for PredicateCollector {
    fn on_load(&mut self, ev: &LoadEvent) {
        self.seen.insert(Predicate::Cache { pc: ev.pc, event: ev.cache_event });
    }

    fn on_branch(&mut self, ev: &BranchEvent) {
        self.seen.insert(Predicate::Branch { pc: ev.pc, taken: ev.taken });
    }
}

/// A scored predicate in PBI's ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPredicate {
    /// The predicate.
    pub predicate: Predicate,
    /// CBI `Increase` score: `Failure(P) − Context(P)`.
    pub increase: f64,
    /// Failing runs in which the predicate was observed.
    pub fail_count: usize,
}

/// Rank predicates from `correct` and `failing` run observations.
///
/// `Failure(P) = F(P) / (F(P) + S(P))` over runs observing `P`;
/// `Context(P)` is the same ratio over runs that executed `P`'s site at
/// all. Predicates with `Increase > 0` are candidates, ranked by
/// `Increase` (then failing-run count, then pc for determinism).
pub fn rank_predicates(
    correct: &[HashSet<Predicate>],
    failing: &[HashSet<Predicate>],
) -> Vec<ScoredPredicate> {
    let mut f: HashMap<Predicate, usize> = HashMap::new();
    let mut s: HashMap<Predicate, usize> = HashMap::new();
    let mut f_site: HashMap<Pc, usize> = HashMap::new();
    let mut s_site: HashMap<Pc, usize> = HashMap::new();

    for run in failing {
        let mut sites: HashSet<Pc> = HashSet::new();
        for p in run {
            *f.entry(*p).or_default() += 1;
            sites.insert(p.pc());
        }
        for site in sites {
            *f_site.entry(site).or_default() += 1;
        }
    }
    for run in correct {
        let mut sites: HashSet<Pc> = HashSet::new();
        for p in run {
            *s.entry(*p).or_default() += 1;
            sites.insert(p.pc());
        }
        for site in sites {
            *s_site.entry(site).or_default() += 1;
        }
    }

    let mut scored: Vec<ScoredPredicate> = f
        .iter()
        .map(|(&p, &fc)| {
            let sc = s.get(&p).copied().unwrap_or(0);
            let failure = fc as f64 / (fc + sc) as f64;
            let fs = f_site.get(&p.pc()).copied().unwrap_or(0);
            let ss = s_site.get(&p.pc()).copied().unwrap_or(0);
            let context = if fs + ss == 0 { 0.0 } else { fs as f64 / (fs + ss) as f64 };
            ScoredPredicate { predicate: p, increase: failure - context, fail_count: fc }
        })
        .filter(|sp| sp.increase > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        b.increase
            .partial_cmp(&a.increase)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.fail_count.cmp(&a.fail_count))
            .then_with(|| a.predicate.cmp(&b.predicate))
    });
    scored
}

/// 1-based rank of the first predicate whose pc satisfies `matcher`, plus
/// the total number of candidate predicates.
pub fn rank_where<F>(scored: &[ScoredPredicate], mut matcher: F) -> (Option<usize>, usize)
where
    F: FnMut(Pc) -> bool,
{
    let rank = scored.iter().position(|sp| matcher(sp.predicate.pc())).map(|i| i + 1);
    (rank, scored.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(preds: &[Predicate]) -> HashSet<Predicate> {
        preds.iter().copied().collect()
    }

    const B_TRUE: Predicate = Predicate::Branch { pc: 5, taken: true };
    const B_FALSE: Predicate = Predicate::Branch { pc: 5, taken: false };
    const C_HIT: Predicate = Predicate::Cache { pc: 9, event: CacheEvent::L1Hit };
    const C_C2C: Predicate = Predicate::Cache { pc: 9, event: CacheEvent::CacheToCache };

    #[test]
    fn failure_only_predicate_ranks_first() {
        // Correct runs: branch taken, loads hit. Failing run: branch not
        // taken + a coherence event.
        let correct = vec![run(&[B_TRUE, C_HIT]), run(&[B_TRUE, C_HIT])];
        let failing = vec![run(&[B_TRUE, B_FALSE, C_HIT, C_C2C])];
        let scored = rank_predicates(&correct, &failing);
        assert!(!scored.is_empty());
        // The two failure-only predicates must outrank the shared ones.
        let top2: Vec<Predicate> = scored.iter().take(2).map(|s| s.predicate).collect();
        assert!(top2.contains(&B_FALSE));
        assert!(top2.contains(&C_C2C));
    }

    #[test]
    fn identical_predicates_yield_no_candidates() {
        // The PBI blind spot: when failing runs observe exactly the same
        // predicates as correct runs, nothing has positive Increase.
        let obs = run(&[B_TRUE, C_HIT]);
        let scored = rank_predicates(&[obs.clone(), obs.clone()], &[obs]);
        assert!(scored.is_empty(), "no predicate should have positive increase");
    }

    #[test]
    fn rank_where_finds_by_pc() {
        // The load site (pc 9) is executed in correct runs too, but with a
        // different cache event — the classic PBI signal.
        let correct = vec![run(&[B_TRUE, C_HIT])];
        let failing = vec![run(&[B_TRUE, C_C2C])];
        let scored = rank_predicates(&correct, &failing);
        let (rank, total) = rank_where(&scored, |pc| pc == 9);
        assert_eq!(rank, Some(1));
        assert!(total >= 1);
        let (rank, _) = rank_where(&scored, |pc| pc == 999);
        assert_eq!(rank, None);
    }
}
