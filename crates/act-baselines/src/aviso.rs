//! Aviso-like learning baseline (Lucia & Ceze, reference 12 of the paper): learns *scheduling
//! constraints* — pairs of nearby inter-thread communication events — from
//! failing executions, ranking pairs whose proximity correlates with
//! failure. Its characteristic properties, which the paper's Table V
//! comparison relies on:
//!
//! * it needs the failure to be **reproduced** (often several times) before
//!   the constraint involving the root cause surfaces and stabilizes;
//! * it only observes inter-thread events, so **sequential bugs are out of
//!   scope** entirely.

use act_sim::events::RawDep;
use act_trace::event::{Trace, TraceKind};
use act_trace::raw::raw_deps;
use std::collections::HashMap;

/// An event-pair constraint: two inter-thread communications that occurred
/// close together in a failing run.
pub type Constraint = (RawDep, RawDep);

/// A scored constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredConstraint {
    /// The event pair.
    pub constraint: Constraint,
    /// Failure correlation score.
    pub score: f64,
    /// Failing runs in which the pair was observed.
    pub fail_count: u32,
}

/// The inter-thread communication events of a trace, in order.
pub fn events_from_trace(trace: &Trace) -> Vec<RawDep> {
    raw_deps(trace).into_iter().filter(|d| d.dep.inter_thread).map(|d| d.dep).collect()
}

/// Whether a trace has any inter-thread communication at all (sequential
/// programs do not, which is why Aviso cannot handle them).
pub fn is_concurrent(trace: &Trace) -> bool {
    let mut tids = trace
        .records
        .iter()
        .filter(|r| matches!(r.kind, TraceKind::Load { .. } | TraceKind::Store { .. }))
        .map(|r| r.tid)
        .collect::<Vec<_>>();
    tids.sort_unstable();
    tids.dedup();
    tids.len() > 1
}

/// The Aviso-like analysis, accumulating runs.
#[derive(Debug)]
pub struct Aviso {
    window: usize,
    fail_pairs: HashMap<Constraint, u32>,
    correct_pairs: HashMap<Constraint, u32>,
    failing_runs: u32,
    correct_runs: u32,
}

impl Default for Aviso {
    fn default() -> Self {
        Aviso::new(5)
    }
}

impl Aviso {
    /// An analysis pairing events within `window` positions of each other.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        Aviso {
            window,
            fail_pairs: HashMap::new(),
            correct_pairs: HashMap::new(),
            failing_runs: 0,
            correct_runs: 0,
        }
    }

    /// Number of failing runs observed so far (the paper's "# of fail."
    /// column counts how many were needed).
    pub fn failing_runs(&self) -> u32 {
        self.failing_runs
    }

    fn pairs(&self, events: &[RawDep]) -> Vec<Constraint> {
        let mut out = Vec::new();
        for i in 0..events.len() {
            for j in i + 1..(i + 1 + self.window).min(events.len()) {
                out.push((events[i], events[j]));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Feed a correct run's trace.
    pub fn add_correct_run(&mut self, trace: &Trace) {
        self.correct_runs += 1;
        for pair in self.pairs(&events_from_trace(trace)) {
            *self.correct_pairs.entry(pair).or_default() += 1;
        }
    }

    /// Feed a (reproduced) failing run's trace.
    pub fn add_failing_run(&mut self, trace: &Trace) {
        self.failing_runs += 1;
        for pair in self.pairs(&events_from_trace(trace)) {
            *self.fail_pairs.entry(pair).or_default() += 1;
        }
    }

    /// Constraints ranked by failure correlation: observed in failing runs,
    /// discounted by how often the same pair appears in correct runs.
    pub fn ranked(&self) -> Vec<ScoredConstraint> {
        let mut scored: Vec<ScoredConstraint> = self
            .fail_pairs
            .iter()
            .map(|(&c, &fc)| {
                let cc = self.correct_pairs.get(&c).copied().unwrap_or(0);
                let fail_frac = fc as f64 / self.failing_runs.max(1) as f64;
                let correct_frac = cc as f64 / self.correct_runs.max(1) as f64;
                ScoredConstraint { constraint: c, score: fail_frac - correct_frac, fail_count: fc }
            })
            .filter(|sc| sc.score > 0.0)
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.fail_count.cmp(&a.fail_count))
                .then_with(|| a.constraint.cmp(&b.constraint))
        });
        scored
    }

    /// 1-based rank of the first constraint either of whose events satisfies
    /// `matcher`.
    pub fn rank_where<F>(&self, mut matcher: F) -> Option<usize>
    where
        F: FnMut(&RawDep) -> bool,
    {
        self.ranked()
            .iter()
            .position(|sc| matcher(&sc.constraint.0) || matcher(&sc.constraint.1))
            .map(|i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_trace::event::TraceRecord;

    fn store(seq: u64, tid: u32, pc: u32, addr: u64) -> TraceRecord {
        TraceRecord { seq, cycle: seq, tid, pc, kind: TraceKind::Store { addr } }
    }

    fn load(seq: u64, tid: u32, pc: u32, addr: u64) -> TraceRecord {
        TraceRecord { seq, cycle: seq, tid, pc, kind: TraceKind::Load { addr, dep: None } }
    }

    fn trace(records: Vec<TraceRecord>) -> Trace {
        Trace { records, code_len: 100 }
    }

    /// Correct run: T1 writes 0x2000 (pc 1), T0 reads it (pc 10) then T1
    /// writes 0x3000 (pc 2), T0 reads (pc 11).
    fn correct_trace() -> Trace {
        trace(vec![
            store(0, 1, 1, 0x2000),
            load(1, 0, 10, 0x2000),
            store(2, 1, 2, 0x3000),
            load(3, 0, 11, 0x3000),
        ])
    }

    /// Failing run: an extra racy communication (pc 3 -> pc 12) occurs
    /// between the two normal ones.
    fn failing_trace() -> Trace {
        trace(vec![
            store(0, 1, 1, 0x2000),
            load(1, 0, 10, 0x2000),
            store(2, 1, 3, 0x4000),
            load(3, 0, 12, 0x4000),
            store(4, 1, 2, 0x3000),
            load(5, 0, 11, 0x3000),
        ])
    }

    #[test]
    fn events_are_inter_thread_only() {
        let t = trace(vec![store(0, 0, 1, 0x2000), load(1, 0, 10, 0x2000)]);
        assert!(events_from_trace(&t).is_empty(), "intra-thread deps are not events");
        assert_eq!(events_from_trace(&correct_trace()).len(), 2);
    }

    #[test]
    fn concurrency_detection() {
        assert!(is_concurrent(&correct_trace()));
        let seq = trace(vec![store(0, 0, 1, 0x2000), load(1, 0, 10, 0x2000)]);
        assert!(!is_concurrent(&seq));
    }

    #[test]
    fn racy_constraint_surfaces_after_failing_runs() {
        let mut aviso = Aviso::new(5);
        for _ in 0..3 {
            aviso.add_correct_run(&correct_trace());
        }
        // No failing run yet: nothing to rank.
        assert!(aviso.ranked().is_empty());
        aviso.add_failing_run(&failing_trace());
        let racy = |d: &RawDep| d.store_pc == 3 && d.load_pc == 12;
        let rank = aviso.rank_where(racy).expect("constraint found");
        assert!(rank <= 3, "racy constraint rank {rank}");
        assert_eq!(aviso.failing_runs(), 1);
    }

    #[test]
    fn common_pairs_are_discounted() {
        let mut aviso = Aviso::new(5);
        for _ in 0..4 {
            aviso.add_correct_run(&correct_trace());
        }
        aviso.add_failing_run(&failing_trace());
        // The benign pair (1->10, 2->11) appears in every correct run, so
        // its score must not be positive.
        let benign = (
            RawDep { store_pc: 1, load_pc: 10, inter_thread: true },
            RawDep { store_pc: 2, load_pc: 11, inter_thread: true },
        );
        assert!(!aviso.ranked().iter().any(|sc| sc.constraint == benign));
    }
}
