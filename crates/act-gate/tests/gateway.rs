//! End-to-end gateway tests: boot real in-process act-serve backends (and
//! a few misbehaving stubs) behind an act-gate daemon and drive it with
//! real client connections.
//!
//! Covers the gateway acceptance criteria:
//! - killing a key's owning backend mid-fleet fails the request over to
//!   the next ring owner with zero client-visible errors — one-shot and
//!   with four pipelined requests in flight on one v4 session;
//! - a backend answering `BUSY` gets the same failover treatment;
//! - frames pass through byte-identically at every supported protocol
//!   version (proptest over v1–v4 and payload shapes);
//! - `STATUS` aggregates every backend's metrics under one reply.

use act_client::Client;
use act_gate::{GateConfig, Gateway};
use act_serve::proto::{read_frame, write_frame, Frame, FrameKind, VERSION};
use act_serve::{ModelSpec, Reply, Request};
use act_serve::{ServeConfig, Server};
use proptest::prelude::*;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Boot a real act-serve backend on an ephemeral port.
fn boot_backend() -> Server {
    let cfg = ServeConfig {
        tcp_addr: Some("127.0.0.1:0".to_string()),
        workers: 2,
        queue_depth: 16,
        ..ServeConfig::default()
    };
    Server::start(cfg).expect("backend boots")
}

fn addr_of(server: &Server) -> String {
    server.tcp_addr().expect("tcp bound").to_string()
}

/// Boot a gateway over `backends` with test-friendly timeouts.
fn boot_gateway(backends: Vec<String>) -> Gateway {
    let cfg = GateConfig {
        backends,
        connect_timeout: Duration::from_millis(500),
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(500),
        ..GateConfig::default()
    };
    Gateway::start(cfg).expect("gateway boots")
}

/// A one-shot act-client pointed at the gateway.
fn gate_client(gate: &Gateway) -> Client {
    Client::builder()
        .addr(gate.tcp_addr().to_string())
        .timeouts(Duration::from_secs(2), Duration::from_secs(30))
        .build()
        .expect("client builds")
}

/// A spec that trains in well under a second, with a tweakable seed so
/// tests can steer which backend the ring picks.
fn tiny_spec(workload: &str, seed: u64) -> ModelSpec {
    let mut spec = ModelSpec::new(workload);
    spec.seed = seed;
    spec.traces = 2;
    spec.seq_len = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    spec
}

/// The shard key the gateway derives for `spec` (must mirror `route_key`).
fn key_of(spec: &ModelSpec) -> String {
    act_fleet::ModelKey::new(&spec.workload, spec.seq_len as usize, spec.hidden as usize, spec.seed)
        .canonical()
}

/// Find a seed whose key is owned by backend `want` on `gate`'s ring.
fn seed_owned_by(gate: &Gateway, workload: &str, want: usize) -> u64 {
    (0..256)
        .find(|&seed| gate.ring().owner(&key_of(&tiny_spec(workload, seed))) == want)
        .expect("some seed in 0..256 must map to every backend")
}

#[test]
fn killing_the_owner_fails_over_to_the_ring_neighbor() {
    let backends: Vec<Server> = (0..3).map(|_| boot_backend()).collect();
    // An hour-long probe interval pins down-discovery to the forwarding
    // path itself: the gateway must find the corpse mid-request, not be
    // tipped off by a background probe first.
    let cfg = GateConfig {
        backends: backends.iter().map(addr_of).collect(),
        connect_timeout: Duration::from_millis(500),
        probe_interval: Duration::from_secs(3600),
        probe_timeout: Duration::from_millis(500),
        ..GateConfig::default()
    };
    let gate = Gateway::start(cfg).expect("gateway boots");
    let client = gate_client(&gate);

    // Let the startup probe sweep finish while every backend is alive, so
    // the kill below is discovered on the forwarding path — not by a probe
    // that happens to run first and quietly mark the victim down.
    for _ in 0..500 {
        if gate.stats().probes_completed() >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(gate.stats().probes_completed() >= 3, "startup probe sweep never finished");

    // A request through the healthy fleet lands on its ring owner.
    let victim = 1usize;
    let seed = seed_owned_by(&gate, "seq", victim);
    let spec = tiny_spec("seq", seed);
    let summary = client.train(&spec).expect("train through gateway");
    assert!(summary.contains("seq"), "odd summary: {summary}");
    assert_eq!(gate.stats().failovers(), 0, "healthy fleet must not fail over");

    // Kill the owner; the same key must now be served by its neighbor,
    // transparently, on the first try (one connect failure -> failover).
    let mut backends = backends;
    let victim_server = backends.remove(victim);
    victim_server.shutdown();
    victim_server.join();

    let summary = client.train(&spec).expect("train survives a dead owner");
    assert!(summary.contains("seq"), "odd summary: {summary}");
    // A dying backend may answer BUSY from its draining session for a few
    // milliseconds before the socket closes; either failover flavor counts.
    assert!(
        gate.stats().failovers() + gate.stats().busy_failovers() >= 1,
        "the dead owner must have triggered a failover"
    );
    assert_eq!(gate.stats().failed(), 0, "no client-visible failures");

    gate.shutdown();
    gate.join();
    for b in backends {
        b.shutdown();
        b.join();
    }
}

/// A stub backend that answers every routable frame with `BUSY` (and
/// `STATUS` probes with a plausible status, so health checks pass).
fn spawn_busy_stub() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("stub binds");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { break };
            let Ok(frame) = read_frame(&mut conn) else { continue };
            let reply = match frame.kind {
                FrameKind::Status => Reply::StatusText("stub status\n".into()).to_frame(),
                _ => Reply::Busy.to_frame(),
            };
            let _ = write_frame(&mut conn, &reply.with_version(frame.version));
        }
    });
    addr
}

#[test]
fn busy_owner_fails_over_to_the_next_backend() {
    let real = boot_backend();
    let stub_addr = spawn_busy_stub();
    // Backend 0 is the always-busy stub, backend 1 the real server.
    let gate = boot_gateway(vec![stub_addr, addr_of(&real)]);
    let client = gate_client(&gate);

    let seed = seed_owned_by(&gate, "seq", 0);
    client.train(&tiny_spec("seq", seed)).expect("train via busy-failover");
    assert!(gate.stats().busy_failovers() >= 1, "stub BUSY must have forced a failover");
    assert_eq!(gate.stats().failed(), 0);

    gate.shutdown();
    gate.join();
    real.shutdown();
    real.join();
}

/// A stub backend that echoes each routable frame's payload back under a
/// `Trained` frame at the same version — the passthrough oracle: whatever
/// bytes enter the gateway must exit it unchanged.
fn spawn_echo_stub() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("stub binds");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { break };
            let Ok(frame) = read_frame(&mut conn) else { continue };
            let reply = match frame.kind {
                FrameKind::Status => {
                    Reply::StatusText("stub status\n".into()).to_frame().with_version(frame.version)
                }
                _ => Frame {
                    version: frame.version,
                    kind: FrameKind::Trained,
                    request_id: frame.request_id,
                    payload: frame.payload,
                },
            };
            let _ = write_frame(&mut conn, &reply);
        }
    });
    addr
}

/// One raw framed exchange with the gateway, no client-library smarts.
fn raw_exchange(addr: &str, frame: &Frame) -> Frame {
    let mut conn = TcpStream::connect(addr).expect("connect to gateway");
    write_frame(&mut conn, frame).expect("send frame");
    read_frame(&mut conn).expect("reply frame")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed request at any supported version passes through the
    /// gateway byte-identically: same payload back, same version stamp.
    #[test]
    fn frames_pass_through_byte_identical_at_every_version(
        version in 1u8..VERSION + 1,
        workload_ix in 0usize..4,
        seed in 0u64..1000,
        traces in 1u32..32,
    ) {
        let echo = spawn_echo_stub();
        let gate = boot_gateway(vec![echo]);
        let addr = gate.tcp_addr().to_string();

        let workload = ["seq", "prodcons", "pipeline", "mutex"][workload_ix];
        let mut spec = tiny_spec(workload, seed);
        spec.traces = traces;
        let sent = Request::Train(spec).to_frame().with_version(version);
        let got = raw_exchange(&addr, &sent);

        prop_assert_eq!(got.kind, FrameKind::Trained);
        prop_assert_eq!(got.version, version);
        prop_assert_eq!(&got.payload, &sent.payload);

        gate.shutdown();
        gate.join();
    }
}

#[test]
fn v1_client_sees_v1_replies_from_a_v3_fleet() {
    let backend = boot_backend();
    let gate = boot_gateway(vec![addr_of(&backend)]);
    let addr = gate.tcp_addr().to_string();

    let sent = Request::Train(tiny_spec("seq", 0)).to_frame().with_version(1);
    let got = raw_exchange(&addr, &sent);
    assert_eq!(got.kind, FrameKind::Trained);
    assert_eq!(got.version, 1, "negotiated version is min(client, backend)");

    // STATUS at v1 must downgrade to the plain-text reply.
    let got = raw_exchange(&addr, &Request::Status.to_frame().with_version(1));
    assert_eq!(got.kind, FrameKind::StatusText);
    assert_eq!(got.version, 1);

    gate.shutdown();
    gate.join();
    backend.shutdown();
    backend.join();
}

#[test]
fn status_aggregates_the_whole_fleet() {
    let backends: Vec<Server> = (0..2).map(|_| boot_backend()).collect();
    let gate = boot_gateway(backends.iter().map(addr_of).collect());
    let client = gate_client(&gate);

    // Put one trained model on each backend's shard.
    for want in 0..2 {
        let seed = seed_owned_by(&gate, "seq", want);
        client.train(&tiny_spec("seq", seed)).expect("train");
    }

    let status = client.status().expect("status");
    let (text, snap) = (status.text, status.metrics.expect("v2+ metrics from the gateway"));
    for needle in [
        "act-gate status",
        "backends 2",
        "backends_up 2",
        "replies_relayed 2",
        "fleet_cache_misses 2",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    for i in 0..2 {
        assert!(text.contains(&format!("-- backend {i} ")), "no backend {i} section:\n{text}");
    }
    // The snapshot namespaces the fleet rollup and each backend's metrics.
    let fleet_trained = snap.counter("fleet.cache_trained").expect("fleet rollup in snapshot");
    assert_eq!(fleet_trained, 2, "one cold train per backend");
    let per_backend: u64 = (0..2)
        .map(|i| snap.counter(&format!("backend{i}.cache_trained")).expect("backend section"))
        .sum();
    assert_eq!(per_backend, fleet_trained, "rollup must equal the sum of the parts");

    gate.shutdown();
    gate.join();
    for b in backends {
        b.shutdown();
        b.join();
    }
}

#[test]
fn gateway_shutdown_drains_without_touching_backends() {
    let backend = boot_backend();
    let gate = boot_gateway(vec![addr_of(&backend)]);
    gate_client(&gate).shutdown().expect("shutdown acked with BYE");
    assert!(gate.is_shutting_down());
    gate.join();

    // The backend outlives its gateway.
    let direct = Client::builder().addr(addr_of(&backend)).build().expect("client builds");
    direct.status().expect("backend still up");
    backend.shutdown();
    backend.join();
}

#[test]
fn client_retry_rides_through_a_gateway_queue_spike() {
    // A 1-worker, 1-deep gateway queue over a slow backend: concurrent
    // clients see BUSY, and the act-serve client retry (satellite of this
    // change) absorbs one round of it.
    let backend = boot_backend();
    let cfg = GateConfig {
        backends: vec![addr_of(&backend)],
        workers: 1,
        queue_depth: 1,
        connect_timeout: Duration::from_millis(500),
        probe_timeout: Duration::from_millis(500),
        ..GateConfig::default()
    };
    let gate = Gateway::start(cfg).expect("gateway boots");
    let addr = gate.tcp_addr().to_string();

    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = Client::builder()
                    .addr(addr)
                    .retry(Duration::from_millis(50), 7 + i)
                    .build()
                    .expect("client builds");
                // __sleep holds a worker for `seed` milliseconds.
                client.train(&tiny_spec("__sleep", 30 + i))
            })
        })
        .collect();
    let replies: Vec<_> = threads.into_iter().map(|t| t.join().expect("client thread")).collect();
    let served = replies.iter().filter(|r| r.is_ok()).count();
    assert!(served >= 1, "at least one client must get through: {replies:?}");

    gate.shutdown();
    gate.join();
    backend.shutdown();
    backend.join();
}

#[test]
fn pipelined_session_fails_over_with_four_requests_in_flight() {
    let backends: Vec<Server> = (0..2).map(|_| boot_backend()).collect();
    // An hour-long probe interval again pins down-discovery to the
    // forwarding path: the corpse must be found under pipelined load.
    let cfg = GateConfig {
        backends: backends.iter().map(addr_of).collect(),
        connect_timeout: Duration::from_millis(500),
        probe_interval: Duration::from_secs(3600),
        probe_timeout: Duration::from_millis(500),
        ..GateConfig::default()
    };
    let gate = Gateway::start(cfg).expect("gateway boots");

    // Let the startup probe sweep finish while both backends are alive, so
    // the kill below is discovered on the forwarding path — not by a probe
    // that happens to run first and quietly mark the victim down.
    for _ in 0..500 {
        if gate.stats().probes_completed() >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(gate.stats().probes_completed() >= 2, "startup probe sweep never finished");

    // Four distinct keys, every one owned by the backend about to die.
    let victim = 0usize;
    let seeds: Vec<u64> = (0..256)
        .filter(|&seed| gate.ring().owner(&key_of(&tiny_spec("seq", seed))) == victim)
        .take(4)
        .collect();
    assert_eq!(seeds.len(), 4, "need four keys on the victim backend");

    let mut backends = backends;
    let victim_server = backends.remove(victim);
    victim_server.shutdown();
    victim_server.join();

    let client = Client::builder()
        .addr(gate.tcp_addr().to_string())
        .pipeline_depth(8)
        .build()
        .expect("client builds");
    let session = client.pipeline().expect("v4 session to the gateway");
    assert_eq!(gate.stats().sessions_open(), 1, "the HELLO must have opened a gateway session");

    // Fire all four before waiting on any: four requests genuinely in
    // flight on one session, each needing its own failover to survive.
    let pending: Vec<_> = seeds
        .iter()
        .map(|&seed| session.call(&Request::Train(tiny_spec("seq", seed))).expect("call enqueues"))
        .collect();
    for p in pending {
        match p.wait().expect("pipelined reply") {
            Reply::Trained(summary) => assert!(summary.contains("seq"), "odd summary: {summary}"),
            other => panic!("expected Trained after failover, got {other:?}"),
        }
    }
    // The draining victim may answer BUSY before its socket closes; either
    // failover flavor proves the requests hopped off the dead owner.
    assert!(
        gate.stats().failovers() + gate.stats().busy_failovers() >= 1,
        "the dead owner must have triggered a failover"
    );
    assert_eq!(gate.stats().failed(), 0, "no client-visible failures");
    assert_eq!(gate.stats().relayed(), 4, "all four pipelined replies relayed");

    drop(session);
    drop(client);
    gate.shutdown();
    gate.join();
    for b in backends {
        b.shutdown();
        b.join();
    }
}
