//! Consistent-hash ring over backend indices, with virtual nodes.
//!
//! The gateway shards by [`act_fleet::ModelKey`] canonical strings so every
//! TRAIN/DIAGNOSE for the same workload × topology × seed lands on the same
//! backend and its model cache stays hot. Virtual nodes smooth the split: a
//! backend owns many small arcs of the hash circle instead of one large
//! one, so three backends each see roughly a third of a uniform key space.
//!
//! The ring is a pure function of `(backends, vnodes)` — no registration
//! order, no randomness — so a test (or a second gateway in front of the
//! same fleet) can rebuild it and predict ownership exactly.

/// FNV-1a 64-bit with a splitmix64 finalizer. Stable and dependency-free;
/// speed is irrelevant here (one hash per request, a few hundred at ring
/// build). The finalizer matters: raw FNV-1a barely mixes the high bits on
/// short keys, and ring placement sorts on the full 64-bit value.
pub fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring mapping key strings to backend indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, backend)` sorted by point — the hash circle.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Build the ring for `backends` backends with `vnodes` virtual nodes
    /// each.
    ///
    /// # Panics
    ///
    /// Panics when either count is zero (a gateway with no backends cannot
    /// route).
    pub fn new(backends: usize, vnodes: usize) -> HashRing {
        assert!(backends > 0, "ring needs at least one backend");
        assert!(vnodes > 0, "ring needs at least one virtual node");
        let mut points = Vec::with_capacity(backends * vnodes);
        for b in 0..backends {
            for v in 0..vnodes {
                points.push((hash_key(&format!("{b}#{v}")), b));
            }
        }
        points.sort_unstable();
        HashRing { points, backends }
    }

    /// Number of backends the ring was built over.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend owning `key`: the first ring point at or after the
    /// key's hash, wrapping around.
    pub fn owner(&self, key: &str) -> usize {
        self.points[self.start_of(key)].1
    }

    /// Every backend in ring order starting at the owner, each listed
    /// once — the failover order: if the owner is down, the next distinct
    /// backend along the circle inherits the key (and only that key's arc,
    /// which is what keeps failover remapping minimal).
    pub fn route(&self, key: &str) -> Vec<usize> {
        let start = self.start_of(key);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for i in 0..self.points.len() {
            let b = self.points[(start + i) % self.points.len()].1;
            if !seen[b] {
                seen[b] = true;
                order.push(b);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// Index of the first ring point at or after `key`'s hash.
    fn start_of(&self, key: &str) -> usize {
        let h = hash_key(key);
        match self.points.binary_search_by(|&(p, _)| p.cmp(&h)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<String> {
        // Realistic key shapes: ModelKey canonical strings.
        (0..n).map(|i| format!("workload{}-n2-h10-s{}", i % 13, i)).collect()
    }

    #[test]
    fn ring_is_deterministic() {
        let a = HashRing::new(3, 64);
        let b = HashRing::new(3, 64);
        for k in keys(100) {
            assert_eq!(a.owner(&k), b.owner(&k));
            assert_eq!(a.route(&k), b.route(&k));
        }
    }

    #[test]
    fn virtual_nodes_balance_the_split() {
        let ring = HashRing::new(3, 64);
        let mut counts = [0usize; 3];
        let keys = keys(3000);
        for k in &keys {
            counts[ring.owner(k)] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            // Perfect would be 1000 each; 64 vnodes keeps every backend
            // within a factor ~1.6 of fair on a uniform key space.
            assert!((600..=1600).contains(&c), "backend {b} owns {c} of 3000 keys: {counts:?}");
        }
    }

    #[test]
    fn route_lists_every_backend_once_owner_first() {
        let ring = HashRing::new(4, 32);
        for k in keys(50) {
            let order = ring.route(&k);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], ring.owner(&k));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "route must be a permutation: {order:?}");
        }
    }

    #[test]
    fn skipping_a_dead_backend_remaps_only_its_keys() {
        // Consistent hashing's point: with backend 0 skipped, keys owned
        // by 1 and 2 keep their owner; only backend 0's keys move.
        let ring = HashRing::new(3, 64);
        for k in keys(500) {
            let order = ring.route(&k);
            let survivor = *order.iter().find(|&&b| b != 0).unwrap();
            if order[0] != 0 {
                assert_eq!(survivor, order[0], "live owners must not move");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_ring_is_rejected() {
        let _ = HashRing::new(0, 8);
    }
}
