//! act-gate: a sharded diagnosis gateway in front of an act-serve fleet.
//!
//! One gateway process speaks the act-serve wire protocol on its client
//! side and fans requests out to N backends:
//!
//! - [`ring`] — consistent-hash sharding over [`act_fleet::ModelKey`]
//!   canonical strings, with virtual nodes, so repeat TRAIN/DIAGNOSE for a
//!   workload × topology × seed hit the backend whose model cache is warm.
//! - [`health`] — per-backend up/down marks with jittered exponential
//!   backoff between probes of a dead backend.
//! - [`pool`] — pre-opened one-shot connections per backend (the protocol
//!   closes after each reply, so pooling means pre-connecting).
//! - [`gateway`] — the daemon: acceptor + bounded queue + forwarding
//!   workers, transparent single-retry failover to the next ring owner,
//!   version-negotiated passthrough, and an aggregated fleet `STATUS`.
//!
//! Clients need no changes: `act train --remote`, `act diagnose --remote`,
//! and act-fleet campaigns point at the gateway address exactly as they
//! would at a single act-serve daemon.

pub mod gateway;
pub mod health;
pub mod pool;
pub mod ring;

pub use gateway::{GateConfig, GateStats, Gateway};
pub use health::Health;
pub use pool::ConnPool;
pub use ring::{hash_key, HashRing};
