//! act-gate: a sharded diagnosis gateway in front of an act-serve fleet.
//!
//! One gateway process speaks the act-serve wire protocol on its client
//! side — including multiplexed protocol-v4 sessions and chunked stream
//! ingest — and fans requests out to N backends:
//!
//! - [`ring`] — consistent-hash sharding over [`act_fleet::ModelKey`]
//!   canonical strings, with virtual nodes, so repeat TRAIN/DIAGNOSE for a
//!   workload × topology × seed hit the backend whose model cache is warm.
//! - [`health`] — per-backend up/down marks with jittered exponential
//!   backoff between probes of a dead backend.
//! - [`pool`] — warm multiplexed v4 sessions per backend, shared by every
//!   forwarding worker, with a sticky one-shot fallback for backends that
//!   do not speak v4 sessions.
//! - [`gateway`] — the daemon: acceptor + bounded queue + forwarding
//!   workers, transparent single-retry failover to the next ring owner,
//!   version-negotiated passthrough, and an aggregated fleet `STATUS`.
//!   Pipelined requests from one client session are demultiplexed and
//!   routed per-request, so each fails over independently; chunked
//!   uploads relay over a dedicated backend connection.
//!
//! Clients need no changes: `act train --remote`, `act diagnose --remote`,
//! and act-fleet campaigns point at the gateway address exactly as they
//! would at a single act-serve daemon — one-shot v1–v3 frames and v4
//! sessions alike.

pub mod gateway;
pub mod health;
pub mod pool;
pub mod ring;
mod session;

pub use gateway::{GateConfig, GateStats, Gateway};
pub use health::Health;
pub use pool::{BackendLink, SessionPool};
pub use ring::{hash_key, HashRing};
