//! Per-backend pools of pre-opened connections.
//!
//! The act-serve protocol is one-shot — one request, one reply, the
//! connection closes — so a "pooled" connection is one that has been
//! connected but not yet used. The prober can keep a few warm per backend
//! so a forward skips the TCP handshake; a connection that went stale
//! while idle (the backend restarts, or its accept-side read timeout
//! fires) simply fails its exchange and the router falls back to a fresh
//! connect.
//!
//! Warm pooling is off by default ([`crate::GateConfig`] sets
//! `pool_capacity: 0`, making the pool a plain connection factory with
//! uniform timeouts): act-serve's acceptor reads each accepted
//! connection's request frame inline, so an accepted-but-silent warm
//! socket blocks the backend's accept loop until a read timeout fires.
//! Only point a non-zero capacity at backends that accept asynchronously.

use std::io;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Pre-opened one-shot connections for a fixed set of backend addresses.
pub struct ConnPool {
    backends: Vec<String>,
    idle: Vec<Mutex<Vec<TcpStream>>>,
    capacity: usize,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl ConnPool {
    /// A pool keeping up to `capacity` idle connections per backend.
    pub fn new(
        backends: Vec<String>,
        capacity: usize,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> ConnPool {
        let idle = backends.iter().map(|_| Mutex::new(Vec::new())).collect();
        ConnPool { backends, idle, capacity, connect_timeout, io_timeout }
    }

    /// The backend addresses, in index order.
    pub fn addrs(&self) -> &[String] {
        &self.backends
    }

    /// Pop an idle pre-opened connection for backend `i`, if any.
    pub fn take_idle(&self, i: usize) -> Option<TcpStream> {
        self.idle[i].lock().expect("pool lock").pop()
    }

    /// Open a fresh connection to backend `i` with the pool's timeouts.
    pub fn connect(&self, i: usize) -> io::Result<TcpStream> {
        let stream = act_serve::connect_tcp(&self.backends[i], Some(self.connect_timeout))?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        Ok(stream)
    }

    /// Top the idle set for backend `i` up to capacity. Returns how many
    /// connections were opened; stops quietly at the first failure (the
    /// health layer, not the pool, decides what a failure means).
    pub fn refill(&self, i: usize) -> usize {
        let mut opened = 0;
        loop {
            {
                let idle = self.idle[i].lock().expect("pool lock");
                if idle.len() >= self.capacity {
                    return opened;
                }
            }
            match self.connect(i) {
                Ok(conn) => {
                    self.idle[i].lock().expect("pool lock").push(conn);
                    opened += 1;
                }
                Err(_) => return opened,
            }
        }
    }

    /// Drop every idle connection to backend `i` (it was marked down; its
    /// pre-opened sockets are dead weight).
    pub fn clear(&self, i: usize) {
        self.idle[i].lock().expect("pool lock").clear();
    }

    /// Idle connections currently pooled for backend `i`.
    pub fn idle_len(&self, i: usize) -> usize {
        self.idle[i].lock().expect("pool lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pool_for(addr: &str) -> ConnPool {
        ConnPool::new(
            vec![addr.to_string()],
            2,
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
    }

    #[test]
    fn refill_fills_to_capacity_and_clear_empties() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = pool_for(&listener.local_addr().unwrap().to_string());
        assert_eq!(pool.refill(0), 2);
        assert_eq!(pool.idle_len(0), 2);
        assert_eq!(pool.refill(0), 0, "already full");
        assert!(pool.take_idle(0).is_some());
        assert_eq!(pool.idle_len(0), 1);
        pool.clear(0);
        assert_eq!(pool.idle_len(0), 0);
    }

    #[test]
    fn refill_against_a_dead_backend_opens_nothing() {
        let pool = pool_for("127.0.0.1:1");
        assert_eq!(pool.refill(0), 0);
        assert!(pool.take_idle(0).is_none());
        assert!(pool.connect(0).is_err());
    }
}
