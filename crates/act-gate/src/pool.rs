//! Per-backend pools of warm, multiplexed protocol-v4 sessions.
//!
//! Protocol v4 made the backend link long-lived: one `HELLO`-negotiated
//! session carries many pipelined requests, so the pool finally earns its
//! name — `pool_capacity` is the number of persistent sessions kept per
//! backend (default 1), each shared by every forwarding worker at once.
//! This also retires the old `pool_capacity: 0` workaround: a pre-v4
//! "warm" connection was a *silent* pre-opened socket that stalled the
//! backend's inline first-frame read, but a v4 session says `HELLO` the
//! moment it connects, so the backend parks it on a session reader and
//! the accept loop moves on.
//!
//! Mixed fleets keep working: a backend that answers the `HELLO` with
//! anything but `HELLO_ACK` (an old act-serve, a stub) is remembered as
//! one-shot — [`SessionPool::link`] then tells the forwarder to fall back
//! to the classic connect-send-receive exchange, frames relayed verbatim.
//! The memory resets when the backend bounces, so an upgraded backend is
//! re-offered a session on its next probe.

use act_client::session::{OpenError, Session};
use act_serve::{ClientConfig, ClientError, Endpoint};
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// In-flight window asked of each backend session (the backend may grant
/// less). Big enough that every forwarding worker can wait on one session
/// concurrently.
const BACKEND_SESSION_DEPTH: u32 = 32;

/// How a forwarder should talk to a backend right now.
pub enum BackendLink {
    /// A live multiplexed v4 session (shared; call + wait concurrently).
    Session(Arc<Session>),
    /// The backend does not speak v4 sessions: use a one-shot exchange.
    OneShot,
}

/// What the pool has learned about a backend's protocol support.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Not yet probed with a `HELLO`.
    Unknown,
    /// Speaks v4: keep warm sessions.
    Sessions,
    /// Answered the `HELLO` with a non-ack: one-shot until it bounces.
    OneShot,
}

struct BackendSlot {
    sessions: Vec<Arc<Session>>,
    /// Round-robin cursor over `sessions`.
    next: usize,
    mode: Mode,
}

/// Warm v4 sessions (with one-shot fallback) for a fixed backend set.
pub struct SessionPool {
    backends: Vec<String>,
    slots: Vec<Mutex<BackendSlot>>,
    capacity: usize,
    cfg: ClientConfig,
}

impl SessionPool {
    /// A pool keeping up to `capacity` sessions per backend. Capacity 0
    /// disables session mode entirely (every link is one-shot).
    pub fn new(
        backends: Vec<String>,
        capacity: usize,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> SessionPool {
        let slots = backends
            .iter()
            .map(|_| {
                Mutex::new(BackendSlot {
                    sessions: Vec::new(),
                    next: 0,
                    mode: if capacity == 0 { Mode::OneShot } else { Mode::Unknown },
                })
            })
            .collect();
        let cfg = ClientConfig {
            connect_timeout: Some(connect_timeout),
            io_timeout: Some(io_timeout),
            retry: None,
        };
        SessionPool { backends, slots, capacity, cfg }
    }

    /// The backend addresses, in index order.
    pub fn addrs(&self) -> &[String] {
        &self.backends
    }

    /// A link to backend `i`: a pooled session (opening one if below
    /// capacity), or the one-shot marker for backends that lack v4.
    ///
    /// # Errors
    ///
    /// Transport failures opening a needed session (these count against
    /// the backend's health; a non-v4 answer does not — it's a healthy
    /// backend speaking an older protocol).
    pub fn link(&self, i: usize) -> Result<BackendLink, ClientError> {
        let mut slot = self.slots[i].lock().expect("pool lock");
        if slot.mode == Mode::OneShot {
            return Ok(BackendLink::OneShot);
        }
        slot.sessions.retain(|s| !s.is_dead());
        if slot.sessions.len() < self.capacity {
            let endpoint = Endpoint::Tcp(self.backends[i].clone());
            match Session::open(&endpoint, &self.cfg, BACKEND_SESSION_DEPTH) {
                Ok(session) => {
                    slot.mode = Mode::Sessions;
                    slot.sessions.push(session);
                }
                Err(OpenError::Unsupported(_)) => {
                    slot.mode = Mode::OneShot;
                    slot.sessions.clear();
                    return Ok(BackendLink::OneShot);
                }
                Err(OpenError::Transport(e)) => {
                    if slot.sessions.is_empty() {
                        return Err(e);
                    }
                    // A surviving warm session beats failing the request.
                }
            }
        }
        let n = slot.sessions.len();
        slot.next = (slot.next + 1) % n.max(1);
        Ok(BackendLink::Session(slot.sessions[slot.next % n].clone()))
    }

    /// Drop `stale` from backend `i`'s pool (its exchange just failed) so
    /// the next [`SessionPool::link`] opens a replacement.
    pub fn discard(&self, i: usize, stale: &Arc<Session>) {
        let mut slot = self.slots[i].lock().expect("pool lock");
        slot.sessions.retain(|s| !Arc::ptr_eq(s, stale));
    }

    /// Open a fresh raw connection to backend `i` with the pool's
    /// timeouts — for one-shot fallback exchanges and for the dedicated
    /// per-stream connections chunked uploads ride on.
    ///
    /// # Errors
    ///
    /// Connect failure or socket-option failure.
    pub fn connect(&self, i: usize) -> io::Result<TcpStream> {
        let stream = act_serve::connect_tcp(&self.backends[i], self.cfg.connect_timeout)?;
        stream.set_read_timeout(self.cfg.io_timeout)?;
        stream.set_write_timeout(self.cfg.io_timeout)?;
        Ok(stream)
    }

    /// Top backend `i` up to `capacity` live sessions (probe path).
    /// Returns how many sessions were opened; stops quietly at the first
    /// failure (the health layer decides what a failure means).
    pub fn refill(&self, i: usize) -> usize {
        let mut opened = 0;
        loop {
            let mut slot = self.slots[i].lock().expect("pool lock");
            if slot.mode == Mode::OneShot {
                return opened;
            }
            slot.sessions.retain(|s| !s.is_dead());
            if slot.sessions.len() >= self.capacity {
                return opened;
            }
            let endpoint = Endpoint::Tcp(self.backends[i].clone());
            match Session::open(&endpoint, &self.cfg, BACKEND_SESSION_DEPTH) {
                Ok(session) => {
                    slot.mode = Mode::Sessions;
                    slot.sessions.push(session);
                    opened += 1;
                }
                Err(OpenError::Unsupported(_)) => {
                    slot.mode = Mode::OneShot;
                    slot.sessions.clear();
                    return opened;
                }
                Err(OpenError::Transport(_)) => return opened,
            }
        }
    }

    /// Drop every session to backend `i` and forget its protocol mode (it
    /// was marked down; whatever comes back up may speak differently).
    pub fn clear(&self, i: usize) {
        let mut slot = self.slots[i].lock().expect("pool lock");
        slot.sessions.clear();
        if self.capacity > 0 {
            slot.mode = Mode::Unknown;
        }
    }

    /// Live sessions currently pooled for backend `i`.
    pub fn idle_len(&self, i: usize) -> usize {
        let mut slot = self.slots[i].lock().expect("pool lock");
        slot.sessions.retain(|s| !s.is_dead());
        slot.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_serve::server::{ServeConfig, Server};

    fn backend() -> Server {
        let cfg = ServeConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            workers: 1,
            queue_depth: 4,
            ..ServeConfig::default()
        };
        Server::start(cfg).expect("backend boots")
    }

    fn pool_for(addr: &str, capacity: usize) -> SessionPool {
        SessionPool::new(
            vec![addr.to_string()],
            capacity,
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
    }

    #[test]
    fn refill_fills_to_capacity_and_clear_empties() {
        let server = backend();
        let addr = server.tcp_addr().unwrap().to_string();
        let pool = pool_for(&addr, 2);
        assert_eq!(pool.refill(0), 2);
        assert_eq!(pool.idle_len(0), 2);
        assert_eq!(pool.refill(0), 0, "already full");
        assert!(matches!(pool.link(0), Ok(BackendLink::Session(_))));
        pool.clear(0);
        assert_eq!(pool.idle_len(0), 0);
        server.shutdown();
        server.join();
    }

    #[test]
    fn refill_against_a_dead_backend_opens_nothing() {
        let pool = pool_for("127.0.0.1:1", 2);
        assert_eq!(pool.refill(0), 0);
        assert!(pool.link(0).is_err());
        assert!(pool.connect(0).is_err());
    }

    #[test]
    fn a_non_v4_backend_is_remembered_as_one_shot() {
        use act_serve::proto::{read_frame, write_frame};
        use act_serve::Reply;
        // A stub that answers any frame with BUSY — decodable, not an ack.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                if read_frame(&mut conn).is_ok() {
                    let _ = write_frame(&mut conn, &Reply::Busy.to_frame());
                }
            }
        });
        let pool = pool_for(&addr, 2);
        assert!(matches!(pool.link(0), Ok(BackendLink::OneShot)));
        assert_eq!(pool.refill(0), 0, "one-shot backends pool nothing");
        assert!(matches!(pool.link(0), Ok(BackendLink::OneShot)), "the mode sticks");
        // A down-mark resets the memory so an upgraded backend gets re-probed.
        pool.clear(0);
        assert!(matches!(pool.link(0), Ok(BackendLink::OneShot)), "stub still answers non-ack");
    }

    #[test]
    fn capacity_zero_forces_one_shot_mode() {
        let server = backend();
        let addr = server.tcp_addr().unwrap().to_string();
        let pool = pool_for(&addr, 0);
        assert!(matches!(pool.link(0), Ok(BackendLink::OneShot)), "0 = sessions disabled");
        assert_eq!(pool.refill(0), 0);
        server.shutdown();
        server.join();
    }
}
