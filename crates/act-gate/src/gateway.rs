//! The gateway daemon: accept client frames, shard them across the
//! backend fleet, fail over, and answer aggregated `STATUS`.
//!
//! Life of a one-shot request: an acceptor thread reads one frame,
//! answers `STATUS`/`SHUTDOWN` inline (STATUS is the aggregated fleet
//! view), and queues everything routable — the frame, its decoded
//! request, and its shard key — on a bounded queue, answering `BUSY` when
//! full (the same refused-not-dropped backpressure contract as
//! act-serve). Forwarding workers drain the queue: the consistent-hash
//! ring orders the backends for the key, dead backends are skipped, and
//! the request gets the owner plus at most one failover attempt on the
//! next ring owner when the owner is down or answers `BUSY`.
//!
//! A v4 client that opens with `HELLO` instead gets a multiplexed session
//! (see [`crate::session`]): its requests enter the same queue, each with
//! a per-request reply target, so pipelined requests from one connection
//! route, fail over, and complete independently.
//!
//! Backend links are pooled v4 sessions ([`crate::pool`]) shared by all
//! workers; backends that do not speak v4 sessions fall back to classic
//! one-shot exchanges with the frame relayed verbatim. Version
//! negotiation holds either way: the reply reaches the client stamped
//! `min(client version, reply version)` — a v1 client talking through the
//! gateway sees exactly the frames a v1 act-serve would have sent it.

use crate::health::Health;
use crate::pool::{BackendLink, SessionPool};
use crate::ring::HashRing;
use crate::session::{run_gate_session, GateSessionShared};
use act_client::{ActError, Client, ServerStatus};
use act_fleet::{BoundedQueue, ModelKey};
use act_obs::{
    events, latency_bounds_us, Counter, Gauge, Histogram, Level, MetricsSnapshot, Registry,
};
use act_serve::proto::{read_frame, write_frame, Frame, FrameKind, SESSION_VERSION, VERSION};
use act_serve::{ClientError, Reply, Request};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the acceptor and prober sleep between polls of an idle
/// listener / probe schedule.
const POLL: Duration = Duration::from_millis(5);

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// TCP listen address (`"127.0.0.1:0"` picks an ephemeral port).
    pub listen: String,
    /// Backend act-serve TCP addresses. Must be non-empty.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub vnodes: usize,
    /// Forwarding worker threads.
    pub workers: usize,
    /// Bounded queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Warm multiplexed v4 sessions kept per backend (default 1; every
    /// worker shares them, so one is usually plenty). `0` disables
    /// session mode and forces classic one-shot exchanges — the old
    /// pre-v4 behavior, kept as an escape hatch. Backends that answer
    /// the session `HELLO` with anything but an ack get one-shot
    /// exchanges automatically, whatever this says.
    pub pool_capacity: usize,
    /// Backend TCP connect timeout.
    pub connect_timeout: Duration,
    /// Client-facing socket read/write timeout.
    pub io_timeout: Duration,
    /// Backend read/write timeout for forwarded requests (generous: a
    /// cold TRAIN runs the whole offline pipeline).
    pub backend_timeout: Duration,
    /// How often up backends get a STATUS probe.
    pub probe_interval: Duration,
    /// Connect + I/O timeout for health probes and STATUS aggregation.
    pub probe_timeout: Duration,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            listen: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            vnodes: 64,
            workers: 4,
            queue_depth: 64,
            pool_capacity: 1,
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            backend_timeout: Duration::from_secs(300),
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
        }
    }
}

/// The gateway's own observability surface, backed by a per-gateway
/// [`Registry`] (tests boot several gateways in one process).
pub struct GateStats {
    registry: Registry,
    pub(crate) routed: Counter,
    pub(crate) relayed: Counter,
    pub(crate) failovers: Counter,
    pub(crate) busy_failovers: Counter,
    pub(crate) failed: Counter,
    pub(crate) rejected_busy: Counter,
    pub(crate) proto_errors: Counter,
    pub(crate) probes_ok: Counter,
    pub(crate) probes_failed: Counter,
    pub(crate) streams_relayed: Counter,
    pub(crate) stream_chunks_relayed: Counter,
    pub(crate) forwarded_by: Vec<Counter>,
    pub(crate) failures_by: Vec<Counter>,
    backends_up: Gauge,
    queue_depth: Gauge,
    uptime_ms: Gauge,
    pub(crate) sessions_open: Gauge,
    service_us: Histogram,
}

impl GateStats {
    fn new(backends: usize) -> GateStats {
        let registry = Registry::new();
        GateStats {
            routed: registry.counter("requests_routed"),
            relayed: registry.counter("replies_relayed"),
            failovers: registry.counter("failovers"),
            busy_failovers: registry.counter("busy_failovers"),
            failed: registry.counter("requests_failed"),
            rejected_busy: registry.counter("requests_rejected_busy"),
            proto_errors: registry.counter("protocol_errors"),
            probes_ok: registry.counter("probes_ok"),
            probes_failed: registry.counter("probes_failed"),
            streams_relayed: registry.counter("streams_relayed"),
            stream_chunks_relayed: registry.counter("stream_chunks_relayed"),
            forwarded_by: (0..backends)
                .map(|i| registry.counter(&format!("backend{i}_forwarded")))
                .collect(),
            failures_by: (0..backends)
                .map(|i| registry.counter(&format!("backend{i}_failures")))
                .collect(),
            backends_up: registry.gauge("backends_up"),
            queue_depth: registry.gauge("queue_depth"),
            uptime_ms: registry.gauge("uptime_ms"),
            sessions_open: registry.gauge("sessions_open"),
            service_us: registry.histogram("gate_service_us", &latency_bounds_us()),
            registry,
        }
    }

    /// Requests relayed to a client after a successful backend exchange.
    pub fn relayed(&self) -> u64 {
        self.relayed.get()
    }

    /// Requests that needed the next ring owner because their owner's
    /// exchange failed.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Requests forwarded onward because a backend answered `BUSY`.
    pub fn busy_failovers(&self) -> u64 {
        self.busy_failovers.get()
    }

    /// Requests answered `ERROR` after every candidate failed.
    pub fn failed(&self) -> u64 {
        self.failed.get()
    }

    /// Requests refused because the gateway's own queue was full.
    pub fn rejected_busy(&self) -> u64 {
        self.rejected_busy.get()
    }

    /// Chunked uploads relayed to a backend through to their verdict.
    pub fn streams_relayed(&self) -> u64 {
        self.streams_relayed.get()
    }

    /// Probes attempted so far, successful or not. The prober sweeps every
    /// backend once at startup, so a value of at least the backend count
    /// means the initial health marks and warm pools are in place.
    pub fn probes_completed(&self) -> u64 {
        self.probes_ok.get() + self.probes_failed.get()
    }

    /// Client v4 sessions currently open.
    pub fn sessions_open(&self) -> i64 {
        self.sessions_open.get()
    }

    /// The gateway's own counters as one snapshot, gauges stamped.
    fn snapshot(&self, uptime: Duration, queue_len: usize, up: usize) -> MetricsSnapshot {
        self.uptime_ms.set(uptime.as_millis() as i64);
        self.queue_depth.set(queue_len as i64);
        self.backends_up.set(up as i64);
        self.registry.snapshot()
    }

    /// The grep-stable plain-text block heading every gateway `STATUS`.
    fn render(&self, uptime: Duration, queue_len: usize, up: usize, backends: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("act-gate status\n");
        let mut line = |k: &str, v: u64| writeln!(out, "{k} {v}").expect("string write");
        line("uptime_ms", uptime.as_millis() as u64);
        line("backends", backends as u64);
        line("backends_up", up as u64);
        line("requests_routed", self.routed.get());
        line("replies_relayed", self.relayed.get());
        line("failovers", self.failovers.get());
        line("busy_failovers", self.busy_failovers.get());
        line("requests_failed", self.failed.get());
        line("requests_rejected_busy", self.rejected_busy.get());
        line("protocol_errors", self.proto_errors.get());
        line("streams_relayed", self.streams_relayed.get());
        line("stream_chunks_relayed", self.stream_chunks_relayed.get());
        line("sessions_open", self.sessions_open.get().max(0) as u64);
        line("queue_depth", queue_len as u64);
        out
    }
}

/// Where a forwarded request's reply goes: back down a one-shot
/// connection, or onto a multiplexed client session under its request id.
pub(crate) enum GateTarget {
    /// Classic connection: one frame in, one frame out, closed after.
    OneShot {
        conn: TcpStream,
        /// Protocol version the client's frame arrived with.
        version: u8,
        /// Request id the client stamped (0 below v4).
        request_id: u32,
    },
    /// A request from a client v4 session; the reply releases its slot.
    Session { shared: Arc<GateSessionShared>, request_id: u32 },
}

impl GateTarget {
    /// Deliver the reply frame, version-negotiated for the client.
    pub(crate) fn respond(self, frame: Frame) {
        match self {
            GateTarget::OneShot { mut conn, version, request_id } => {
                let version = version.min(frame.version);
                let _ =
                    write_frame(&mut conn, &frame.with_request(request_id).with_version(version));
            }
            GateTarget::Session { shared, request_id } => {
                shared.send_final_frame(request_id, frame);
            }
        }
    }
}

/// One accepted, routable request waiting for a forwarding worker.
pub(crate) struct GateJob {
    pub(crate) target: GateTarget,
    /// The client's frame, for verbatim relay to one-shot backends.
    pub(crate) frame: Frame,
    /// The decoded request, for typed forwarding over backend sessions.
    pub(crate) request: Request,
    /// Shard key (ModelKey canonical form, or `trace:<key>`).
    pub(crate) key: String,
    pub(crate) accepted: Instant,
}

/// Everything the acceptor, workers, session readers, and prober share.
pub(crate) struct GateState {
    pub(crate) ring: HashRing,
    pub(crate) health: Health,
    pub(crate) pool: SessionPool,
    pub(crate) stats: GateStats,
    started: Instant,
    pub(crate) queue: BoundedQueue<GateJob>,
    /// One act-client per backend, probe-timeout-configured, for health
    /// probes and STATUS aggregation.
    probe_clients: Vec<Client>,
}

impl GateState {
    /// One STATUS probe of backend `i`, updating health marks and the
    /// session pool. Returns the status on success; a backend that
    /// answers *something* — even not a STATUS reply — is alive.
    pub(crate) fn probe(&self, i: usize) -> Option<ServerStatus> {
        match self.probe_clients[i].status() {
            Ok(status) => {
                self.stats.probes_ok.inc();
                self.note_backend_up(i);
                self.pool.refill(i);
                Some(status)
            }
            Err(e @ ActError::Io { .. }) => {
                self.stats.probes_failed.inc();
                self.note_backend_down(i, &e.to_string());
                None
            }
            Err(_) => {
                // It answered, just not with STATUS (a stub, something
                // very old). Alive is alive; there's no fleet data in it.
                self.stats.probes_ok.inc();
                self.note_backend_up(i);
                self.pool.refill(i);
                Some(ServerStatus { text: String::new(), metrics: None })
            }
        }
    }

    pub(crate) fn note_backend_up(&self, i: usize) {
        if self.health.note_success(i) {
            events().emit(
                Level::Info,
                "gate.up",
                format!("backend {i} ({}) marked up", self.pool.addrs()[i]),
            );
        }
    }

    pub(crate) fn note_backend_down(&self, i: usize, why: &str) {
        self.stats.failures_by[i].inc();
        self.pool.clear(i);
        if self.health.note_failure(i) {
            events().emit(
                Level::Warn,
                "gate.down",
                format!("backend {i} ({}) marked down: {why}", self.pool.addrs()[i]),
            );
        }
    }

    /// One request/reply exchange with backend `i`: over a pooled session
    /// when the backend speaks v4 (a dead pooled session gets one
    /// fresh-session retry before the failure counts against the
    /// backend), verbatim one-shot otherwise.
    fn attempt(&self, i: usize, frame: &Frame, request: &Request) -> Result<Frame, ClientError> {
        match self.pool.link(i)? {
            BackendLink::Session(session) => match session.call(request).and_then(|p| p.wait()) {
                Ok(reply) => Ok(reply.to_frame()),
                Err(ClientError::Io(_)) => {
                    self.pool.discard(i, &session);
                    match self.pool.link(i)? {
                        BackendLink::Session(fresh) => {
                            let reply = fresh.call(request).and_then(|p| p.wait())?;
                            Ok(reply.to_frame())
                        }
                        BackendLink::OneShot => self.one_shot_attempt(i, frame),
                    }
                }
                Err(e) => Err(e),
            },
            BackendLink::OneShot => self.one_shot_attempt(i, frame),
        }
    }

    /// The classic exchange: fresh connection, client's frame relayed
    /// verbatim (modulo version clamp), one reply frame back.
    fn one_shot_attempt(&self, i: usize, frame: &Frame) -> Result<Frame, ClientError> {
        let fwd = frame.clone().with_version(frame.version.min(VERSION));
        let mut conn = self.pool.connect(i)?;
        exchange(&mut conn, &fwd)
    }

    /// Route, forward with single-retry failover, and deliver the reply.
    pub(crate) fn forward(&self, job: GateJob) {
        let order = self.ring.route(&job.key);
        let mut candidates: Vec<usize> =
            order.iter().copied().filter(|&b| self.health.is_up(b)).collect();
        if candidates.is_empty() {
            // Every backend is marked down: try the ring order anyway —
            // a mark can be stale, and failing loudly beats guessing.
            candidates = order;
        }
        // The owner plus one failover hop; more would turn a fleet-wide
        // outage into a retry storm.
        candidates.truncate(2);

        let mut outcome = None;
        let mut last_busy = false;
        let mut last_err = String::new();
        for (hop, &b) in candidates.iter().enumerate() {
            if hop > 0 {
                if last_busy {
                    self.stats.busy_failovers.inc();
                } else {
                    self.stats.failovers.inc();
                }
                events().emit(
                    Level::Info,
                    "gate.failover",
                    format!("key {} failing over to backend {b}", job.key),
                );
            }
            match self.attempt(b, &job.frame, &job.request) {
                Ok(reply) if reply.kind == FrameKind::Busy => {
                    self.note_backend_up(b); // it answered; busy is healthy
                    last_busy = true;
                    continue;
                }
                Ok(reply) => {
                    self.note_backend_up(b);
                    self.stats.forwarded_by[b].inc();
                    self.stats.relayed.inc();
                    self.stats.service_us.observe(job.accepted.elapsed().as_micros() as u64);
                    outcome = Some(reply);
                    break;
                }
                Err(e) => {
                    self.note_backend_down(b, &e.to_string());
                    last_busy = false;
                    last_err = e.to_string();
                }
            }
        }
        let reply = match outcome {
            Some(frame) => frame,
            None if last_busy => Reply::Busy.to_frame(),
            None => {
                // Both candidates exhausted.
                self.stats.failed.inc();
                Reply::Error(format!("no backend could serve key {}: {last_err}", job.key))
                    .to_frame()
            }
        };
        job.target.respond(reply);
    }

    /// The aggregated `STATUS`: the gateway's own block, a fleet rollup
    /// summed across live backends (via `MetricsSnapshot::merge_sum`),
    /// and each backend's own status section. The returned snapshot
    /// namespaces the rollup under `fleet.` and each backend's metrics
    /// under `backendN.`.
    pub(crate) fn aggregated_status(&self) -> (String, MetricsSnapshot) {
        let uptime = self.started.elapsed();
        let queue_len = self.queue.len();
        let mut fleet = MetricsSnapshot::new();
        let mut sections = String::new();
        let mut per_backend = Vec::new();
        for i in 0..self.pool.addrs().len() {
            let addr = self.pool.addrs()[i].clone();
            match self.probe(i) {
                Some(ServerStatus { text, metrics: Some(bsnap) }) => {
                    fleet.merge_sum(&bsnap);
                    sections.push_str(&format!("-- backend {i} {addr}: up --\n{text}"));
                    per_backend.push((i, bsnap));
                }
                Some(_) => sections.push_str(&format!("-- backend {i} {addr}: up --\n")),
                None => sections.push_str(&format!("-- backend {i} {addr}: down --\n")),
            }
        }
        let up = self.health.up_count();
        let mut text = self.stats.render(uptime, queue_len, up, self.pool.addrs().len());
        let served = fleet.counter("requests_served").unwrap_or(0);
        let hits = fleet.counter("cache_memory_hits").unwrap_or(0)
            + fleet.counter("cache_disk_loads").unwrap_or(0)
            + fleet.counter("cache_store_loads").unwrap_or(0);
        let misses = fleet.counter("cache_trained").unwrap_or(0);
        text.push_str(&format!(
            "fleet_requests_served {served}\nfleet_cache_hits {hits}\nfleet_cache_misses {misses}\n"
        ));
        if hits + misses > 0 {
            text.push_str(&format!(
                "fleet_cache_hit_rate {:.1}%\n",
                100.0 * hits as f64 / (hits + misses) as f64
            ));
        }
        text.push_str(&sections);

        let mut snap = self.stats.snapshot(uptime, queue_len, up);
        snap.merge_prefixed("fleet", fleet);
        for (i, bsnap) in per_backend {
            snap.merge_prefixed(&format!("backend{i}"), bsnap);
        }
        (text, snap)
    }
}

fn exchange(conn: &mut TcpStream, frame: &Frame) -> Result<Frame, ClientError> {
    write_frame(&mut *conn, frame).map_err(ClientError::Io)?;
    Ok(read_frame(&mut *conn)?)
}

/// The shard key of a routable request. `STATUS`/`SHUTDOWN` have none
/// (the acceptor answers them itself), and neither do the session-control
/// and stream-continuation kinds (they never enter the forwarding queue).
pub(crate) fn route_key(request: &Request) -> Option<String> {
    match request {
        Request::Train(spec) | Request::Diagnose(spec, _) | Request::DiagnoseStart(spec) => Some(
            ModelKey::new(&spec.workload, spec.seq_len as usize, spec.hidden as usize, spec.seed)
                .canonical(),
        ),
        // Trace frames shard by corpus key so a TRACE_GET finds the
        // backend its TRACE_PUT landed on — streamed or not.
        Request::TracePut { key, .. }
        | Request::TraceGet { key }
        | Request::TracePutStart { key, .. } => Some(format!("trace:{key}")),
        Request::Status
        | Request::Shutdown
        | Request::Hello { .. }
        | Request::StreamChunk(_)
        | Request::StreamEnd { .. } => None,
    }
}

/// A running gateway. Like [`act_serve::Server`], dropping the handle does
/// not stop it; call [`Gateway::shutdown`] then [`Gateway::join`].
pub struct Gateway {
    state: Arc<GateState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: SocketAddr,
}

impl Gateway {
    /// Bind the listener and spawn the acceptor, forwarding workers, and
    /// the health prober.
    ///
    /// # Errors
    ///
    /// Fails when `backends` is empty, a count is zero, or the bind fails.
    pub fn start(cfg: GateConfig) -> io::Result<Gateway> {
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidInput, what.to_string());
        if cfg.backends.is_empty() {
            return Err(invalid("at least one backend is required"));
        }
        if cfg.workers == 0 {
            return Err(invalid("workers must be >= 1"));
        }
        if cfg.queue_depth == 0 {
            return Err(invalid("queue depth must be >= 1"));
        }
        if cfg.vnodes == 0 {
            return Err(invalid("vnodes must be >= 1"));
        }

        let n = cfg.backends.len();
        let probe_clients = cfg
            .backends
            .iter()
            .map(|addr| {
                Client::builder()
                    .addr(addr.clone())
                    .timeouts(cfg.probe_timeout, cfg.probe_timeout)
                    .build()
                    .expect("endpoint is set")
            })
            .collect();
        let state = Arc::new(GateState {
            ring: HashRing::new(n, cfg.vnodes),
            health: Health::new(n, 0x6761_7465), // "gate"
            pool: SessionPool::new(
                cfg.backends.clone(),
                cfg.pool_capacity,
                cfg.connect_timeout,
                cfg.backend_timeout,
            ),
            stats: GateStats::new(n),
            started: Instant::now(),
            queue: BoundedQueue::new(cfg.queue_depth),
            probe_clients,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = listener.local_addr()?;

        {
            let state = state.clone();
            let shutdown = shutdown.clone();
            let io_timeout = cfg.io_timeout;
            threads.push(std::thread::Builder::new().name("act-gate-accept".into()).spawn(
                move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((conn, _)) => handle_connection(conn, &state, &shutdown, io_timeout),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL)
                            }
                            Err(_) => std::thread::sleep(POLL),
                        }
                    }
                },
            )?);
        }
        for i in 0..cfg.workers {
            let state = state.clone();
            threads.push(std::thread::Builder::new().name(format!("act-gate-worker-{i}")).spawn(
                move || {
                    while let Some(job) = state.queue.pop() {
                        state.forward(job);
                    }
                },
            )?);
        }
        {
            let state = state.clone();
            let shutdown = shutdown.clone();
            let interval = cfg.probe_interval;
            threads.push(std::thread::Builder::new().name("act-gate-probe".into()).spawn(
                move || {
                    let n = state.pool.addrs().len();
                    let mut last = vec![Instant::now(); n];
                    for i in 0..n {
                        state.probe(i); // initial sweep warms pools + marks
                    }
                    while !shutdown.load(Ordering::SeqCst) {
                        for i in 0..n {
                            let due = if state.health.is_up(i) {
                                last[i].elapsed() >= interval
                            } else {
                                state.health.probe_due(i)
                            };
                            if due {
                                last[i] = Instant::now();
                                state.probe(i);
                            }
                        }
                        std::thread::sleep(POLL);
                    }
                },
            )?);
        }

        events().emit(
            Level::Info,
            "gate.start",
            format!(
                "gateway up on {tcp_addr}: {} backends, {} vnodes, {} workers, queue depth {}",
                n, cfg.vnodes, cfg.workers, cfg.queue_depth
            ),
        );
        Ok(Gateway { state, shutdown, threads, tcp_addr })
    }

    /// The bound listen address (with the real port when `:0` was asked).
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Live gateway counters.
    pub fn stats(&self) -> &GateStats {
        &self.state.stats
    }

    /// The consistent-hash ring (tests predict ownership through this).
    pub fn ring(&self) -> &HashRing {
        &self.state.ring
    }

    /// Backends currently marked up.
    pub fn backends_up(&self) -> usize {
        self.state.health.up_count()
    }

    /// The current aggregated `STATUS` text.
    pub fn status_text(&self) -> String {
        self.state.aggregated_status().0
    }

    /// Begin graceful drain: stop accepting, let workers finish queued
    /// forwards. Idempotent; also triggered by a `SHUTDOWN` frame. The
    /// backends are *not* shut down — they outlive their gateway.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
    }

    /// Whether a drain has started.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Wait for the drain to finish (every queued request answered).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Read one client frame and answer inline, enqueue, reject, or — for a
/// v4 `HELLO` — promote the connection to a multiplexed session on its
/// own reader thread.
fn handle_connection(
    mut conn: TcpStream,
    state: &Arc<GateState>,
    shutdown: &Arc<AtomicBool>,
    io_timeout: Duration,
) {
    let _ = conn.set_read_timeout(Some(io_timeout));
    let _ = conn.set_write_timeout(Some(io_timeout));
    let frame = match read_frame(&mut conn) {
        Ok(f) => f,
        Err(e) => {
            state.stats.proto_errors.inc();
            let reply = Reply::Error(format!("bad request: {e}"));
            let _ = write_frame(&mut conn, &reply.to_frame().with_version(VERSION));
            return;
        }
    };
    let version = frame.version;
    let request_id = frame.request_id;
    let request = match Request::from_frame(&frame) {
        Ok(r) => r,
        Err(e) => {
            state.stats.proto_errors.inc();
            let reply = Reply::Error(format!("bad request: {e}"));
            let _ = write_frame(
                &mut conn,
                &reply.to_frame().with_request(request_id).with_version(version),
            );
            return;
        }
    };
    let answer = |mut conn: TcpStream, reply: &Reply| {
        let _ = write_frame(
            &mut conn,
            &reply.to_frame().with_request(request_id).with_version(version),
        );
    };
    match request {
        // A v4 connection that opens with HELLO becomes a session; the
        // reader thread owns the connection from here.
        Request::Hello { window } if version >= SESSION_VERSION => {
            let state = state.clone();
            let shutdown = shutdown.clone();
            let spawned =
                std::thread::Builder::new().name("act-gate-session".into()).spawn(move || {
                    run_gate_session(conn, request_id, window, state, shutdown, io_timeout)
                });
            if spawned.is_err() {
                events().emit(Level::Warn, "gate.session", "failed to spawn session thread");
            }
        }
        Request::Hello { .. } => {
            answer(conn, &Reply::Error("HELLO requires protocol v4".into()));
        }
        // The stream kinds only exist inside a session.
        Request::TracePutStart { .. } | Request::DiagnoseStart(_) => {
            answer(
                conn,
                &Reply::Error("streaming uploads require a v4 session (send HELLO first)".into()),
            );
        }
        Request::StreamChunk(_) | Request::StreamEnd { .. } => {
            state.stats.proto_errors.inc();
            answer(conn, &Reply::Error("stream frame outside an open stream".into()));
        }
        Request::Status => {
            let (text, snap) = state.aggregated_status();
            let reply = if version >= 2 {
                Reply::StatusMetrics(text, snap)
            } else {
                Reply::StatusText(text)
            };
            answer(conn, &reply);
        }
        Request::Shutdown => {
            answer(conn, &Reply::Bye);
            events().emit(Level::Info, "gate.shutdown", "shutdown requested; draining");
            shutdown.store(true, Ordering::SeqCst);
            state.queue.close();
        }
        req @ (Request::Train(_)
        | Request::Diagnose(..)
        | Request::TracePut { .. }
        | Request::TraceGet { .. }) => {
            let key = route_key(&req).expect("routable requests carry a shard key");
            let job = GateJob {
                target: GateTarget::OneShot { conn, version, request_id },
                frame,
                request: req,
                key,
                accepted: Instant::now(),
            };
            match state.queue.try_push(job) {
                Ok(()) => state.stats.routed.inc(),
                Err(job) => {
                    state.stats.rejected_busy.inc();
                    job.target.respond(Reply::Busy.to_frame());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_rejects_degenerate_configs() {
        let bad = |f: fn(&mut GateConfig)| {
            let mut cfg =
                GateConfig { backends: vec!["127.0.0.1:1".into()], ..GateConfig::default() };
            f(&mut cfg);
            Gateway::start(cfg).err().expect("config must be rejected")
        };
        assert!(bad(|c| c.backends.clear()).to_string().contains("backend"));
        assert!(bad(|c| c.workers = 0).to_string().contains("workers"));
        assert!(bad(|c| c.queue_depth = 0).to_string().contains("queue depth"));
        assert!(bad(|c| c.vnodes = 0).to_string().contains("vnodes"));
    }

    #[test]
    fn route_keys_shard_models_and_traces() {
        let spec = act_serve::ModelSpec::new("apache");
        assert_eq!(route_key(&Request::Train(spec.clone())).unwrap(), "apache-n2-h10-s0");
        assert_eq!(
            route_key(&Request::Diagnose(spec.clone(), Vec::new())).unwrap(),
            "apache-n2-h10-s0",
            "TRAIN and DIAGNOSE of one key share a backend"
        );
        assert_eq!(
            route_key(&Request::DiagnoseStart(spec)).unwrap(),
            "apache-n2-h10-s0",
            "a streamed DIAGNOSE lands where the one-frame one would"
        );
        assert_eq!(route_key(&Request::TraceGet { key: "seq-0".into() }).unwrap(), "trace:seq-0");
        assert_eq!(
            route_key(&Request::TracePutStart { key: "seq-0".into(), workload: "seq".into() })
                .unwrap(),
            "trace:seq-0",
            "a streamed TRACE_PUT lands where TRACE_GET will look"
        );
        assert!(route_key(&Request::Status).is_none());
        assert!(route_key(&Request::Shutdown).is_none());
        assert!(route_key(&Request::Hello { window: 4 }).is_none());
        assert!(route_key(&Request::StreamChunk(Vec::new())).is_none());
        assert!(route_key(&Request::StreamEnd { crc32: 0, total_len: 0 }).is_none());
    }

    #[test]
    fn stats_render_is_grep_stable() {
        let stats = GateStats::new(2);
        stats.routed.inc();
        stats.relayed.inc();
        let text = stats.render(Duration::from_secs(1), 0, 2, 2);
        for needle in [
            "act-gate status",
            "backends 2",
            "backends_up 2",
            "requests_routed 1",
            "replies_relayed 1",
            "failovers 0",
            "requests_rejected_busy 0",
            "streams_relayed 0",
            "sessions_open 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
