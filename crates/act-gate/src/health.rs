//! Per-backend health state: up/down marks with exponential-backoff
//! probing.
//!
//! Every forwarding failure marks a backend down and schedules its next
//! probe with exponential backoff (base doubling per consecutive failure,
//! capped, jittered through `act-rng` so a fleet of gateways does not
//! probe in lockstep). A successful probe — or any successful forward —
//! marks it up again and resets the backoff. The router consults
//! [`Health::is_up`] to skip dead backends without burning its failover
//! retry on them.

use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// First retry delay after a failure.
const BACKOFF_BASE: Duration = Duration::from_millis(200);
/// Backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(8);

struct BackendState {
    up: bool,
    /// Consecutive failures since the last success.
    failures: u32,
    /// When a down backend may be probed again.
    retry_at: Instant,
    rng: StdRng,
}

/// Health marks for a fixed set of backends.
pub struct Health {
    states: Vec<Mutex<BackendState>>,
}

impl Health {
    /// All `n` backends start up (the first failed forward corrects an
    /// optimistic mark within one request). `seed` keys the probe jitter.
    pub fn new(n: usize, seed: u64) -> Health {
        Health {
            states: (0..n)
                .map(|i| {
                    Mutex::new(BackendState {
                        up: true,
                        failures: 0,
                        retry_at: Instant::now(),
                        rng: StdRng::seed_from_u64(seed.wrapping_add(i as u64)),
                    })
                })
                .collect(),
        }
    }

    /// Whether backend `i` is currently marked up.
    pub fn is_up(&self, i: usize) -> bool {
        self.states[i].lock().expect("health lock").up
    }

    /// Backends currently marked up.
    pub fn up_count(&self) -> usize {
        self.states.iter().filter(|s| s.lock().expect("health lock").up).count()
    }

    /// Record a successful exchange with backend `i`; returns `true` when
    /// this marked a down backend up again.
    pub fn note_success(&self, i: usize) -> bool {
        let mut s = self.states[i].lock().expect("health lock");
        let newly_up = !s.up;
        s.up = true;
        s.failures = 0;
        newly_up
    }

    /// Record a failed exchange with backend `i`: mark it down and push
    /// its next probe out by a jittered exponential backoff. Returns
    /// `true` when this marked an up backend down.
    pub fn note_failure(&self, i: usize) -> bool {
        let mut s = self.states[i].lock().expect("health lock");
        let newly_down = s.up;
        s.up = false;
        s.failures = s.failures.saturating_add(1);
        let base = BACKOFF_BASE
            .saturating_mul(1u32 << (s.failures - 1).min(10))
            .min(BACKOFF_CAP)
            .as_millis() as u64;
        let jittered = base / 2 + s.rng.gen_range(0..base.max(1));
        s.retry_at = Instant::now() + Duration::from_millis(jittered);
        newly_down
    }

    /// Whether a down backend's backoff has elapsed (a probe is due). Up
    /// backends return `false`; their probing is the caller's periodic
    /// schedule, not backoff-driven.
    pub fn probe_due(&self, i: usize) -> bool {
        let s = self.states[i].lock().expect("health lock");
        !s.up && Instant::now() >= s.retry_at
    }

    /// The backoff currently scheduled for backend `i` (zero when up).
    /// Test hook: exposes the exponential growth without sleeping.
    pub fn backoff_remaining(&self, i: usize) -> Duration {
        let s = self.states[i].lock().expect("health lock");
        if s.up {
            Duration::ZERO
        } else {
            s.retry_at.saturating_duration_since(Instant::now())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_up_and_marks_transition_once() {
        let h = Health::new(2, 0);
        assert!(h.is_up(0) && h.is_up(1));
        assert_eq!(h.up_count(), 2);
        assert!(h.note_failure(0), "first failure is the down transition");
        assert!(!h.note_failure(0), "already down");
        assert_eq!(h.up_count(), 1);
        assert!(h.note_success(0), "success is the up transition");
        assert!(!h.note_success(0), "already up");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let h = Health::new(1, 42);
        let mut last = Duration::ZERO;
        for round in 0..4 {
            h.note_failure(0);
            let now = h.backoff_remaining(0);
            assert!(now > last / 2, "round {round}: backoff {now:?} did not grow past {last:?}");
            last = now;
        }
        for _ in 0..20 {
            h.note_failure(0);
        }
        assert!(
            h.backoff_remaining(0) <= BACKOFF_CAP.mul_f64(1.5),
            "backoff escaped the jittered cap: {:?}",
            h.backoff_remaining(0)
        );
    }

    #[test]
    fn probe_due_waits_for_backoff_and_success_resets_it() {
        let h = Health::new(1, 7);
        assert!(!h.probe_due(0), "up backends are not backoff-probed");
        h.note_failure(0);
        assert!(!h.probe_due(0), "probe not due inside the backoff window");
        h.note_success(0);
        h.note_failure(0);
        let first_again = h.backoff_remaining(0);
        // Reset to the base window: a success cleared the failure streak.
        assert!(first_again < BACKOFF_BASE.mul_f64(1.6), "streak not reset: {first_again:?}");
    }
}
