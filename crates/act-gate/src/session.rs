//! Client-facing protocol-v4 sessions: the gateway end of multiplexed
//! pipelining, plus the chunked-stream relay.
//!
//! A client that opens with `HELLO` gets its own session reader thread
//! here, mirroring act-serve's: the reader demultiplexes frames, claims a
//! window slot per routable request, and enqueues each one as an ordinary
//! forwarding job — so requests from one session fail over *independently*
//! (each picks its own backend by shard key) and replies go back out of
//! order, tagged with the client's request ids.
//!
//! Chunked uploads cannot ride the shared backend sessions (a backend
//! allows one inbound stream per session), so each `TRACE_PUT_START` /
//! `DIAGNOSE_START` opens a dedicated backend connection, handshakes a
//! width-1 session on it, and relays chunk frames as they arrive. Failover
//! happens only before the opener is forwarded; once chunks have flowed,
//! a backend failure is an error — half a stream must never be replayed.
//! After `STREAM_END` a one-off thread waits for the backend's verdict so
//! a slow ingest cannot stall the session's other pipelined requests.

use crate::gateway::{route_key, GateJob, GateState, GateTarget};
use act_obs::{events, Level};
use act_serve::proto::{read_frame, write_frame, Frame, VERSION};
use act_serve::{Reply, Request};
use std::io::{self, Read};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cap on the in-flight window granted to one client session.
pub(crate) const GATE_SESSION_WINDOW: u32 = 32;

/// The request id stream frames travel under on their dedicated backend
/// connection (a width-1 session, so any fixed nonzero id works).
const BACKEND_STREAM_ID: u32 = 1;

/// How long the session reader waits for a frame's first byte before
/// re-checking shutdown.
const SESSION_POLL: Duration = Duration::from_millis(25);

/// The half of a client session shared between its reader thread and the
/// forwarding workers answering its requests: the write side of the
/// socket plus the in-flight account. Frames go out whole under the
/// writer lock, so replies from concurrent workers never interleave.
pub(crate) struct GateSessionShared {
    writer: Mutex<TcpStream>,
    window: u32,
    in_flight: AtomicU32,
}

impl GateSessionShared {
    /// Write one reply, tagged with the request id it answers.
    pub(crate) fn send(&self, request_id: u32, reply: &Reply) {
        self.send_frame(request_id, reply.to_frame());
    }

    /// Write a reply frame (possibly relayed verbatim from a backend),
    /// restamped with the client's request id at the session version.
    pub(crate) fn send_frame(&self, request_id: u32, frame: Frame) {
        let frame = frame.with_request(request_id).with_version(VERSION);
        let mut w = self.writer.lock().expect("gate session writer lock");
        // A vanished client is noticed by the session reader; move on.
        let _ = write_frame(&mut *w, &frame);
    }

    /// Claim one in-flight slot; `false` means the window is exhausted
    /// and the request must be answered `BUSY`. Only the session reader
    /// calls this, so load-then-add cannot race another claimer.
    fn begin_request(&self) -> bool {
        if self.in_flight.load(Ordering::SeqCst) >= self.window {
            return false;
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// Release a claimed slot without replying (client disconnected).
    pub(crate) fn finish_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Send the final reply for a claimed request. The slot is released
    /// *before* the write — the reply is the client's signal that the
    /// slot is free, so a pipelined client firing its next request the
    /// moment a reply lands must never race a late decrement into `BUSY`.
    pub(crate) fn send_final(&self, request_id: u32, reply: &Reply) {
        self.finish_request();
        self.send(request_id, reply);
    }

    /// [`GateSessionShared::send_final`] for an already-encoded frame.
    pub(crate) fn send_final_frame(&self, request_id: u32, frame: Frame) {
        self.finish_request();
        self.send_frame(request_id, frame);
    }
}

/// One in-progress chunked upload being relayed to a backend over its own
/// dedicated width-1 session.
struct StreamRelay {
    backend: TcpStream,
    backend_index: usize,
    client_request_id: u32,
}

/// Drive one client session: ack the `HELLO`, then demultiplex frames
/// until the client closes, the gateway drains, or the stream desyncs.
pub(crate) fn run_gate_session(
    mut conn: TcpStream,
    hello_id: u32,
    asked: u32,
    state: Arc<GateState>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
) {
    let writer = match conn.try_clone() {
        Ok(w) => w,
        Err(e) => {
            let reply = Reply::Error(format!("session setup failed: {e}"));
            let _ = write_frame(
                &mut conn,
                &reply.to_frame().with_request(hello_id).with_version(VERSION),
            );
            return;
        }
    };
    let granted =
        if asked == 0 { GATE_SESSION_WINDOW } else { asked.min(GATE_SESSION_WINDOW) }.max(1);
    let shared = Arc::new(GateSessionShared {
        writer: Mutex::new(writer),
        window: granted,
        in_flight: AtomicU32::new(0),
    });
    shared.send(hello_id, &Reply::HelloAck { window: granted });
    state.stats.sessions_open.add(1);
    let mut relay: Option<StreamRelay> = None;

    'session: while !shutdown.load(Ordering::SeqCst) {
        // Wait for the next frame's first byte with a short timeout (an
        // all-or-nothing 1-byte read), so idle sessions notice shutdown
        // without ever stranding a partial header.
        let _ = conn.set_read_timeout(Some(SESSION_POLL));
        let mut first = [0u8; 1];
        match conn.read(&mut first) {
            Ok(0) => break 'session, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue 'session;
            }
            Err(_) => break 'session,
        }
        // A frame has started: the rest must arrive within io_timeout.
        let _ = conn.set_read_timeout(Some(io_timeout));
        let frame = match read_frame((&first[..]).chain(&mut conn)) {
            Ok(f) => f,
            Err(e) => {
                // The stream position is unknown; the session cannot
                // continue. Best-effort error, then close.
                state.stats.proto_errors.inc();
                shared.send(0, &Reply::Error(format!("bad frame: {e}")));
                break 'session;
            }
        };
        let request_id = frame.request_id;
        let request = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(e) => {
                // Framing is intact — only this request is malformed.
                state.stats.proto_errors.inc();
                shared.send(request_id, &Reply::Error(format!("bad request: {e}")));
                continue 'session;
            }
        };
        match request {
            Request::Hello { .. } => {
                shared.send(request_id, &Reply::Error("session already open".into()));
            }
            Request::Status => {
                let (text, snap) = state.aggregated_status();
                shared.send(request_id, &Reply::StatusMetrics(text, snap));
            }
            Request::Shutdown => {
                shared.send(request_id, &Reply::Bye);
                events().emit(Level::Info, "gate.shutdown", "shutdown requested; draining");
                shutdown.store(true, Ordering::SeqCst);
                state.queue.close();
                break 'session;
            }
            Request::TracePutStart { .. } | Request::DiagnoseStart(_) => {
                if relay.is_some() {
                    // One inbound stream per session, same as act-serve.
                    shared.send(request_id, &Reply::Busy);
                    continue 'session;
                }
                if !shared.begin_request() {
                    shared.send(request_id, &Reply::Busy);
                    continue 'session;
                }
                let key = route_key(&request).expect("stream openers carry a shard key");
                match open_relay(&state, &frame, &key) {
                    Ok(r) => relay = Some(r),
                    Err(msg) => {
                        state.stats.failed.inc();
                        shared.send_final(request_id, &Reply::Error(msg));
                    }
                }
            }
            Request::StreamChunk(_) | Request::StreamEnd { .. } => {
                let Some(active) = relay.as_mut() else {
                    state.stats.proto_errors.inc();
                    shared.send(
                        request_id,
                        &Reply::Error("stream frame outside an open stream".into()),
                    );
                    continue 'session;
                };
                let fwd = frame.clone().with_request(BACKEND_STREAM_ID).with_version(VERSION);
                if let Err(e) = write_frame(&mut active.backend, &fwd) {
                    // Chunks have flowed: no failover, no replay.
                    let dead = relay.take().expect("relay checked above");
                    state.note_backend_down(dead.backend_index, &e.to_string());
                    state.stats.failed.inc();
                    shared.send_final(
                        dead.client_request_id,
                        &Reply::Error(format!("backend lost mid-stream: {e}")),
                    );
                    continue 'session;
                }
                if matches!(request, Request::StreamChunk(_)) {
                    state.stats.stream_chunks_relayed.inc();
                    continue 'session;
                }
                // STREAM_END went through: the backend's one reply settles
                // the stream. A one-off thread waits for it so a slow
                // ingest cannot stall this session's other requests.
                let done = relay.take().expect("relay checked above");
                let spawned = std::thread::Builder::new().name("act-gate-stream".into()).spawn({
                    let shared = shared.clone();
                    let state = state.clone();
                    move || finish_relay(done, shared, state)
                });
                if spawned.is_err() {
                    events().emit(Level::Warn, "gate.stream", "failed to spawn stream finisher");
                }
            }
            req @ (Request::Train(_)
            | Request::Diagnose(..)
            | Request::TracePut { .. }
            | Request::TraceGet { .. }) => {
                if !shared.begin_request() {
                    shared.send(request_id, &Reply::Busy);
                    continue 'session;
                }
                let key = route_key(&req).expect("routable requests carry a shard key");
                let job = GateJob {
                    target: GateTarget::Session { shared: shared.clone(), request_id },
                    frame,
                    request: req,
                    key,
                    accepted: Instant::now(),
                };
                match state.queue.try_push(job) {
                    Ok(()) => state.stats.routed.inc(),
                    Err(job) => {
                        state.stats.rejected_busy.inc();
                        job.target.respond(Reply::Busy.to_frame());
                    }
                }
            }
        }
    }
    if relay.is_some() {
        // Client vanished mid-stream. Dropping the backend connection
        // makes the backend abort its half-written stream; the window
        // slot just needs handing back.
        shared.finish_request();
    }
    state.stats.sessions_open.add(-1);
}

/// Pick a backend for a new stream (ring order, one failover hop — but
/// only here, before any chunk has flowed), handshake a dedicated width-1
/// session, and forward the opener frame.
fn open_relay(state: &GateState, frame: &Frame, key: &str) -> Result<StreamRelay, String> {
    let order = state.ring.route(key);
    let mut candidates: Vec<usize> =
        order.iter().copied().filter(|&b| state.health.is_up(b)).collect();
    if candidates.is_empty() {
        candidates = order;
    }
    candidates.truncate(2);

    let mut last_err = String::from("no backends configured");
    for &b in &candidates {
        let mut backend = match stream_handshake(state, b) {
            Ok(conn) => conn,
            Err(HandshakeFailure::Transport(why)) => {
                state.note_backend_down(b, &why);
                last_err = why;
                continue;
            }
            Err(HandshakeFailure::NoSessions) => {
                // Alive, just old: it can never take a stream.
                last_err = format!("backend {b} does not speak v4 streaming");
                continue;
            }
        };
        let fwd = frame.clone().with_request(BACKEND_STREAM_ID).with_version(VERSION);
        match write_frame(&mut backend, &fwd) {
            Ok(()) => {
                state.note_backend_up(b);
                return Ok(StreamRelay {
                    backend,
                    backend_index: b,
                    client_request_id: frame.request_id,
                });
            }
            Err(e) => {
                state.note_backend_down(b, &e.to_string());
                last_err = e.to_string();
            }
        }
    }
    Err(format!("no backend could accept a stream for key {key}: {last_err}"))
}

enum HandshakeFailure {
    Transport(String),
    NoSessions,
}

/// Connect to backend `b` and negotiate the width-1 session a stream
/// relay rides on.
fn stream_handshake(state: &GateState, b: usize) -> Result<TcpStream, HandshakeFailure> {
    let transport = |e: &dyn std::fmt::Display| HandshakeFailure::Transport(e.to_string());
    let mut conn = state.pool.connect(b).map_err(|e| transport(&e))?;
    let hello = Request::Hello { window: 1 }.to_frame().with_request(0);
    write_frame(&mut conn, &hello).map_err(|e| transport(&e))?;
    let ack = read_frame(&mut conn).map_err(|e| transport(&e))?;
    match Reply::from_frame(&ack) {
        Ok(Reply::HelloAck { .. }) => Ok(conn),
        Ok(_) => Err(HandshakeFailure::NoSessions),
        Err(e) => Err(transport(&e)),
    }
}

/// Wait for the backend's verdict on a sealed stream and forward it to
/// the client under its original request id.
fn finish_relay(mut done: StreamRelay, shared: Arc<GateSessionShared>, state: Arc<GateState>) {
    match read_frame(&mut done.backend) {
        Ok(reply) => {
            state.note_backend_up(done.backend_index);
            state.stats.forwarded_by[done.backend_index].inc();
            state.stats.relayed.inc();
            state.stats.streams_relayed.inc();
            shared.send_final_frame(done.client_request_id, reply);
        }
        Err(e) => {
            state.note_backend_down(done.backend_index, &e.to_string());
            state.stats.failed.inc();
            shared.send_final(
                done.client_request_id,
                &Reply::Error(format!("backend lost mid-stream: {e}")),
            );
        }
    }
}
