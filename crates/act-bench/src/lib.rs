//! # act-bench — the experiment harness
//!
//! Shared plumbing for the binaries that regenerate every table and figure
//! of the paper's evaluation (see `src/bin/`), plus Criterion
//! micro-benchmarks (see `benches/`).
//!
//! The central flow, mirroring the paper's methodology:
//!
//! 1. [`collect_clean_traces`] — run a workload's *clean* configuration over
//!    several input/interleaving seeds, keeping traces of runs its oracle
//!    accepts (ACT trains only on correct executions).
//! 2. [`train_workload`] — offline training + topology search.
//! 3. [`find_act_failure`] — run the *triggering* configuration with ACT
//!    modules attached until a failure occurs (one production failure; it
//!    is never reproduced for ACT's diagnosis).
//! 4. [`diagnose_workload`] — build the Correct Set from fresh correct
//!    runs, prune + rank, and score against the workload's ground truth.
//! 5. [`aviso_diagnose`] / [`pbi_diagnose`] — the baselines, each with its
//!    own methodology (Aviso reproduces failures; PBI uses 15 correct + 1
//!    failing run).

pub mod campaign;
pub mod perf;

use act_baselines::aviso::Aviso;
use act_baselines::pbi;
use act_core::diagnosis::{diagnose, run_with_act, ActRun};
use act_core::offline::{offline_train, TrainedAct};
use act_core::weights::SharedWeightStore;
use act_core::ActConfig;
use act_sim::config::MachineConfig;
use act_sim::machine::Machine;
use act_trace::collector::TraceCollector;
use act_trace::event::Trace;
use act_workloads::spec::{BuiltWorkload, Workload, NORM_CODE_LEN};

/// Machine configuration used by the experiments: the paper's Table III
/// defaults plus interleaving jitter so seeded runs differ.
pub fn machine_cfg(seed: u64) -> MachineConfig {
    MachineConfig { seed, jitter_ppm: 10_000, ..Default::default() }
}

/// ACT configuration used by the experiments (paper defaults, with a
/// trimmed topology search so the full table suite runs in minutes).
pub fn act_cfg() -> ActConfig {
    let mut cfg = ActConfig::default();
    // Sequence context is what distinguishes "same dependence, wrong
    // context" bugs (gzip, seq, apache); N = 1 can win error ties only
    // because it cannot even express them, so the harness pins N = 2.
    cfg.search.seq_lens = vec![2];
    cfg.search.hidden_sizes = vec![10];
    cfg.train.max_epochs = 300;
    cfg.train.learning_rate = 0.5;
    cfg
}

/// The code length used to normalize `w`'s instruction addresses: the
/// workload's fixed override if it has one, else the built program length.
pub fn norm_of(w: &dyn Workload) -> usize {
    w.norm_code_len().unwrap_or_else(|| w.build(&w.default_params()).program.code_len())
}

/// [`act_cfg`] with the normalization length pinned for `w`.
pub fn act_cfg_for(w: &dyn Workload) -> ActConfig {
    let mut cfg = act_cfg();
    cfg.norm_code_len = norm_of(w);
    cfg
}

/// Run the workload's clean configuration once per seed (seed drives both
/// the inputs and the interleaving) and keep correct runs' traces.
pub fn collect_clean_traces(w: &dyn Workload, seeds: impl Iterator<Item = u64>) -> Vec<Trace> {
    let mut traces = Vec::new();
    for seed in seeds {
        let built = w.build(&w.default_params().with_seed(seed));
        let mut collector = TraceCollector::new(NORM_CODE_LEN);
        let mut machine = Machine::new(&built.program, machine_cfg(seed));
        let outcome = machine.run_observed(&mut collector);
        if built.is_correct(&outcome) {
            traces.push(collector.into_trace());
        }
    }
    traces
}

/// Offline-train ACT for a workload from `n_traces` clean runs.
///
/// # Panics
///
/// Panics if no clean run was correct (a workload bug).
pub fn train_workload(w: &dyn Workload, n_traces: usize, cfg: &ActConfig) -> TrainedAct {
    let traces = collect_clean_traces(w, 0..n_traces as u64 * 2)
        .into_iter()
        .take(n_traces)
        .collect::<Vec<_>>();
    assert!(!traces.is_empty(), "{}: no correct training runs", w.name());
    offline_train(norm_of(w), &traces, cfg)
}

/// A production failure observed under ACT.
pub struct ActFailure {
    /// The monitored run (debug buffers, stats).
    pub run: ActRun,
    /// The workload build that failed.
    pub built: BuiltWorkload,
    /// Machine seeds tried before the failure manifested.
    pub attempts: u64,
}

/// Run the triggering configuration with ACT attached until it fails.
/// Returns `None` if no failure manifests within `max_tries` seeds.
pub fn find_act_failure(
    w: &dyn Workload,
    store: &SharedWeightStore,
    cfg: &ActConfig,
    max_tries: u64,
) -> Option<ActFailure> {
    for seed in 0..max_tries {
        let built = w.build(&w.default_params().with_seed(seed).triggered());
        let run = run_with_act(&built.program, machine_cfg(seed), cfg, store);
        if built.is_failure(&run.outcome) {
            return Some(ActFailure { run, built, attempts: seed + 1 });
        }
    }
    None
}

/// One Table V / Table VI row for ACT.
#[derive(Debug, Clone)]
pub struct ActRow {
    /// Workload name.
    pub name: String,
    /// Failure status ("crash" or "completed"-with-wrong-output).
    pub status: String,
    /// Position of the buggy sequence from the newest end of the merged
    /// debug buffer (the paper's "Debug Buf. Pos.").
    pub debug_pos: Option<usize>,
    /// Percentage of distinct logged sequences pruned by the Correct Set.
    pub filter_pct: f64,
    /// 1-based rank of the first candidate containing the buggy dependence.
    pub rank: Option<usize>,
    /// Candidates surviving pruning.
    pub candidates: usize,
}

/// Diagnose a failure with ACT and score it against the ground truth.
pub fn diagnose_workload(w: &dyn Workload, failure: &ActFailure, seq_len: usize) -> ActRow {
    let bug = failure.built.bug.as_ref().expect("bug workload has ground truth");
    // Correct Set: ~20 fresh correct executions of the clean configuration
    // (the failure itself is never reproduced).
    let traces = collect_clean_traces(w, 100..120u64);
    let mut merged = act_trace::correct_set::CorrectSet::default();
    for t in &traces {
        let deps = act_trace::raw::observed_deps(t);
        for s in act_trace::input_gen::positive_sequences(&deps, seq_len) {
            merged.insert(&s.deps);
        }
    }

    let diag = diagnose(&failure.run, &merged);
    let rank = diag.rank_where(|s| bug.matches_any(&s.deps));
    let debug_pos = failure.run.debug_position_where(|e| bug.matches_any(&e.deps));
    ActRow {
        name: w.name().to_string(),
        status: failure.run.outcome.status().to_string(),
        debug_pos,
        filter_pct: diag.filter_pct(),
        rank,
        candidates: diag.ranked.len(),
    }
}

/// Aviso's result for a workload: rank and the number of failing runs that
/// had to be reproduced (the paper's "Rank (# of fail.)"), or `None` when
/// Aviso cannot handle the bug (sequential) or never finds the constraint.
pub fn aviso_diagnose(w: &dyn Workload, max_failures: u32) -> Option<(usize, u32)> {
    let bug_built = w.build(&w.default_params().triggered());
    let bug = bug_built.bug.as_ref()?;
    if !bug.class.is_concurrency() {
        return None; // Aviso only sees inter-thread events.
    }
    let mut aviso = Aviso::new(5);
    for t in collect_clean_traces(w, 0..10) {
        aviso.add_correct_run(&t);
    }
    let mut fail_seed = 0u64;
    for _ in 0..max_failures {
        // Reproduce a failure (Aviso's methodology requires this).
        let mut reproduced = false;
        for _ in 0..50 {
            let built = w.build(&w.default_params().with_seed(fail_seed).triggered());
            let mut collector = TraceCollector::new(NORM_CODE_LEN);
            let mut machine = Machine::new(&built.program, machine_cfg(fail_seed));
            let outcome = machine.run_observed(&mut collector);
            fail_seed += 1;
            if built.is_failure(&outcome) {
                aviso.add_failing_run(&collector.into_trace());
                reproduced = true;
                break;
            }
        }
        if !reproduced {
            return None;
        }
        if let Some(rank) = aviso.rank_where(|d| bug.matches(d)) {
            return Some((rank, aviso.failing_runs()));
        }
    }
    None
}

/// PBI's result: rank of the buggy instruction's predicate and the number
/// of candidate predicates, from 15 correct runs and 1 failing run.
pub fn pbi_diagnose(w: &dyn Workload) -> (Option<usize>, usize) {
    let mut correct = Vec::new();
    for seed in 0..30u64 {
        let built = w.build(&w.default_params().with_seed(seed));
        let mut coll = pbi::PredicateCollector::new();
        let mut machine = Machine::new(&built.program, machine_cfg(seed));
        let outcome = machine.run_observed(&mut coll);
        if built.is_correct(&outcome) {
            correct.push(coll.into_predicates());
            if correct.len() == 15 {
                break;
            }
        }
    }
    let mut failing = Vec::new();
    let mut bug_pcs: Vec<u32> = Vec::new();
    for seed in 0..50u64 {
        let built = w.build(&w.default_params().with_seed(seed).triggered());
        let mut coll = pbi::PredicateCollector::new();
        let mut machine = Machine::new(&built.program, machine_cfg(seed));
        let outcome = machine.run_observed(&mut coll);
        if built.is_failure(&outcome) {
            failing.push(coll.into_predicates());
            if let Some(bug) = &built.bug {
                bug_pcs = bug.store_pcs.iter().chain(&bug.load_pcs).copied().collect();
            }
            break; // a single failing run, per the paper's comparison
        }
    }
    if failing.is_empty() {
        return (None, 0);
    }
    let scored = pbi::rank_predicates(&correct, &failing);
    pbi::rank_where(&scored, |pc| bug_pcs.contains(&pc))
}

/// Pretty-print helper: `Option<usize>` as a table cell.
pub fn opt(v: Option<usize>) -> String {
    v.map_or_else(|| "-".to_string(), |r| r.to_string())
}
