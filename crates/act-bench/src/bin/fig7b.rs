//! Regenerates **Fig 7(b)**: adaptivity to new code — train with one
//! function's dependences *excluded*, then measure what fraction of that
//! function's (valid) dependence sequences the network reports incorrect.
//! The paper reports ~6.2% average incorrect (≈94% generalization); see
//! DESIGN.md for why our encoding is expected to be more conservative.
//!
//! Run with `cargo run --release -p act-bench --bin fig7b`.

use act_bench::{act_cfg_for, collect_clean_traces, norm_of};
use act_core::encoding::Encoder;
use act_core::offline::offline_train;
use act_nn::network::Network;
use act_trace::event::{Trace, TraceKind};
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::kernels;
use std::collections::HashSet;

/// Remove every record whose pc falls in `func`'s range (per the built
/// program's function table).
fn exclude_function(trace: &Trace, start: u32, end: u32) -> Trace {
    Trace {
        records: trace
            .records
            .iter()
            .filter(|r| {
                !(matches!(r.kind, TraceKind::Load { .. } | TraceKind::Store { .. })
                    && r.pc >= start
                    && r.pc < end)
            })
            .copied()
            .collect(),
        code_len: trace.code_len,
    }
}

fn main() {
    println!("{:<16} {:<24} {:>12}", "Program", "Excluded fn", "% incorrect");
    println!("{}", "-".repeat(56));
    let mut sum = 0.0;
    let mut count = 0;
    // Concurrent kernels only, as in the paper ("the hardest to predict").
    for w in kernels::all() {
        let built = w.build(&w.default_params());
        if built.program.functions.len() < 2 {
            continue;
        }
        // Exclude the last worker function.
        let func = built.program.functions.last().unwrap().clone();
        let cfg = act_cfg_for(w.as_ref());
        let traces = collect_clean_traces(w.as_ref(), 0..10);
        if traces.is_empty() {
            continue;
        }
        let pruned: Vec<Trace> =
            traces.iter().map(|t| exclude_function(t, func.start, func.end)).collect();
        let trained = offline_train(norm_of(w.as_ref()), &pruned, &cfg);
        let n = trained.report.seq_len;
        let enc = Encoder::new(norm_of(w.as_ref()));

        // Distinct sequences of the excluded function, from the full traces.
        let mut seen: HashSet<Vec<act_sim::events::RawDep>> = HashSet::new();
        let mut wrong = 0usize;
        for t in &traces {
            let deps = observed_deps(t);
            for s in positive_sequences(&deps, n) {
                let touches =
                    s.deps.iter().any(|d| d.load_pc >= func.start && d.load_pc < func.end);
                if touches && seen.insert(s.deps.clone()) {
                    let mut net = trained.store.network_for(s.tid, 0.2);
                    if !Network::classify(net.predict(&enc.encode_seq(&s.deps))) {
                        wrong += 1;
                    }
                }
            }
        }
        if seen.is_empty() {
            continue;
        }
        let pct = 100.0 * wrong as f64 / seen.len() as f64;
        println!("{:<16} {:<24} {:>11.1}%", w.name(), func.name, pct);
        sum += pct;
        count += 1;
    }
    println!("{}", "-".repeat(56));
    if count > 0 {
        println!("Average incorrect on new code: {:.1}%", sum / count as f64);
    }
}
