//! Regenerates **Table V**: diagnosis of the 11 real-world bugs, comparing
//! ACT's single-failure rank against the Aviso-like and PBI-like baselines.
//!
//! Run with `cargo run --release -p act-bench --bin table5`.

use act_bench::{act_cfg_for, aviso_diagnose, diagnose_workload, find_act_failure, opt, pbi_diagnose, train_workload};
use act_core::weights::shared;
use act_workloads::registry;
use act_workloads::spec::WorkloadKind;

fn main() {
    let names = [
        "aget", "apache", "memcached", "mysql1", "mysql2", "mysql3", "pbzip2", "gzip", "seq",
        "ptx", "paste",
    ];
    println!(
        "{:<10} {:>7} {:>9} {:>8} {:>5} | {:>12} | {:>14} {:>6}",
        "Prog.", "Traces", "DebugPos", "Filter%", "Rank", "Aviso(fails)", "PBI rank(tot)", "Status"
    );
    println!("{}", "-".repeat(88));
    for name in names {
        let w = registry::by_name(name).expect("workload exists");
        assert_eq!(w.kind(), WorkloadKind::RealBug);
        let cfg = act_cfg_for(w.as_ref());
        let n_traces = 10;
        let trained = train_workload(w.as_ref(), n_traces, &cfg);
        let store = shared(trained.store.clone());

        // MySQL#1 needs a larger debug buffer (as in the paper); run with
        // the default first and fall back to 4x if the root cause was
        // evicted.
        let mut failure = find_act_failure(w.as_ref(), &store, &cfg, 20).expect("failure manifests");
        let mut row = diagnose_workload(w.as_ref(), &failure, trained.report.seq_len);
        let mut note = String::new();
        if row.rank.is_none() {
            let mut big = cfg.clone();
            big.debug_capacity *= 4;
            let store2 = shared(trained.store.clone());
            if let Some(f2) = find_act_failure(w.as_ref(), &store2, &big, 20) {
                failure = f2;
                row = diagnose_workload(w.as_ref(), &failure, trained.report.seq_len);
                note = " [4x debug buffer]".into();
            }
        }

        let aviso = aviso_diagnose(w.as_ref(), 10);
        let aviso_s = aviso.map_or("-".to_string(), |(r, f)| format!("{r} ({f})"));
        let (pbi_rank, pbi_total) = pbi_diagnose(w.as_ref());
        let pbi_s = format!("{} ({pbi_total})", opt(pbi_rank));

        println!(
            "{:<10} {:>7} {:>9} {:>8.1} {:>5} | {:>12} | {:>14} {:>6}{}",
            row.name,
            n_traces,
            opt(row.debug_pos),
            row.filter_pct,
            opt(row.rank),
            aviso_s,
            pbi_s,
            row.status,
            note,
        );
    }
}
