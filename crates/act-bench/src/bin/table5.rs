//! Regenerates **Table V**: diagnosis of the 11 real-world bugs, comparing
//! ACT's single-failure rank against the Aviso-like and PBI-like baselines.
//!
//! Bugs diagnose in parallel via `act-fleet` (one job per bug, the full
//! train → fail → diagnose pipeline inside); the table is identical at any
//! `--jobs` count.
//!
//! Run with `cargo run --release -p act-bench --bin table5 -- [--jobs N] [--out report.json]`.

use act_bench::campaign::{run_cli_campaign, table5_spec, timing_footer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = table5_spec();
    let report = match run_cli_campaign(&spec, &args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table5: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{:<10} {:>7} {:>9} {:>8} {:>5} | {:>12} | {:>14} {:>6}",
        "Prog.", "Traces", "DebugPos", "Filter%", "Rank", "Aviso(fails)", "PBI rank(tot)", "Status"
    );
    println!("{}", "-".repeat(88));
    for line in report.lines() {
        println!("{line}");
    }
    println!("{}", timing_footer(&report));
}
