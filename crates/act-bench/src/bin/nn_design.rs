//! Regenerates the **neural-hardware design comparison** (§IV-A / §VI):
//! ACT's three-stage partially configurable pipeline versus the fully
//! configurable time-multiplexed NPU, across topologies — per-prediction
//! latency and cycles to stream 1000 inputs (testing mode).
//!
//! Run with `cargo run --release -p act-bench --bin nn_design`.

use act_nn::network::Topology;
use act_nn::npu::{pipeline_batch_cycles, NpuConfig};
use act_nn::pipeline::PipelineConfig;

fn main() {
    let npu = NpuConfig::default();
    println!(
        "{:>9} | {:>14} {:>14} | {:>14} {:>14} | {:>8}",
        "topology", "pipe lat(cyc)", "npu lat(cyc)", "pipe 1k(cyc)", "npu 1k(cyc)", "speedup"
    );
    println!("{}", "-".repeat(88));
    for (i, h) in [(2usize, 2usize), (4, 4), (6, 6), (8, 8), (10, 10)] {
        let topo = Topology::new(i, h);
        let pipe = PipelineConfig::default();
        let pipe_lat = pipe.prediction_latency();
        let npu_lat = npu.prediction_latency(topo);
        let pipe_1k = pipeline_batch_cycles(&pipe, 1000);
        let npu_1k = npu.batch_cycles(topo, 1000);
        println!(
            "{:>9} | {:>14} {:>14} | {:>14} {:>14} | {:>7.2}x",
            topo.to_string(),
            pipe_lat,
            npu_lat,
            pipe_1k,
            npu_1k,
            npu_1k as f64 / pipe_1k as f64
        );
    }
    println!();
    println!("Multiply-add-unit latency knob (pipeline neuron latency, M = 10):");
    for x in [1usize, 2, 5, 10] {
        let cfg = PipelineConfig { mul_add_units: x, ..Default::default() };
        println!(
            "  x = {:>2}: neuron {} cycles, prediction {} cycles, throughput 1/{} cycles",
            x,
            cfg.neuron_latency(),
            cfg.prediction_latency(),
            cfg.service_interval(false)
        );
    }
}
