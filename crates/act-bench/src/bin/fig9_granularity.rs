//! Regenerates the **false-sharing / metadata-granularity experiment**
//! (paper §V / §VI-E): last-writer metadata at word vs line granularity,
//! across line sizes, measured as the online misprediction (invalid-flag)
//! rate on clean kernels — line granularity aliases writers of neighbouring
//! words, so it should flag more valid sequences.
//!
//! Run with `cargo run --release -p act-bench --bin fig9_granularity`.

use act_bench::{act_cfg_for, train_workload};
use act_core::diagnosis::run_with_act;
use act_core::weights::shared;
use act_sim::config::{MachineConfig, MetaGranularity};
use act_workloads::kernels;

fn main() {
    let variants: &[(&str, MetaGranularity, u64)] = &[
        ("word/64B", MetaGranularity::Word, 64),
        ("line/32B", MetaGranularity::Line, 32),
        ("line/64B", MetaGranularity::Line, 64),
        ("line/128B", MetaGranularity::Line, 128),
    ];
    print!("{:<14}", "Program");
    for (label, _, _) in variants {
        print!(" {:>12}", label);
    }
    println!("   (flagged-invalid rate of valid runs)");
    println!("{}", "-".repeat(14 + variants.len() * 13));

    let mut sums = vec![0.0f64; variants.len()];
    let mut count = 0;
    for w in kernels::all() {
        let trained = train_workload(w.as_ref(), 10, &act_cfg_for(w.as_ref()));
        let built = w.build(&w.default_params().with_seed(7));
        print!("{:<14}", w.name());
        for (i, &(_, gran, line)) in variants.iter().enumerate() {
            let cfg = act_cfg_for(w.as_ref());
            let store = shared(trained.store.clone());
            let mcfg = MachineConfig {
                granularity: gran,
                line_bytes: line,
                seed: 7,
                jitter_ppm: 10_000,
                ..Default::default()
            };
            let run = run_with_act(&built.program, mcfg, &cfg, &store);
            let preds: u64 = run.module_stats.iter().map(|s| s.predictions).sum();
            let inval: u64 = run.module_stats.iter().map(|s| s.invalids).sum();
            let rate = if preds == 0 { 0.0 } else { 100.0 * inval as f64 / preds as f64 };
            print!(" {:>11.2}%", rate);
            sums[i] += rate;
        }
        println!();
        count += 1;
    }
    println!("{}", "-".repeat(14 + variants.len() * 13));
    print!("{:<14}", "Average");
    for s in &sums {
        print!(" {:>11.2}%", s / count as f64);
    }
    println!();
}
