//! Internal diagnostic probe (not a paper experiment).
use act_bench::{act_cfg_for, find_act_failure, train_workload};
use act_core::weights::shared;
use act_workloads::registry;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "apache".into());
    let w = registry::by_name(&name).expect("workload");
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), 10, &cfg);
    println!(
        "report: seq_len={} topo={} fp={:.4} fn={:.4} deps={} distinct={}",
        trained.report.seq_len,
        trained.report.topology,
        trained.report.test_fp_rate,
        trained.report.test_fn_rate,
        trained.report.total_deps,
        trained.report.distinct_deps
    );
    println!("threads trained: {:?}", trained.store.known_threads());
    let store = shared(trained.store.clone());
    match find_act_failure(w.as_ref(), &store, &cfg, 20) {
        Some(f) => {
            println!("failure after {} attempts: {}", f.attempts, f.run.outcome);
            let bug = f.built.bug.as_ref().unwrap();
            println!("bug: stores={:?} loads={:?}", bug.store_pcs, bug.load_pcs);
            for (i, ms) in f.run.module_stats.iter().enumerate() {
                if ms.predictions > 0 {
                    println!("core {i}: {:?}", ms);
                }
            }
            println!("debug entries: {}", f.run.debug.len());
            for e in f.run.debug.iter().rev().take(12) {
                let hit = bug.matches_any(&e.deps);
                println!(
                    "  cyc {:>7} tid {} out {:.3} {} deps {:?}",
                    e.cycle,
                    e.tid,
                    e.output,
                    if hit { "<< BUG" } else { "" },
                    e.deps.iter().map(|d| d.to_string()).collect::<Vec<_>>()
                );
            }
        }
        None => println!("no failure in 20 tries"),
    }
}
