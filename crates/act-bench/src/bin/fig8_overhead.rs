//! Regenerates the **overhead experiment** (the paper's Fig 8-class result:
//! 8.2% average execution overhead at the default configuration): runs each
//! clean kernel with and without ACT modules attached and reports the cycle
//! overhead, sweeping the multiply-add-unit count and input-FIFO size.
//!
//! Kernels run in parallel via `act-fleet` (one job per kernel; each job
//! trains once and runs all six hardware sweeps); the table is identical at
//! any `--jobs` count.
//!
//! Run with `cargo run --release -p act-bench --bin fig8_overhead -- [--jobs N] [--out report.json]`.

use act_bench::campaign::{fig8_spec, run_cli_campaign, timing_footer, FIG8_SWEEPS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = fig8_spec();
    let report = match run_cli_campaign(&spec, &args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fig8_overhead: {e}");
            std::process::exit(2);
        }
    };
    print!("{:<14}", "Program");
    for (label, _, _) in FIG8_SWEEPS {
        print!(" {:>20}", label);
    }
    println!();
    println!("{}", "-".repeat(14 + FIG8_SWEEPS.len() * 21));
    for line in report.lines() {
        println!("{line}");
    }
    println!("{}", "-".repeat(14 + FIG8_SWEEPS.len() * 21));
    print!("{:<14}", "Average");
    for i in 0..FIG8_SWEEPS.len() {
        let m = report
            .aggregate
            .metric(&format!("overhead_pct_{i}"))
            .expect("every kernel reports every sweep");
        print!(" {:>19.1}%", m.mean);
    }
    println!();
    println!("{}", timing_footer(&report));
}
