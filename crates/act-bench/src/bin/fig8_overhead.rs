//! Regenerates the **overhead experiment** (the paper's Fig 8-class result:
//! 8.2% average execution overhead at the default configuration): runs each
//! clean kernel with and without ACT modules attached and reports the cycle
//! overhead, sweeping the multiply-add-unit count and input-FIFO size.
//!
//! Run with `cargo run --release -p act-bench --bin fig8_overhead`.

use act_bench::{act_cfg_for, machine_cfg, train_workload};
use act_core::diagnosis::run_with_act;
use act_core::weights::shared;
use act_sim::machine::Machine;
use act_workloads::kernels;

fn main() {
    let sweeps: &[(&str, usize, usize)] = &[
        ("default (x=1, fifo=8)", 1, 8),
        ("x=2", 2, 8),
        ("x=5", 5, 8),
        ("x=10", 10, 8),
        ("fifo=4", 1, 4),
        ("fifo=16", 1, 16),
    ];
    print!("{:<14}", "Program");
    for (label, _, _) in sweeps {
        print!(" {:>20}", label);
    }
    println!();
    println!("{}", "-".repeat(14 + sweeps.len() * 21));

    let mut sums = vec![0.0f64; sweeps.len()];
    let mut count = 0;
    for w in kernels::all() {
        let trained = train_workload(w.as_ref(), 10, &act_cfg_for(w.as_ref()));
        let built = w.build(&w.default_params().with_seed(7));
        // Baseline: no ACT.
        let mut m = Machine::new(&built.program, machine_cfg(7));
        let _ = m.run();
        let base_cycles = m.stats().total_cycles as f64;

        print!("{:<14}", w.name());
        for (i, &(_, mul_add, fifo)) in sweeps.iter().enumerate() {
            let mut cfg = act_cfg_for(w.as_ref());
            cfg.pipeline.mul_add_units = mul_add;
            cfg.pipeline.fifo_capacity = fifo;
            let store = shared(trained.store.clone());
            let run = run_with_act(&built.program, machine_cfg(7), &cfg, &store);
            let overhead = 100.0 * (run.machine_stats.total_cycles as f64 / base_cycles - 1.0);
            print!(" {:>19.1}%", overhead);
            sums[i] += overhead;
        }
        println!();
        count += 1;
    }
    println!("{}", "-".repeat(14 + sweeps.len() * 21));
    print!("{:<14}", "Average");
    for s in &sums {
        print!(" {:>19.1}%", s / count as f64);
    }
    println!();
}
