//! `perf` — the tracked hot-path benchmark.
//!
//! Measures classify/train throughput and offline-training / `table4`
//! wall-clock, and writes `BENCH_hotpath.json` (schema documented in
//! `act_bench::perf`). Typical uses:
//!
//! ```text
//! cargo run --release -p act-bench --bin perf                 # full run
//! cargo run --release -p act-bench --bin perf -- --quick      # CI-sized
//! cargo run --release -p act-bench --bin perf -- \
//!     --baseline BENCH_baseline.json                          # fill `before`
//! cargo run --release -p act-bench --bin perf -- \
//!     --validate BENCH_hotpath.json                           # schema check
//! cargo run --release -p act-bench --bin perf -- --quick \
//!     --only classify_predictions,batched_diagnose \
//!     --gate BENCH_hotpath.json --gate-pct 10                 # CI perf gate
//! ```
//!
//! `--gate FILE` turns the run into a pass/fail check: every measured
//! bench that has a row in FILE (matched the same way `--baseline` rows
//! are) must not regress by more than `--gate-pct` percent (default 10),
//! in the unit's own direction — else exit 1. `--gate-bench NAMES`
//! (comma-separated, exact match) restricts the verdict to the named
//! benches; everything else still runs and is recorded, ungated.

use act_bench::perf;
use act_core::ActError;

struct Args {
    quick: bool,
    out: String,
    baseline: Option<String>,
    validate: Option<String>,
    only: Option<String>,
    jobs: usize,
    gate: Option<String>,
    gate_pct: f64,
    gate_bench: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, ActError> {
    let mut args = Args {
        quick: false,
        out: "BENCH_hotpath.json".to_string(),
        baseline: None,
        validate: None,
        only: None,
        jobs: act_fleet::default_workers(),
        gate: None,
        gate_pct: 10.0,
        gate_bench: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--out" => {
                i += 1;
                args.out = argv.get(i).ok_or("--out needs a value")?.clone();
            }
            "--baseline" => {
                i += 1;
                args.baseline = Some(argv.get(i).ok_or("--baseline needs a value")?.clone());
            }
            "--validate" => {
                i += 1;
                args.validate = Some(argv.get(i).ok_or("--validate needs a value")?.clone());
            }
            "--only" => {
                i += 1;
                args.only = Some(argv.get(i).ok_or("--only needs a value")?.clone());
            }
            "--jobs" => {
                i += 1;
                let v = argv.get(i).ok_or("--jobs needs a value")?;
                args.jobs =
                    v.parse().map_err(|_| ActError::Parse(format!("bad --jobs value `{v}`")))?;
                if args.jobs == 0 {
                    return Err("--jobs must be >= 1".into());
                }
            }
            "--gate" => {
                i += 1;
                args.gate = Some(argv.get(i).ok_or("--gate needs a value")?.clone());
            }
            "--gate-pct" => {
                i += 1;
                let v = argv.get(i).ok_or("--gate-pct needs a value")?;
                args.gate_pct = v
                    .parse()
                    .map_err(|_| ActError::Parse(format!("bad --gate-pct value `{v}`")))?;
                if !args.gate_pct.is_finite() || args.gate_pct < 0.0 {
                    return Err("--gate-pct must be a non-negative percentage".into());
                }
            }
            "--gate-bench" => {
                i += 1;
                args.gate_bench = Some(argv.get(i).ok_or("--gate-bench needs a value")?.clone());
            }
            other => return Err(ActError::Parse(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }
    Ok(args)
}

fn load_entries(path: &str) -> Result<Vec<perf::BenchEntry>, ActError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ActError::io(format!("cannot read {path}"), e))?;
    perf::parse_json(&text).map_err(|e| ActError::Parse(format!("{path}: {e}")))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf: {e}");
            eprintln!(
                "usage: perf [--quick] [--out FILE] [--baseline FILE] [--validate FILE] \
                 [--only NAMES] [--jobs N] [--gate FILE] [--gate-pct PCT] [--gate-bench NAMES]"
            );
            std::process::exit(2);
        }
    };

    // Validation mode: schema-check an existing file and exit.
    if let Some(path) = &args.validate {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match perf::validate(&text) {
            Ok(n) => {
                println!("{path}: ok ({n} entries)");
                return;
            }
            Err(e) => {
                eprintln!("perf: {path}: malformed: {e}");
                std::process::exit(2);
            }
        }
    }

    let baseline = args.baseline.as_deref().map(|p| match load_entries(p) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf: bad baseline: {e}");
            std::process::exit(2);
        }
    });

    eprintln!(
        "perf: running {} suite (jobs {})...",
        if args.quick { "quick" } else { "full" },
        args.jobs
    );
    let mut entries = perf::run_all(args.quick, args.jobs, args.only.as_deref());
    if let Some(baseline) = &baseline {
        perf::merge_baseline(&mut entries, baseline);
    }

    for e in &entries {
        let vs = e.speedup().map_or(String::new(), |s| {
            format!("  ({:.3} before, {s:.2}x)", e.before.expect("speedup implies before"))
        });
        println!("{:<30} jobs {:<2} {:>14.3} {}{vs}", e.bench, e.jobs, e.value, e.unit);
    }

    let json = perf::render_json(&entries);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("perf: cannot write {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("wrote {}", args.out);

    // Gate mode: compare against the committed reference file and fail the
    // run on any regression past the threshold. Benches absent from the
    // gate file pass vacuously (a new bench cannot block its own PR).
    if let Some(path) = &args.gate {
        let reference = match load_entries(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perf: bad gate file: {e}");
                std::process::exit(2);
            }
        };
        let mut gated = entries.clone();
        perf::merge_baseline(&mut gated, &reference);
        if let Some(filter) = &args.gate_bench {
            gated.retain(|e| filter.split(',').any(|p| e.bench == p));
        }
        let mut failed = false;
        for e in &gated {
            let Some(regression) = e.regression_pct() else {
                println!("gate: {:<30} no reference, skipped", e.bench);
                continue;
            };
            let ok = regression <= args.gate_pct;
            println!(
                "gate: {:<30} {:+.1}% vs {path} (limit +{:.1}%): {}",
                e.bench,
                regression,
                args.gate_pct,
                if ok { "ok" } else { "REGRESSION" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!("perf: gate failed (see REGRESSION lines above)");
            std::process::exit(1);
        }
    }
}
