//! Regenerates **Table IV**: offline training of the neural networks on the
//! clean kernels — traces used, dependences, chosen topology, and held-out
//! misprediction rate (false positives; the paper's average is ~0.4%).
//!
//! Run with `cargo run --release -p act-bench --bin table4`.

use act_bench::{act_cfg_for, train_workload};
use act_workloads::kernels;

fn main() {
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>10} {:>10}",
        "Program", "Traces", "# RAW Dep", "Topology", "%Mispred", "(FN rate)"
    );
    println!("{}", "-".repeat(64));
    let mut fp_sum = 0.0;
    let mut count = 0;
    for w in kernels::all() {
        let cfg = act_cfg_for(w.as_ref());
        let n_traces = 10;
        let trained = train_workload(w.as_ref(), n_traces, &cfg);
        let r = &trained.report;
        println!(
            "{:<14} {:>7} {:>9} {:>9} {:>9.3}% {:>9.3}%",
            w.name(),
            r.train_traces + r.test_traces,
            r.distinct_deps,
            r.topology.to_string(),
            100.0 * r.test_fp_rate,
            100.0 * r.test_fn_rate,
        );
        fp_sum += r.test_fp_rate;
        count += 1;
    }
    println!("{}", "-".repeat(64));
    println!("Average %mispred (false positives): {:.3}%", 100.0 * fp_sum / count as f64);
}
