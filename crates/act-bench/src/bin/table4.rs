//! Regenerates **Table IV**: offline training of the neural networks on the
//! clean kernels — traces used, dependences, chosen topology, and held-out
//! misprediction rate (false positives; the paper's average is ~0.4%).
//!
//! Kernels train in parallel via `act-fleet` (one job per kernel); the
//! table is identical at any `--jobs` count.
//!
//! Run with `cargo run --release -p act-bench --bin table4 -- [--jobs N] [--out report.json]`.

use act_bench::campaign::{run_cli_campaign, table4_spec, timing_footer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = table4_spec();
    let report = match run_cli_campaign(&spec, &args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table4: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>10} {:>10}",
        "Program", "Traces", "# RAW Dep", "Topology", "%Mispred", "(FN rate)"
    );
    println!("{}", "-".repeat(64));
    for line in report.lines() {
        println!("{line}");
    }
    println!("{}", "-".repeat(64));
    let fp = report.aggregate.metric("test_fp_rate").expect("every kernel reports FP rate");
    println!("Average %mispred (false positives): {:.3}%", 100.0 * fp.mean);
    println!("{}", timing_footer(&report));
}
