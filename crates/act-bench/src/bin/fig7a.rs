//! Regenerates **Fig 7(a)**: misprediction (false-negative) rate on
//! intentionally formed invalid RAW dependences (the paper's average is
//! ~0.18%).
//!
//! Run with `cargo run --release -p act-bench --bin fig7a`.

use act_bench::{act_cfg_for, train_workload};
use act_workloads::kernels;

fn main() {
    println!("{:<14} {:>24} {:>22}", "Program", "paper-style negatives", "all negatives");
    println!("{}", "-".repeat(64));
    let mut sum_paper = 0.0;
    let mut sum_all = 0.0;
    let mut count = 0;
    for w in kernels::all() {
        let cfg = act_cfg_for(w.as_ref());
        let trained = train_workload(w.as_ref(), 10, &cfg);
        println!(
            "{:<14} {:>23.3}% {:>21.3}%",
            w.name(),
            100.0 * trained.report.test_fn_rate_paper,
            100.0 * trained.report.test_fn_rate
        );
        sum_paper += trained.report.test_fn_rate_paper;
        sum_all += trained.report.test_fn_rate;
        count += 1;
    }
    println!("{}", "-".repeat(64));
    println!(
        "Average: {:.3}% (paper-style), {:.3}% (all)",
        100.0 * sum_paper / count as f64,
        100.0 * sum_all / count as f64
    );
}
