//! Ablation study for the design choices DESIGN.md §5 documents: each row
//! removes one ingredient and reports (a) how many of four representative
//! bugs (one per class) still get a top-5 rank from a single failure, and
//! (b) the false-flag rate on a trained clean kernel run — showing that
//! every ingredient earns its place.
//!
//! Run with `cargo run --release -p act-bench --bin ablation`.

use act_bench::{act_cfg_for, collect_clean_traces, find_act_failure, machine_cfg, train_workload};
use act_core::diagnosis::{diagnose, run_with_act};
use act_core::weights::shared;
use act_core::ActConfig;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::registry;

const BUGS: [&str; 4] = ["apache", "pbzip2", "seq", "paste"];

fn bugs_diagnosed(mutate: &dyn Fn(&mut ActConfig)) -> usize {
    let mut found = 0;
    for name in BUGS {
        let w = registry::by_name(name).unwrap();
        let mut cfg = act_cfg_for(w.as_ref());
        mutate(&mut cfg);
        let trained = train_workload(w.as_ref(), 10, &cfg);
        let store = shared(trained.store.clone());
        let Some(failure) = find_act_failure(w.as_ref(), &store, &cfg, 20) else {
            continue;
        };
        let mut set = CorrectSet::default();
        for t in collect_clean_traces(w.as_ref(), 100..116) {
            for s in positive_sequences(&observed_deps(&t), trained.report.seq_len) {
                set.insert(&s.deps);
            }
        }
        let diag = diagnose(&failure.run, &set);
        let bug = failure.built.bug.as_ref().unwrap();
        if diag.rank_where(|s| bug.matches_any(&s.deps)).is_some_and(|r| r <= 5) {
            found += 1;
        }
    }
    found
}

fn clean_flag_rate(mutate: &dyn Fn(&mut ActConfig)) -> f64 {
    let w = registry::by_name("fluidanimate").unwrap();
    let mut cfg = act_cfg_for(w.as_ref());
    mutate(&mut cfg);
    let trained = train_workload(w.as_ref(), 10, &cfg);
    let store = shared(trained.store.clone());
    let built = w.build(&w.default_params().with_seed(7));
    let run = run_with_act(&built.program, machine_cfg(7), &cfg, &store);
    let preds: u64 = run.module_stats.iter().map(|s| s.predictions).sum();
    let inval: u64 = run.module_stats.iter().map(|s| s.invalids).sum();
    if preds == 0 {
        0.0
    } else {
        100.0 * inval as f64 / preds as f64
    }
}

fn main() {
    let ablations: Vec<(&str, Box<dyn Fn(&mut ActConfig)>)> = vec![
        ("full system", Box::new(|_| {})),
        ("no cross negatives", Box::new(|c| c.cross_negs = 0)),
        ("no noise negatives", Box::new(|c| c.noise_fraction = 0.0)),
        ("sequence length N=1", Box::new(|c| c.search.seq_lens = vec![1])),
        ("tiny hidden layer (h=2)", Box::new(|c| c.search.hidden_sizes = vec![2])),
    ];
    println!(
        "{:<26} {:>18} {:>18}",
        "Ablation", "bugs found (of 4)", "clean flag rate"
    );
    println!("{}", "-".repeat(64));
    for (label, mutate) in &ablations {
        let found = bugs_diagnosed(mutate.as_ref());
        let rate = clean_flag_rate(mutate.as_ref());
        println!("{:<26} {:>18} {:>17.2}%", label, found, rate);
    }
}
