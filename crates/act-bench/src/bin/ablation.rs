//! Ablation study for the design choices DESIGN.md §5 documents: each row
//! removes one ingredient and reports (a) how many of four representative
//! bugs (one per class) still get a top-5 rank from a single failure, and
//! (b) the false-flag rate on a trained clean kernel run — showing that
//! every ingredient earns its place.
//!
//! Cells run in parallel via `act-fleet` (one job per (ablation, workload)
//! pair); the table is identical at any `--jobs` count.
//!
//! Run with `cargo run --release -p act-bench --bin ablation -- [--jobs N] [--out report.json]`.

use act_bench::campaign::{
    ablation_spec, run_cli_campaign, timing_footer, ABLATIONS, ABLATION_BUGS,
};
use act_fleet::Metric;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = ablation_spec();
    let report = match run_cli_campaign(&spec, &args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ablation: {e}");
            std::process::exit(2);
        }
    };
    println!("{:<26} {:>18} {:>18}", "Ablation", "bugs found (of 4)", "clean flag rate");
    println!("{}", "-".repeat(64));
    for (label, display) in ABLATIONS {
        // Reduce this ablation's row from its cells in the report.
        let mut found = 0i64;
        let mut rate = 0.0f64;
        for r in report.results.iter().filter(|r| r.job.config == label) {
            let Some(out) = r.outcome.output() else { continue };
            match out.metric("diagnosed") {
                Some(&Metric::Int(v)) => found += v,
                _ => {
                    if let Some(&Metric::Float(v)) = out.metric("clean_flag_pct") {
                        rate = v;
                    }
                }
            }
        }
        debug_assert!(found <= ABLATION_BUGS.len() as i64);
        println!("{:<26} {:>18} {:>17.2}%", display, found, rate);
    }
    println!("{}", timing_footer(&report));
}
