//! Regenerates **Table VI**: bugs injected into *new* functions absent from
//! training. ACT is trained on the base program, deployed on the extended
//! one (adapting online to the new code's valid dependences), and must
//! still rank the injected bug.
//!
//! Run with `cargo run --release -p act-bench --bin table6`.

use act_bench::{act_cfg_for, machine_cfg, opt, train_workload};
use act_core::diagnosis::{diagnose, run_with_act};
use act_core::weights::shared;
use act_sim::machine::Machine;
use act_trace::collector::TraceCollector;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::injected;
use act_workloads::spec::Params;

fn main() {
    println!("{:<36} {:>8} {:>6}", "Prog:Function", "Filter%", "Rank");
    println!("{}", "-".repeat(54));
    for w in injected::all() {
        let cfg = act_cfg_for(w.as_ref());
        // 1. Train on the BASE program (new function not present).
        let trained = train_workload(w.as_ref(), 10, &cfg);
        let store = shared(trained.store.clone());
        let n = trained.report.seq_len;

        // 2. Deploy on the extended program: first some correct production
        //    runs (online training adapts to the new code and patches the
        //    weights back), then the failure.
        for seed in 50..54u64 {
            let built = w.build(&Params { seed, new_code: true, ..w.default_params() });
            let _ = run_with_act(&built.program, machine_cfg(seed), &cfg, &store);
        }
        let mut failure = None;
        for seed in 0..20u64 {
            let built = w.build(&Params { seed, new_code: true, ..w.default_params().triggered() });
            let run = run_with_act(&built.program, machine_cfg(seed), &cfg, &store);
            if built.is_failure(&run.outcome) {
                failure = Some((run, built));
                break;
            }
        }
        let Some((run, built)) = failure else {
            println!("{:<36} {:>8} {:>6}", w.name(), "-", "no failure");
            continue;
        };
        let bug = built.bug.as_ref().expect("injected bug");

        // 3. Correct Set from extended-program correct runs.
        let mut set = act_trace::correct_set::CorrectSet::default();
        for seed in 100..120u64 {
            let b = w.build(&Params { seed, new_code: true, ..w.default_params() });
            let mut coll = TraceCollector::new(b.program.code_len());
            let mut m = Machine::new(&b.program, machine_cfg(seed));
            let out = m.run_observed(&mut coll);
            if b.is_correct(&out) {
                let deps = observed_deps(&coll.into_trace());
                for s in positive_sequences(&deps, n) {
                    set.insert(&s.deps);
                }
            }
        }
        let diag = diagnose(&run, &set);
        let rank = diag.rank_where(|s| bug.matches_any(&s.deps));
        println!("{:<36} {:>7.1} {:>6}", w.name(), diag.filter_pct(), opt(rank));
    }
}
