//! Standard campaign executors: the bridge between `act-fleet`'s generic
//! orchestration and this crate's experiment procedures.
//!
//! A campaign spec names an executor through its `kind`; [`executor_for`]
//! resolves it. Each executor maps one [`JobDesc`] — a (workload, config,
//! seed) grid cell — to a [`JobOutput`], building **everything** (workload,
//! machine, training, diagnosis) inside the call from the job's seed. That
//! per-job ownership is what makes campaigns deterministic at any worker
//! count and lock-free on the hot path.
//!
//! Kinds:
//!
//! | kind       | job unit                    | mirrors            |
//! |------------|-----------------------------|--------------------|
//! | `run`      | one machine run             | `act run`          |
//! | `train`    | offline training of a kernel| Table IV rows      |
//! | `diagnose` | full single-failure pipeline| Table V / VI rows  |
//! | `overhead` | ACT overhead sweep, 1 kernel| Fig 8              |
//! | `ablation` | one (ablation, workload) cell| DESIGN.md §5 study|
//!
//! The experiment binaries (`table4`, `table5`, `fig8_overhead`,
//! `ablation`) build their spec here and fan out with `--jobs N`
//! (default: all cores); `act campaign <spec>` does the same from a file.

use crate::{
    act_cfg_for, aviso_diagnose, collect_clean_traces, diagnose_workload, find_act_failure,
    machine_cfg, opt, pbi_diagnose, train_workload,
};
use act_core::diagnosis::{diagnose, run_with_act};
use act_core::weights::shared;
use act_core::{ActConfig, ActError};
use act_fleet::{run_campaign, CampaignReport, CampaignSpec, JobDesc, JobOutput};
use act_sim::machine::Machine;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::spec::Workload;
use act_workloads::{kernels, registry};

/// The 11 real-world bugs of Table V, in the paper's order.
pub const TABLE5_BUGS: [&str; 11] = [
    "aget",
    "apache",
    "memcached",
    "mysql1",
    "mysql2",
    "mysql3",
    "pbzip2",
    "gzip",
    "seq",
    "ptx",
    "paste",
];

/// The ablation rows of the DESIGN.md §5 study: config label → display name.
pub const ABLATIONS: [(&str, &str); 5] = [
    ("full", "full system"),
    ("no-cross-negs", "no cross negatives"),
    ("no-noise-negs", "no noise negatives"),
    ("seq-len-1", "sequence length N=1"),
    ("hidden-2", "tiny hidden layer (h=2)"),
];

/// The representative bugs the ablation scores (one per class), plus the
/// clean kernel used for the false-flag rate.
pub const ABLATION_BUGS: [&str; 4] = ["apache", "pbzip2", "seq", "paste"];
const ABLATION_CLEAN: &str = "fluidanimate";

/// The Fig 8 hardware sweeps: (label, mul-add units, FIFO capacity).
pub const FIG8_SWEEPS: [(&str, usize, usize); 6] = [
    ("default (x=1, fifo=8)", 1, 8),
    ("x=2", 2, 8),
    ("x=5", 5, 8),
    ("x=10", 10, 8),
    ("fifo=4", 1, 4),
    ("fifo=16", 1, 16),
];

/// Up to `want` stored traces of `workload` from the corpus at `dir`.
/// Rotten entries are skipped; a missing corpus panics (the job is then
/// recorded as crashed, the right report for a bad spec).
fn corpus_traces(dir: &str, workload: &str, want: usize) -> Vec<act_trace::event::Trace> {
    let c = act_store::Corpus::open(dir).unwrap_or_else(|e| panic!("corpus {dir}: {e}"));
    c.entries(Some(workload))
        .into_iter()
        .filter(|info| info.meta.kind == act_store::EntryKind::Trace)
        .filter_map(|info| c.get_trace(&info.meta.key).ok())
        .take(want)
        .collect()
}

fn lookup(name: &str) -> Box<dyn Workload> {
    registry::by_name(name).unwrap_or_else(|| panic!("unknown workload `{name}`"))
}

fn kernel_names() -> Vec<String> {
    kernels::all().iter().map(|w| w.name().to_string()).collect()
}

/// The Table IV campaign: offline training of every clean kernel.
pub fn table4_spec() -> CampaignSpec {
    let names = kernel_names();
    let mut spec =
        CampaignSpec::new("table4", "train", &names.iter().map(String::as_str).collect::<Vec<_>>());
    spec.params.insert("traces".into(), "10".into());
    spec
}

/// The Table V campaign: single-failure diagnosis of the 11 real bugs,
/// with the Aviso-like and PBI-like baselines alongside.
pub fn table5_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("table5", "diagnose", &TABLE5_BUGS);
    spec.params.insert("traces".into(), "10".into());
    spec.params.insert("max_tries".into(), "20".into());
    spec
}

/// The Fig 8 campaign: execution overhead of every kernel across the
/// hardware sweeps.
pub fn fig8_spec() -> CampaignSpec {
    let names = kernel_names();
    let mut spec = CampaignSpec::new(
        "fig8_overhead",
        "overhead",
        &names.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    spec.seeds = vec![7];
    spec
}

/// The ablation campaign: every (ablation, representative workload) cell.
pub fn ablation_spec() -> CampaignSpec {
    let mut workloads: Vec<&str> = ABLATION_BUGS.to_vec();
    workloads.push(ABLATION_CLEAN);
    let mut spec = CampaignSpec::new("ablation", "ablation", &workloads);
    spec.configs = ABLATIONS.iter().map(|(label, _)| label.to_string()).collect();
    spec
}

/// Resolve a spec's `kind` to its executor.
///
/// The returned closure is shared across worker threads; all its captures
/// come from the spec's parameters (plain values), so it is `Send + Sync`.
pub fn executor_for(
    spec: &CampaignSpec,
) -> Result<Box<dyn Fn(&JobDesc) -> JobOutput + Send + Sync>, ActError> {
    let traces: usize = spec.param_or("traces", 10);
    let max_tries: u64 = spec.param_or("max_tries", 20);
    // `corpus = DIR` points the train executor at an act-store corpus as
    // its trace source (ingested production traces instead of fresh
    // simulator runs).
    let corpus: Option<String> = spec.params.get("corpus").cloned();
    // `gateway = ADDR` ships train/diagnose jobs over the wire — to an
    // act-gate gateway (or a single act-serve daemon; the protocol is the
    // same) — instead of running the pipeline in-process.
    if let Some(addr) = spec.params.get("gateway").cloned() {
        let model = remote_model_spec(spec);
        // `pipeline_depth = N` (N > 1) sends every job through one shared
        // v4 session with N requests in flight instead of one
        // connection-per-job; the report stays byte-identical either way.
        let shared = shared_pipeline(spec, &addr);
        return match spec.kind.as_str() {
            "train" => Ok(Box::new(move |job: &JobDesc| {
                remote_train_exec(job, &addr, &model, shared.as_deref())
            })),
            "diagnose" => Ok(Box::new(move |job: &JobDesc| {
                remote_diagnose_exec(job, &addr, &model, shared.as_deref())
            })),
            other => Err(ActError::Parse(format!(
                "campaign kind `{other}` cannot run through a gateway (train and diagnose can)"
            ))),
        };
    }
    match spec.kind.as_str() {
        "run" => Ok(Box::new(run_exec)),
        "train" => Ok(Box::new(move |job: &JobDesc| train_exec(job, traces, corpus.as_deref()))),
        "diagnose" => Ok(Box::new(move |job: &JobDesc| diagnose_exec(job, traces, max_tries))),
        "overhead" => Ok(Box::new(move |job: &JobDesc| overhead_exec(job, traces))),
        "ablation" => Ok(Box::new(move |job: &JobDesc| ablation_exec(job, traces, max_tries))),
        other => Err(ActError::Parse(format!(
            "unknown campaign kind `{other}` (expected run, train, diagnose, overhead, or ablation)"
        ))),
    }
}

/// The wire [`ModelSpec`] template a remote campaign sends: spec params
/// override the protocol defaults; the per-job workload and seed are
/// stamped in by the executor.
fn remote_model_spec(spec: &CampaignSpec) -> act_serve::ModelSpec {
    let mut model = act_serve::ModelSpec::new("");
    model.traces = spec.param_or("traces", 10usize) as u32;
    model.seq_len = spec.param_or("seq_len", 2usize) as u16;
    model.hidden = spec.param_or("hidden", 10usize) as u16;
    model.max_epochs = spec.param_or("max_epochs", 0usize) as u32;
    model
}

/// The client remote jobs use: bounded default timeouts plus one jittered
/// retry keyed on the job seed, so a gateway BUSY or a mid-failover blip
/// does not crash the job (and retry sleeps stay deterministic per job).
fn remote_client(job: &JobDesc, addr: &str) -> act_client::Client {
    act_client::Client::builder()
        .addr(addr)
        .retry(std::time::Duration::from_millis(100), job.seed)
        .build()
        .expect("endpoint is set")
}

/// The one pipelined client every worker shares when the spec asks for
/// `pipeline_depth > 1`. A single client means a single v4 session, so
/// concurrent jobs genuinely overlap in flight; the retry seed is fixed
/// (retries only pick sleep jitter, never results, so sharing it keeps
/// reports deterministic).
fn shared_pipeline(spec: &CampaignSpec, addr: &str) -> Option<std::sync::Arc<act_client::Client>> {
    let depth: usize = spec.param_or("pipeline_depth", 1);
    if depth <= 1 {
        return None;
    }
    Some(std::sync::Arc::new(
        act_client::Client::builder()
            .addr(addr)
            .retry(std::time::Duration::from_millis(100), 0)
            .pipeline_depth(depth as u32)
            .build()
            .expect("endpoint is set"),
    ))
}

/// Strip the cache-outcome tag (` [cache-hit]`, ` [trained]`, ...) off a
/// `Trained` summary. The tag depends on which backend answered and what
/// it had cached — scrubbing it keeps campaign reports byte-identical
/// across fleet sizes and failovers.
fn strip_cache_tag(summary: &str) -> &str {
    summary.split(" [").next().unwrap_or(summary).trim_end()
}

/// Strip the `model=<tag>` token from a diagnosis header for the same
/// reason: the tag names the serving backend's cache outcome, not the
/// diagnosis.
fn strip_model_token(line: &str) -> String {
    line.split_whitespace().filter(|tok| !tok.starts_with("model=")).collect::<Vec<_>>().join(" ")
}

/// Pull a `key=value` integer out of a diagnosis header.
fn header_int(line: &str, key: &str) -> Option<i64> {
    line.split_whitespace().find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
}

/// `train` through a gateway: one TRAIN frame per job.
fn remote_train_exec(
    job: &JobDesc,
    addr: &str,
    model: &act_serve::ModelSpec,
    shared: Option<&act_client::Client>,
) -> JobOutput {
    let mut spec = model.clone();
    spec.workload = job.workload.clone();
    spec.seed = job.seed;
    let result = match shared {
        Some(client) => client.train(&spec),
        None => remote_client(job, addr).train(&spec),
    };
    match result {
        Ok(summary) => {
            let summary = strip_cache_tag(&summary);
            JobOutput::default()
                .text("summary", summary)
                .line(format!("{:<14} seed {:<4} {summary}", job.workload, job.seed))
        }
        Err(e) => panic!("{}: gateway {addr}: {e}", job.workload),
    }
}

/// `diagnose` through a gateway: manifest a failing run locally (the
/// production machine's side of the paper's workflow), ship its trace,
/// and record the ranked diagnosis the service returns.
fn remote_diagnose_exec(
    job: &JobDesc,
    addr: &str,
    model: &act_serve::ModelSpec,
    shared: Option<&act_client::Client>,
) -> JobOutput {
    let mut spec = model.clone();
    spec.workload = job.workload.clone();
    spec.seed = job.seed;
    let trace = failing_trace_bytes(&job.workload, job.seed);
    let result = match shared {
        Some(client) => client.diagnose(&spec, &trace),
        None => remote_client(job, addr).diagnose(&spec, &trace),
    };
    match result {
        Ok(text) => {
            let header = strip_model_token(text.lines().next().unwrap_or(""));
            let ranked = header_int(&header, "ranked").unwrap_or(0);
            let top = text.lines().find(|l| l.trim_start().starts_with("#1")).map(str::trim);
            let mut out = JobOutput::default().int("ranked", ranked).text("header", &header);
            if let Some(top) = top {
                out = out.text("top_suspect", top);
            }
            out.line(format!("{:<14} seed {:<4} {header}", job.workload, job.seed))
        }
        Err(e) => panic!("{}: gateway {addr}: {e}", job.workload),
    }
}

/// Serialize a failing trace of `workload` the way a production client
/// would ship one: run triggered configurations from `base_seed` up until
/// one actually fails. Deterministic per (workload, base_seed).
pub fn failing_trace_bytes(workload: &str, base_seed: u64) -> Vec<u8> {
    let w = lookup(workload);
    let norm = crate::norm_of(w.as_ref());
    for seed in base_seed..base_seed + 64 {
        let built = w.build(&w.default_params().triggered().with_seed(seed));
        let mut collector = act_trace::collector::TraceCollector::new(norm);
        let mut machine = Machine::new(&built.program, machine_cfg(seed));
        let outcome = machine.run_observed(&mut collector);
        if built.is_failure(&outcome) {
            return act_trace::io::trace_to_bytes(&collector.into_trace());
        }
    }
    panic!("{workload}: no failing run in seeds {base_seed}..{}", base_seed + 64)
}

/// `run`: a single (optionally triggered) machine run.
fn run_exec(job: &JobDesc) -> JobOutput {
    let w = lookup(&job.workload);
    let mut p = w.default_params().with_seed(job.seed);
    p.trigger_bug = job.config == "triggered";
    let built = w.build(&p);
    let mut m = Machine::new(&built.program, machine_cfg(job.seed));
    let outcome = m.run();
    let s = m.stats();
    let verdict = if built.is_correct(&outcome) { "correct" } else { "failure" };
    JobOutput::default()
        .int("cycles", s.total_cycles as i64)
        .int("instructions", s.total_retired() as i64)
        .int("deps_formed", s.mem.deps_formed as i64)
        .text("verdict", verdict)
        .line(format!(
            "{:<14} {:<10} seed {:<4} {:>10} cycles  {}",
            job.workload, job.config, job.seed, s.total_cycles, verdict
        ))
}

/// `train`: one Table IV row. With a `corpus` param, the training traces
/// come from the store instead of fresh simulator runs.
fn train_exec(job: &JobDesc, traces: usize, corpus: Option<&str>) -> JobOutput {
    let w = lookup(&job.workload);
    let cfg = act_cfg_for(w.as_ref());
    let trained = match corpus {
        Some(dir) => {
            let stored = corpus_traces(dir, &job.workload, traces);
            assert!(
                !stored.is_empty(),
                "{}: corpus {dir} holds no traces for this workload",
                job.workload
            );
            act_core::offline::offline_train(crate::norm_of(w.as_ref()), &stored, &cfg)
        }
        None => train_workload(w.as_ref(), traces, &cfg),
    };
    let r = &trained.report;
    JobOutput::default()
        .int("traces", (r.train_traces + r.test_traces) as i64)
        .int("distinct_deps", r.distinct_deps as i64)
        .text("topology", &r.topology.to_string())
        .float("test_fp_rate", r.test_fp_rate)
        .float("test_fn_rate", r.test_fn_rate)
        .line(format!(
            "{:<14} {:>7} {:>9} {:>9} {:>9.3}% {:>9.3}%",
            job.workload,
            r.train_traces + r.test_traces,
            r.distinct_deps,
            r.topology.to_string(),
            100.0 * r.test_fp_rate,
            100.0 * r.test_fn_rate,
        ))
}

/// `diagnose`: one Table V row — ACT's single-failure diagnosis plus the
/// Aviso-like and PBI-like baselines (each with its own methodology).
fn diagnose_exec(job: &JobDesc, traces: usize, max_tries: u64) -> JobOutput {
    let w = lookup(&job.workload);
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), traces, &cfg);
    let store = shared(trained.store.clone());

    // Run with the default debug buffer first; if the root cause was
    // evicted, fall back to 4x (MySQL#1 needs this, as in the paper).
    let mut failure =
        find_act_failure(w.as_ref(), &store, &cfg, max_tries).expect("failure manifests");
    let mut row = diagnose_workload(w.as_ref(), &failure, trained.report.seq_len);
    let mut note = "";
    if row.rank.is_none() {
        let mut big = cfg.clone();
        big.debug_capacity *= 4;
        let store2 = shared(trained.store.clone());
        if let Some(f2) = find_act_failure(w.as_ref(), &store2, &big, max_tries) {
            failure = f2;
            row = diagnose_workload(w.as_ref(), &failure, trained.report.seq_len);
            note = " [4x debug buffer]";
        }
    }

    let aviso = aviso_diagnose(w.as_ref(), 10);
    let aviso_s = aviso.map_or("-".to_string(), |(r, f)| format!("{r} ({f})"));
    let (pbi_rank, pbi_total) = pbi_diagnose(w.as_ref());
    let pbi_s = format!("{} ({pbi_total})", opt(pbi_rank));

    let mut out = JobOutput::default()
        .int("attempts", failure.attempts as i64)
        .float("filter_pct", row.filter_pct)
        .int("candidates", row.candidates as i64)
        .int("ranked", row.rank.is_some() as i64)
        .text("status", &row.status);
    if let Some(rank) = row.rank {
        out = out.int("rank", rank as i64);
    }
    if let Some(pos) = row.debug_pos {
        out = out.int("debug_pos", pos as i64);
    }
    if let Some((r, f)) = aviso {
        out = out.int("aviso_rank", r as i64).int("aviso_failures", f as i64);
    }
    if let Some(r) = pbi_rank {
        out = out.int("pbi_rank", r as i64);
    }
    out.int("pbi_total", pbi_total as i64).line(format!(
        "{:<10} {:>7} {:>9} {:>8.1} {:>5} | {:>12} | {:>14} {:>6}{}",
        row.name,
        traces,
        opt(row.debug_pos),
        row.filter_pct,
        opt(row.rank),
        aviso_s,
        pbi_s,
        row.status,
        note,
    ))
}

/// `overhead`: one Fig 8 row — a kernel's cycle overhead with ACT attached,
/// across the hardware sweeps (trained once, swept inside the job).
fn overhead_exec(job: &JobDesc, traces: usize) -> JobOutput {
    let w = lookup(&job.workload);
    let trained = train_workload(w.as_ref(), traces, &act_cfg_for(w.as_ref()));
    let built = w.build(&w.default_params().with_seed(job.seed));
    let mut m = Machine::new(&built.program, machine_cfg(job.seed));
    let _ = m.run();
    let base_cycles = m.stats().total_cycles as f64;

    let mut out = JobOutput::default().int("base_cycles", base_cycles as i64);
    let mut line = format!("{:<14}", job.workload);
    for (i, &(_, mul_add, fifo)) in FIG8_SWEEPS.iter().enumerate() {
        let mut cfg = act_cfg_for(w.as_ref());
        cfg.pipeline.mul_add_units = mul_add;
        cfg.pipeline.fifo_capacity = fifo;
        let store = shared(trained.store.clone());
        let run = run_with_act(&built.program, machine_cfg(job.seed), &cfg, &store);
        let overhead = 100.0 * (run.machine_stats.total_cycles as f64 / base_cycles - 1.0);
        out = out.float(&format!("overhead_pct_{i}"), overhead);
        line.push_str(&format!(" {overhead:>19.1}%"));
    }
    out.line(line)
}

/// Apply an ablation label to a config. Panics on unknown labels (the job
/// is then recorded as crashed, which is the right report for a bad spec).
fn ablation_mutate(label: &str, cfg: &mut ActConfig) {
    match label {
        "full" => {}
        "no-cross-negs" => cfg.cross_negs = 0,
        "no-noise-negs" => cfg.noise_fraction = 0.0,
        "seq-len-1" => cfg.search.seq_lens = vec![1],
        "hidden-2" => cfg.search.hidden_sizes = vec![2],
        other => panic!("unknown ablation `{other}`"),
    }
}

/// `ablation`: one cell of the §5 study. Bug workloads report whether a
/// single failure still gets a top-5 rank; the clean kernel reports the
/// false-flag rate of a trained run.
fn ablation_exec(job: &JobDesc, traces: usize, max_tries: u64) -> JobOutput {
    let w = lookup(&job.workload);
    let mut cfg = act_cfg_for(w.as_ref());
    ablation_mutate(&job.config, &mut cfg);
    let trained = train_workload(w.as_ref(), traces, &cfg);
    let store = shared(trained.store.clone());

    if job.workload == ABLATION_CLEAN {
        let built = w.build(&w.default_params().with_seed(7));
        let run = run_with_act(&built.program, machine_cfg(7), &cfg, &store);
        let preds: u64 = run.module_stats.iter().map(|s| s.predictions).sum();
        let inval: u64 = run.module_stats.iter().map(|s| s.invalids).sum();
        let rate = if preds == 0 { 0.0 } else { 100.0 * inval as f64 / preds as f64 };
        return JobOutput::default().float("clean_flag_pct", rate);
    }

    let Some(failure) = find_act_failure(w.as_ref(), &store, &cfg, max_tries) else {
        return JobOutput::default().int("diagnosed", 0).text("status", "no failure");
    };
    let mut set = CorrectSet::default();
    for t in collect_clean_traces(w.as_ref(), 100..116) {
        for s in positive_sequences(&observed_deps(&t), trained.report.seq_len) {
            set.insert(&s.deps);
        }
    }
    let diag = diagnose(&failure.run, &set);
    let bug = failure.built.bug.as_ref().unwrap();
    let rank = diag.rank_where(|s| bug.matches_any(&s.deps));
    let diagnosed = rank.is_some_and(|r| r <= 5);
    let mut out = JobOutput::default().int("diagnosed", diagnosed as i64);
    if let Some(r) = rank {
        out = out.int("rank", r as i64);
    }
    out
}

/// Parse the experiment binaries' shared flags: `--jobs N` (worker count,
/// default all cores) and `--out FILE` (write the full JSON report).
pub struct CampaignArgs {
    /// Worker threads.
    pub jobs: usize,
    /// JSON output path, if any.
    pub out: Option<String>,
    /// Strip the (non-deterministic) timing section from the JSON.
    pub no_timing: bool,
}

impl CampaignArgs {
    /// Parse from raw argv (everything after the binary name). Unknown
    /// flags error so typos do not silently change an experiment.
    pub fn parse(args: &[String]) -> Result<Self, ActError> {
        let mut parsed =
            CampaignArgs { jobs: act_fleet::default_workers(), out: None, no_timing: false };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--jobs" => {
                    i += 1;
                    let v = args.get(i).ok_or("--jobs needs a value")?;
                    parsed.jobs = v
                        .parse()
                        .map_err(|_| ActError::Parse(format!("bad --jobs value `{v}`")))?;
                }
                "--out" => {
                    i += 1;
                    parsed.out = Some(args.get(i).ok_or("--out needs a value")?.clone());
                }
                "--no-timing" => parsed.no_timing = true,
                other => return Err(ActError::Parse(format!("unknown flag `{other}`"))),
            }
            i += 1;
        }
        Ok(parsed)
    }
}

/// Run `spec` with the binaries' shared CLI conventions: resolve the
/// executor, fan out, optionally write the JSON report, and print a timing
/// footer. The caller prints the table itself (header + `report.lines()`).
pub fn run_cli_campaign(spec: &CampaignSpec, args: &[String]) -> Result<CampaignReport, ActError> {
    let args = CampaignArgs::parse(args)?;
    let exec = executor_for(spec)?;
    let report = run_campaign(spec, args.jobs, exec);
    if let Some(path) = &args.out {
        let json = if args.no_timing { report.deterministic_json() } else { report.json() };
        std::fs::write(path, json).map_err(|e| ActError::io(format!("cannot write {path}"), e))?;
    }
    Ok(report)
}

/// The standard timing footer the binaries print after their table.
pub fn timing_footer(report: &CampaignReport) -> String {
    let t = &report.timing;
    format!(
        "campaign {}: {} jobs on {} workers | wall {:.1}s, serial-equivalent {:.1}s, speedup {:.2}x{}",
        report.spec.name,
        report.aggregate.total,
        t.workers,
        t.total_ms / 1e3,
        t.sum_job_ms / 1e3,
        t.speedup,
        if report.aggregate.crashed > 0 {
            format!(" | {} job(s) CRASHED", report.aggregate.crashed)
        } else {
            String::new()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_expand_to_expected_grids() {
        assert_eq!(table5_spec().expand().len(), 11);
        assert_eq!(table4_spec().expand().len(), kernels::all().len());
        assert_eq!(fig8_spec().expand().len(), kernels::all().len());
        assert_eq!(ablation_spec().expand().len(), 5 * 5);
    }

    #[test]
    fn executor_resolution() {
        assert!(executor_for(&table5_spec()).is_ok());
        let mut bad = table5_spec();
        bad.kind = "nonsense".into();
        assert!(executor_for(&bad).is_err());
    }

    #[test]
    fn gateway_param_resolves_remote_kinds_only() {
        for kind in ["train", "diagnose"] {
            let mut spec = CampaignSpec::new("remote", kind, &["seq"]);
            spec.params.insert("gateway".into(), "127.0.0.1:7412".into());
            assert!(executor_for(&spec).is_ok(), "kind {kind} must go remote");
        }
        let mut spec = CampaignSpec::new("remote", "overhead", &["seq"]);
        spec.params.insert("gateway".into(), "127.0.0.1:7412".into());
        let err = match executor_for(&spec) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("overhead must not resolve through a gateway"),
        };
        assert!(err.contains("gateway"), "unhelpful error: {err}");
    }

    #[test]
    fn remote_report_scrubbers_drop_cache_state() {
        assert_eq!(
            strip_cache_tag("seq: seq_len=2 hidden=10 deps=37 [cache-hit:disk]"),
            "seq: seq_len=2 hidden=10 deps=37"
        );
        assert_eq!(strip_cache_tag("no tag at all"), "no tag at all");
        let header = "diagnosis workload=seq model=cache-hit ranked=1 logged=58 filter_pct=97.4";
        let clean = strip_model_token(header);
        assert_eq!(clean, "diagnosis workload=seq ranked=1 logged=58 filter_pct=97.4");
        assert_eq!(header_int(&clean, "ranked"), Some(1));
        assert_eq!(header_int(&clean, "logged"), Some(58));
        assert_eq!(header_int(&clean, "missing"), None);
    }

    #[test]
    fn remote_model_spec_honors_params() {
        let mut spec = CampaignSpec::new("remote", "train", &["seq"]);
        spec.params.insert("traces".into(), "4".into());
        spec.params.insert("seq_len".into(), "3".into());
        spec.params.insert("hidden".into(), "6".into());
        spec.params.insert("max_epochs".into(), "50".into());
        let model = remote_model_spec(&spec);
        assert_eq!((model.traces, model.seq_len, model.hidden, model.max_epochs), (4, 3, 6, 50));
    }

    #[test]
    fn campaign_args_parse_and_reject() {
        let ok =
            CampaignArgs::parse(&["--jobs".into(), "4".into(), "--out".into(), "r.json".into()])
                .unwrap();
        assert_eq!(ok.jobs, 4);
        assert_eq!(ok.out.as_deref(), Some("r.json"));
        assert!(!ok.no_timing);
        assert!(CampaignArgs::parse(&["--jobs".into()]).is_err());
        assert!(CampaignArgs::parse(&["--typo".into()]).is_err());
    }

    /// A tiny end-to-end run campaign: deterministic across worker counts.
    #[test]
    fn run_campaign_is_deterministic_across_worker_counts() {
        let mut spec = CampaignSpec::new("smoke", "run", &["fft", "lu"]);
        spec.seeds = vec![0, 1];
        let exec1 = executor_for(&spec).unwrap();
        let exec8 = executor_for(&spec).unwrap();
        let r1 = run_campaign(&spec, 1, exec1);
        let r8 = run_campaign(&spec, 8, exec8);
        assert_eq!(r1.deterministic_json(), r8.deterministic_json());
        assert_eq!(r1.aggregate.crashed, 0);
    }

    /// A train campaign pointed at a corpus trains from the stored traces
    /// (and crashes the job, not the campaign, when the corpus lacks them).
    #[test]
    fn train_campaign_reads_traces_from_a_corpus() {
        let dir = std::env::temp_dir().join(format!("act-bench-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut corpus = act_store::Corpus::init(&dir).unwrap();
        let w = lookup("seq");
        for (i, t) in collect_clean_traces(w.as_ref(), 0..8).iter().take(3).enumerate() {
            corpus.put_trace(&format!("seq-{i}"), "seq", t).unwrap();
        }
        drop(corpus);

        let mut spec = CampaignSpec::new("corpus-train", "train", &["seq", "fft"]);
        spec.params.insert("traces".into(), "3".into());
        spec.params.insert("corpus".into(), dir.display().to_string());
        let exec = executor_for(&spec).unwrap();
        let report = run_campaign(&spec, 2, exec);
        // `seq` trains from the store; `fft` has no stored traces, so its
        // job crashes in isolation.
        assert_eq!(report.aggregate.completed, 1, "seq trains from the corpus");
        assert_eq!(report.aggregate.crashed, 1, "fft has no corpus traces");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An unknown workload crashes its own job only.
    #[test]
    fn bad_workload_is_isolated() {
        let mut spec = CampaignSpec::new("iso", "run", &["fft", "no-such-workload"]);
        spec.seeds = vec![0];
        let exec = executor_for(&spec).unwrap();
        let report = run_campaign(&spec, 2, exec);
        assert_eq!(report.aggregate.completed, 1);
        assert_eq!(report.aggregate.crashed, 1);
    }
}
