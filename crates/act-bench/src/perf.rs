//! The tracked perf-bench harness behind the `perf` binary.
//!
//! ACT's premise is that per-dependence neural validation is cheap enough to
//! run on every retired RAW dependence (§III); the software model has to keep
//! the same discipline. This module measures the four rates that gate it —
//! steady-state classify throughput, online-training throughput, offline
//! training wall-clock, and the end-to-end `table4` campaign — and emits
//! `BENCH_hotpath.json` so the trajectory is recorded per PR instead of
//! asserted in prose.
//!
//! Schema (one JSON array, one object per measurement):
//!
//! ```json
//! [
//!   {"bench": "classify_predictions_per_sec", "before": 1.0e6,
//!    "value": 2.5e6, "unit": "ops/s", "jobs": 1}
//! ]
//! ```
//!
//! `before` is optional: the `perf` binary fills it by re-reading a baseline
//! file recorded before an optimization (`--baseline`). Throughput benches
//! (`ops/s`, `MB/s`) and the store's compression `ratio` are
//! higher-is-better; wall-clock benches (`s`) are lower-is-better.

use crate::campaign::{executor_for, table4_spec};
use crate::{act_cfg_for, collect_clean_traces, norm_of};
use act_core::encoding::{Encoder, FEATURES_PER_DEP};
use act_core::offline::offline_train;
use act_core::ActError;
use act_fleet::{run_campaign, CampaignSpec};
use act_nn::network::{Network, Topology};
use act_obs::{LocalCounter, Registry};
use act_sim::events::RawDep;
use act_store::column::{decode_chunk, encode_chunk, CHUNK_RECORDS};
use act_store::corpus::text_size_of;
use act_trace::event::TraceRecord;
use act_workloads::registry;
use std::time::{Duration, Instant};

/// One measurement row of `BENCH_hotpath.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Measurement name (stable across PRs; the trajectory key).
    pub bench: String,
    /// The same measurement from the recorded baseline, if one was given.
    pub before: Option<f64>,
    /// Measured value.
    pub value: f64,
    /// `"ops/s"`, `"MB/s"`, or `"ratio"` (higher is better) — or `"s"`
    /// (lower is better).
    pub unit: String,
    /// Worker threads the measurement used.
    pub jobs: usize,
}

impl BenchEntry {
    fn new(bench: &str, value: f64, unit: &str, jobs: usize) -> Self {
        BenchEntry { bench: bench.to_string(), before: None, value, unit: unit.to_string(), jobs }
    }

    /// Speedup over the baseline (`ops/s`: value/before; `s`: before/value).
    pub fn speedup(&self) -> Option<f64> {
        let before = self.before?;
        if before <= 0.0 || self.value <= 0.0 {
            return None;
        }
        Some(if self.unit == "s" { before / self.value } else { self.value / before })
    }

    /// Percent regression against the baseline, respecting the unit's
    /// direction (positive = worse, negative = improvement). This is what
    /// `perf --gate` compares to its threshold.
    pub fn regression_pct(&self) -> Option<f64> {
        Some((1.0 - self.speedup()?) * 100.0)
    }
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

/// Batch size between clock reads: large enough that `Instant::now` is
/// amortized away, small enough that the target duration is respected.
const BATCH: u64 = 5_000;

/// Calibrated throughput: run `op` in batches until `target` elapses and
/// return operations per second. The returned f32s are folded into a sink so
/// the optimizer cannot delete the loop.
fn throughput(target: Duration, mut op: impl FnMut() -> f32) -> f64 {
    let mut sink = 0.0f32;
    for _ in 0..BATCH {
        sink += op(); // warm-up: touch caches, fault in lazy state
    }
    // Best of three windows: on a small host a single window can land
    // entirely inside a slow scheduling regime, and the CI perf gate
    // needs repeated draws to cluster well inside its threshold.
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut ops = 0u64;
        loop {
            for _ in 0..BATCH {
                sink += op();
            }
            ops += BATCH;
            if start.elapsed() >= target {
                break;
            }
        }
        best = best.max(ops as f64 / start.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    best
}

/// Steady-state classify throughput: per retired dependence, slide the
/// input-generator window, encode the sequence, and run the forward pass —
/// exactly the per-dependence work of `ActModule::process` and of the
/// server-side `classify_trace` loop. The harness topology (N = 2, h = 10).
pub fn classify_predictions_per_sec(target: Duration) -> f64 {
    const SEQ_LEN: usize = 2;
    const IGB_CAP: usize = 8;
    let enc = Encoder::new(4096);
    let mut net = Network::random(Topology::new(FEATURES_PER_DEP * SEQ_LEN, 10), 0.2, 42);
    // A dependence ring with distinct PCs so the encoder's hash work is
    // realistic (constant inputs would let it fold). Power-of-two size and
    // a mask index: a `%` by a runtime length would put an integer divide
    // inside the measured op.
    let ring: [RawDep; 64] = std::array::from_fn(|i| {
        let i = i as u32;
        RawDep { store_pc: 17 * i + 3, load_pc: 29 * i + 7, inter_thread: i % 3 == 0 }
    });
    let mut igb = [ring[0]; IGB_CAP];
    let mut x: Vec<f32> = Vec::new();
    let mut pushed = 0usize;
    throughput(target, move || {
        // Mirror of `ActModule::process`: masked-ring push, then the last
        // SEQ_LEN entries (oldest first) encoded straight from the ring.
        igb[pushed & (IGB_CAP - 1)] = ring[pushed & 63];
        pushed += 1;
        if pushed < SEQ_LEN {
            return 0.0;
        }
        let start = pushed - SEQ_LEN;
        let window = (0..SEQ_LEN).map(|k| igb[(start + k) & (IGB_CAP - 1)]);
        enc.encode_iter_into(window, &mut x);
        net.predict(&x)
    })
}

/// The classify loop of [`classify_predictions_per_sec`] with live
/// observability on top: a [`LocalCounter`] bump per prediction, flushed
/// into a registered `act-obs` counter every 256 ops — the exact
/// per-module instrumentation pattern `ActModule` and the daemon use. The
/// gap between this and the plain classify bench *is* the enabled-but-idle
/// overhead of the obs layer; the acceptance budget is < 3%.
pub fn obs_classify_predictions_per_sec(target: Duration) -> f64 {
    const SEQ_LEN: usize = 2;
    const IGB_CAP: usize = 8;
    let enc = Encoder::new(4096);
    let mut net = Network::random(Topology::new(FEATURES_PER_DEP * SEQ_LEN, 10), 0.2, 42);
    let ring: [RawDep; 64] = std::array::from_fn(|i| {
        let i = i as u32;
        RawDep { store_pc: 17 * i + 3, load_pc: 29 * i + 7, inter_thread: i % 3 == 0 }
    });
    let registry = Registry::new();
    let predictions = registry.counter("predictions");
    let mut local = LocalCounter::default();
    let mut igb = [ring[0]; IGB_CAP];
    let mut x: Vec<f32> = Vec::new();
    let mut pushed = 0usize;
    let rate = throughput(target, move || {
        igb[pushed & (IGB_CAP - 1)] = ring[pushed & 63];
        pushed += 1;
        if pushed < SEQ_LEN {
            return 0.0;
        }
        let start = pushed - SEQ_LEN;
        let window = (0..SEQ_LEN).map(|k| igb[(start + k) & (IGB_CAP - 1)]);
        enc.encode_iter_into(window, &mut x);
        local.inc();
        if pushed & 255 == 0 {
            local.flush(&predictions);
        }
        net.predict(&x)
    });
    std::hint::black_box(registry.snapshot());
    rate
}

/// Volume-throughput variant of [`throughput`]: run `pass` (one sweep over
/// a fixed payload) until `target` elapses and scale passes/second by the
/// payload's size in MiB. The per-pass work-product count is folded into a
/// sink so the optimizer cannot delete the sweep.
fn mb_rate(target: Duration, mb_per_pass: f64, mut pass: impl FnMut() -> usize) -> f64 {
    let mut sink = pass(); // warm-up: touch caches, size scratch buffers
    let start = Instant::now();
    let mut passes = 0u64;
    loop {
        sink ^= pass();
        passes += 1;
        if start.elapsed() >= target {
            break;
        }
    }
    std::hint::black_box(sink);
    passes as f64 * mb_per_pass / start.elapsed().as_secs_f64()
}

/// The corpus-store bench payload: clean `lu` traces (the representative
/// workload of the store's compression bar), flattened to one record run,
/// priced in text-codec MiB — the volume a daemon ingests per `TRACE_PUT`.
fn store_bench_payload() -> (Vec<TraceRecord>, f64) {
    let w = registry::by_name("lu").expect("lu kernel registered");
    let traces = collect_clean_traces(w.as_ref(), 0..4);
    assert!(!traces.is_empty(), "lu produced no clean traces");
    let mut records = Vec::new();
    let mut raw = 0u64;
    for t in &traces {
        raw += text_size_of(t);
        records.extend(t.records.iter().cloned());
    }
    (records, raw as f64 / (1 << 20) as f64)
}

/// Columnar encode throughput of the trace store, in text-codec MiB
/// ingested per second — the `act-store` half of a `TRACE_PUT`.
pub fn store_encode_mb_per_sec(target: Duration) -> f64 {
    let (records, mb) = store_bench_payload();
    let mut out = Vec::new();
    mb_rate(target, mb, move || {
        out.clear();
        let mut n = 0usize;
        for chunk in records.chunks(CHUNK_RECORDS) {
            n += encode_chunk(chunk, &mut out);
        }
        n
    })
}

/// Columnar decode throughput of the trace store, in text-codec MiB of
/// reconstructed trace per second — the `act-store` half of a `TRACE_GET`
/// or a train-from-corpus read.
pub fn store_decode_mb_per_sec(target: Duration) -> f64 {
    let (records, mb) = store_bench_payload();
    let mut bodies = Vec::new();
    for chunk in records.chunks(CHUNK_RECORDS) {
        let mut body = Vec::new();
        encode_chunk(chunk, &mut body);
        bodies.push(body);
    }
    let mut recs = Vec::new();
    mb_rate(target, mb, move || {
        let mut n = 0usize;
        for body in &bodies {
            recs.clear();
            decode_chunk(body, &mut recs).expect("bench chunk decodes");
            n += recs.len();
        }
        n
    })
}

/// The store's compression ratio on the representative payload: text-codec
/// bytes over columnar-encoded bytes (the issue's acceptance bar is >= 3).
pub fn store_compression_ratio() -> f64 {
    let (records, _) = store_bench_payload();
    let raw: u64 = {
        let mut t = act_trace::event::Trace { records: records.clone(), code_len: 0 };
        t.code_len = 4096;
        text_size_of(&t)
    };
    let mut out = Vec::new();
    for chunk in records.chunks(CHUNK_RECORDS) {
        encode_chunk(chunk, &mut out);
    }
    raw as f64 / out.len().max(1) as f64
}

/// Online back-propagation throughput on the harness topology: the work of
/// one `Network::train` step in training mode.
pub fn online_train_steps_per_sec(target: Duration) -> f64 {
    let mut net = Network::random(Topology::new(10, 10), 0.2, 7);
    let xs: Vec<Vec<f32>> =
        (0..8usize).map(|k| (0..10).map(|j| ((k * j + 3) % 11) as f32 / 11.0).collect()).collect();
    let mut i = 0usize;
    throughput(target, move || {
        let o = net.train(&xs[i & 7], 1.0);
        i += 1;
        o
    })
}

/// Offline training wall-clock on the `fft` kernel over a real topology
/// grid (the default `M²` search is what the parallel fan-out accelerates).
pub fn offline_train_wall_s(quick: bool, jobs: usize) -> f64 {
    let w = registry::by_name("fft").expect("fft kernel registered");
    let want = if quick { 4 } else { 8 };
    let traces: Vec<_> =
        collect_clean_traces(w.as_ref(), 0..want as u64 * 2).into_iter().take(want).collect();
    assert!(!traces.is_empty(), "fft produced no clean traces");
    let mut cfg = act_cfg_for(w.as_ref());
    cfg.search.seq_lens = if quick { vec![2] } else { vec![1, 2] };
    cfg.search.hidden_sizes = if quick { vec![4, 10] } else { vec![2, 4, 6, 8, 10] };
    cfg.train.max_epochs = if quick { 60 } else { 120 };
    cfg.search_workers = jobs;
    let start = Instant::now();
    let trained = offline_train(norm_of(w.as_ref()), &traces, &cfg);
    std::hint::black_box(trained.report.candidates);
    start.elapsed().as_secs_f64()
}

/// End-to-end `table4` campaign wall-clock (offline training of every clean
/// kernel; quick mode trains a three-kernel subset).
pub fn table4_wall_s(quick: bool, jobs: usize) -> f64 {
    let spec = if quick {
        let mut s = CampaignSpec::new("table4-quick", "train", &["lu", "fft", "swaptions"]);
        s.params.insert("traces".into(), "4".into());
        s
    } else {
        table4_spec()
    };
    let exec = executor_for(&spec).expect("train executor resolves");
    let start = Instant::now();
    let report = run_campaign(&spec, jobs, exec);
    assert_eq!(report.aggregate.crashed, 0, "table4 bench job crashed");
    start.elapsed().as_secs_f64()
}

/// End-to-end gateway DIAGNOSE round-trips per second: two in-process
/// act-serve backends behind an act-gate gateway, one pre-trained tiny
/// `seq` model, then timed DIAGNOSE exchanges through the gateway — each
/// op is a full connect + frame + shard + forward + cache-hit diagnose +
/// relay. Timed one op at a time, not with [`throughput`]'s batching: one
/// op is a millisecond-scale network round trip, so a 5000-op batch would
/// overshoot the target a thousandfold.
pub fn gate_diagnose_rps(target: Duration) -> f64 {
    use act_serve::{ServeConfig, Server};
    let backends: Vec<Server> = (0..2)
        .map(|_| {
            Server::start(ServeConfig {
                tcp_addr: Some("127.0.0.1:0".to_string()),
                workers: 2,
                queue_depth: 32,
                ..ServeConfig::default()
            })
            .expect("bench backend boots")
        })
        .collect();
    let gate = act_gate::Gateway::start(act_gate::GateConfig {
        backends: backends.iter().map(|b| b.tcp_addr().expect("tcp").to_string()).collect(),
        ..act_gate::GateConfig::default()
    })
    .expect("bench gateway boots");
    let client = act_client::Client::builder()
        .addr(gate.tcp_addr().to_string())
        .build()
        .expect("endpoint is set");

    let mut spec = act_serve::ModelSpec::new("seq");
    spec.traces = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    let trace = crate::campaign::failing_trace_bytes("seq", 0);
    // Warm-up trains the model once; every timed op then measures the
    // serving path, not offline training.
    client.train(&spec).expect("gate bench warm-up train");

    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed() < target {
        client.diagnose(&spec, &trace).expect("gate bench diagnose");
        ops += 1;
    }
    let rate = ops as f64 / start.elapsed().as_secs_f64();
    gate.shutdown();
    gate.join();
    for b in backends {
        b.shutdown();
        b.join();
    }
    rate
}

/// DIAGNOSE round-trips per second against a single act-serve daemon at a
/// given pipeline depth. Depth 1 is the classic one-shot exchange (a
/// fresh connection per request, one request on the wire at a time);
/// larger depths ride one multiplexed protocol-v4 session with `depth`
/// requests in flight, so the daemon's queue never drains between ops and
/// the per-request connect/teardown round trips disappear. The ratio of
/// a depth-8 run over a depth-1 run is the bench's reason to exist.
pub fn pipelined_diagnose_rps(target: Duration, depth: u32) -> f64 {
    use act_serve::{Reply, Request, ServeConfig, Server};
    use std::collections::VecDeque;
    let server = Server::start(ServeConfig {
        tcp_addr: Some("127.0.0.1:0".to_string()),
        workers: 2,
        queue_depth: 32,
        // Coalescing off: this bench prices *per-request* dispatch, and is
        // the denominator `batched_diagnose_rps` is compared against.
        batch_size: 1,
        batch_wait: Duration::ZERO,
        ..ServeConfig::default()
    })
    .expect("bench daemon boots");
    let client = act_client::Client::builder()
        .addr(server.tcp_addr().expect("tcp").to_string())
        .pipeline_depth(depth)
        .build()
        .expect("endpoint is set");

    let mut spec = act_serve::ModelSpec::new("seq");
    spec.traces = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    let trace = crate::campaign::failing_trace_bytes("seq", 0);
    // Warm-up trains the model once; every timed op is then a cache-hit
    // classify, so the depths compare transport overhead, not training.
    client.train(&spec).expect("pipelined bench warm-up train");

    // Same methodology as `batched_diagnose_rps` (whose recorded speedup
    // divides by this row): full-length windows, best of three trials, so
    // scheduler-interleaving noise on a small host cancels out of the
    // batched/pipelined ratio instead of inflating it.
    let window = target.max(Duration::from_millis(600));
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut ops = 0u64;
        if depth <= 1 {
            while start.elapsed() < window {
                client.diagnose(&spec, &trace).expect("pipelined bench diagnose");
                ops += 1;
            }
        } else {
            let session = client.pipeline().expect("v4 session opens");
            let mut pending = VecDeque::new();
            while start.elapsed() < window {
                while pending.len() < depth as usize {
                    let req = Request::Diagnose(spec.clone(), trace.clone());
                    pending.push_back(session.call(&req).expect("pipelined call enqueues"));
                }
                match pending.pop_front().expect("window is full").wait() {
                    Ok(Reply::Diagnosis(_)) => ops += 1,
                    other => panic!("pipelined bench diagnose: {other:?}"),
                }
            }
            for p in pending {
                let _ = p.wait(); // drain the tail so the next trial starts clean
            }
        }
        best = best.max(ops as f64 / start.elapsed().as_secs_f64());
    }
    server.shutdown();
    server.join();
    best
}

/// DIAGNOSE round-trips per second against a daemon with its coalescing
/// scheduler on (micro-batches of up to `batch` same-model requests), fed
/// by a pipelined v4 session deep enough to keep the queue stocked. The
/// counterpart of [`pipelined_diagnose_rps`] — same host, same spec, same
/// trace — so the two rows isolate exactly what coalescing buys. Before
/// timing, one diagnosis from the batching daemon is compared
/// byte-for-byte against one from a non-batching daemon: coalescing must
/// be invisible in the reply bytes, or the speedup is disqualified.
pub fn batched_diagnose_rps(target: Duration, batch: usize) -> f64 {
    use act_serve::{Reply, Request, ServeConfig, Server};
    use std::collections::VecDeque;
    let boot = |batch_size: usize, batch_wait: Duration| {
        Server::start(ServeConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            workers: 2,
            queue_depth: 64,
            batch_size,
            batch_wait,
            ..ServeConfig::default()
        })
        .expect("bench daemon boots")
    };
    // Zero gather wait (the server default): batches form from queue
    // backlog alone. Measured on the reference host, any non-zero wait
    // only subtracts throughput — the gathered members stall with the
    // waiting leader.
    let server = boot(batch, Duration::ZERO);
    let depth = (2 * batch).max(4) as u32;
    let client = act_client::Client::builder()
        .addr(server.tcp_addr().expect("tcp").to_string())
        .pipeline_depth(depth)
        .build()
        .expect("endpoint is set");

    let mut spec = act_serve::ModelSpec::new("seq");
    spec.traces = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    let trace = crate::campaign::failing_trace_bytes("seq", 0);
    client.train(&spec).expect("batched bench warm-up train");

    // Byte-identity gate: training is deterministic, so a separate
    // non-batching daemon produces the same model and its sequential
    // diagnosis must match the batched one byte-for-byte.
    let batched_reply = client.diagnose(&spec, &trace).expect("batched bench diagnose");
    {
        let sequential = boot(1, Duration::ZERO);
        let seq_client = act_client::Client::builder()
            .addr(sequential.tcp_addr().expect("tcp").to_string())
            .build()
            .expect("endpoint is set");
        seq_client.train(&spec).expect("sequential warm-up train");
        let seq_reply = seq_client.diagnose(&spec, &trace).expect("sequential diagnose");
        assert_eq!(
            batched_reply, seq_reply,
            "batched diagnosis must be byte-identical to sequential"
        );
        sequential.shutdown();
        sequential.join();
    }

    // Coalescing throughput on a small host depends on how the client and
    // worker threads happen to interleave (that is what decides batch
    // formation), and one scheduling regime can dominate a short window.
    // So this bench ignores quick mode's shorter target — a truncated
    // window here is pure noise — and takes the best of five full-length
    // trials over one warm session; this is what lets ci.sh gate the
    // number at a 10% threshold.
    let window = target.max(Duration::from_millis(600));
    let session = client.pipeline().expect("v4 session opens");
    let mut best = 0.0f64;
    for _ in 0..5 {
        let start = Instant::now();
        let mut ops = 0u64;
        let mut pending = VecDeque::new();
        while start.elapsed() < window {
            while pending.len() < depth as usize {
                let req = Request::Diagnose(spec.clone(), trace.clone());
                pending.push_back(session.call(&req).expect("batched call enqueues"));
            }
            match pending.pop_front().expect("window is full").wait() {
                Ok(Reply::Diagnosis(_)) => ops += 1,
                other => panic!("batched bench diagnose: {other:?}"),
            }
        }
        for p in pending {
            let _ = p.wait(); // drain the tail so the next trial starts clean
        }
        best = best.max(ops as f64 / start.elapsed().as_secs_f64());
    }
    server.shutdown();
    server.join();
    best
}

/// Model-cache hit lookups per second with `threads` threads hammering the
/// same key — the read path a coalesced batch leans on. The cache serves
/// hits through a shared read lock with an atomic LRU stamp, so adding
/// threads must not collapse throughput the way a mutex-serialized map
/// would.
pub fn cache_hit_lookups_per_sec(target: Duration, threads: usize) -> f64 {
    use act_serve::ModelCache;
    let cache = std::sync::Arc::new(ModelCache::new(4, None));
    let mut spec = act_serve::ModelSpec::new("seq");
    spec.traces = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    cache.get_or_train(&spec).expect("bench model trains");

    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.max(1))
            .map(|_| {
                let cache = cache.clone();
                let spec = spec.clone();
                s.spawn(move || {
                    let start = Instant::now();
                    let mut ops = 0u64;
                    while start.elapsed() < target {
                        let (_, outcome) = cache.get_or_train(&spec).expect("bench cache hit");
                        assert_eq!(outcome, act_serve::CacheOutcome::Memory);
                        ops += 1;
                    }
                    ops
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench thread")).sum()
    });
    total as f64 / target.as_secs_f64()
}

/// Run the full suite. `jobs` is the worker count for the parallel variants
/// of the wall-clock benches (entries are only emitted when `jobs > 1`, so
/// a single-core host produces one row per bench). `only` restricts the
/// suite to benches whose name contains any of the comma-separated
/// filters (substring match) — `perf --only obs` runs just the
/// observability-overhead measurement, `--only classify,batched` the
/// CI-gated pair.
pub fn run_all(quick: bool, jobs: usize, only: Option<&str>) -> Vec<BenchEntry> {
    let target = if quick { Duration::from_millis(150) } else { Duration::from_millis(600) };
    let want = |name: &str| {
        only.map_or(true, |f| f.split(',').any(|part| !part.is_empty() && name.contains(part)))
    };
    let mut entries = Vec::new();
    if want("classify_predictions_per_sec") {
        entries.push(BenchEntry::new(
            "classify_predictions_per_sec",
            classify_predictions_per_sec(target),
            "ops/s",
            1,
        ));
    }
    if want("obs_classify_predictions_per_sec") {
        entries.push(BenchEntry::new(
            "obs_classify_predictions_per_sec",
            obs_classify_predictions_per_sec(target),
            "ops/s",
            1,
        ));
    }
    if want("online_train_steps_per_sec") {
        entries.push(BenchEntry::new(
            "online_train_steps_per_sec",
            online_train_steps_per_sec(target),
            "ops/s",
            1,
        ));
    }
    if want("offline_train_wall_s") {
        entries.push(BenchEntry::new(
            "offline_train_wall_s",
            offline_train_wall_s(quick, 1),
            "s",
            1,
        ));
        if jobs > 1 {
            entries.push(BenchEntry::new(
                "offline_train_wall_s",
                offline_train_wall_s(quick, jobs),
                "s",
                jobs,
            ));
        }
    }
    if want("store_encode_mb_per_sec") {
        entries.push(BenchEntry::new(
            "store_encode_mb_per_sec",
            store_encode_mb_per_sec(target),
            "MB/s",
            1,
        ));
    }
    if want("store_decode_mb_per_sec") {
        entries.push(BenchEntry::new(
            "store_decode_mb_per_sec",
            store_decode_mb_per_sec(target),
            "MB/s",
            1,
        ));
    }
    if want("store_compression_ratio") {
        entries.push(BenchEntry::new(
            "store_compression_ratio",
            store_compression_ratio(),
            "ratio",
            1,
        ));
    }
    if want("gate_diagnose_rps") {
        entries.push(BenchEntry::new("gate_diagnose_rps", gate_diagnose_rps(target), "ops/s", 1));
    }
    if want("pipelined_diagnose_rps") {
        // `jobs` records the pipeline depth: the depth-8 row over the
        // depth-1 row is the pipelining speedup.
        entries.push(BenchEntry::new(
            "pipelined_diagnose_rps",
            pipelined_diagnose_rps(target, 1),
            "ops/s",
            1,
        ));
        entries.push(BenchEntry::new(
            "pipelined_diagnose_rps",
            pipelined_diagnose_rps(target, 8),
            "ops/s",
            8,
        ));
    }
    if want("batched_diagnose_rps") {
        // `jobs` records the batch bound, mirroring how the pipelined
        // rows record depth.
        entries.push(BenchEntry::new(
            "batched_diagnose_rps",
            batched_diagnose_rps(target, 16),
            "ops/s",
            16,
        ));
    }
    if want("cache_hit_lookups_per_sec") {
        entries.push(BenchEntry::new(
            "cache_hit_lookups_per_sec",
            cache_hit_lookups_per_sec(target, 1),
            "ops/s",
            1,
        ));
        // Four threads on one key: the contention row. The thread count is
        // fixed (not `jobs`) so the row is comparable across hosts.
        entries.push(BenchEntry::new(
            "cache_hit_lookups_per_sec",
            cache_hit_lookups_per_sec(target, 4),
            "ops/s",
            4,
        ));
    }
    if want("table4_wall_s") {
        entries.push(BenchEntry::new("table4_wall_s", table4_wall_s(quick, 1), "s", 1));
        if jobs > 1 {
            entries.push(BenchEntry::new("table4_wall_s", table4_wall_s(quick, jobs), "s", jobs));
        }
    }
    entries
}

/// The baseline row a bench compares against when the baseline file has no
/// row of its own name. `obs_classify_predictions_per_sec` falls back to
/// the *plain* classify bench: baselines recorded before the obs layer
/// existed still price its overhead (the speedup column then reads
/// directly as obs-on vs obs-off).
fn baseline_name(bench: &str) -> &str {
    match bench {
        "obs_classify_predictions_per_sec" => "classify_predictions_per_sec",
        other => other,
    }
}

/// Fill each entry's `before` from a baseline run: exact `(bench, jobs)`
/// match first, then the baseline's serial (`jobs = 1`) row — so a parallel
/// row still compares against the pre-optimization serial baseline when the
/// baseline predates the parallel path. A bench absent from the baseline
/// entirely falls back through [`baseline_name`].
pub fn merge_baseline(entries: &mut [BenchEntry], baseline: &[BenchEntry]) {
    for e in entries {
        let row = |name: &str, jobs: Option<usize>| {
            baseline.iter().find(|b| b.bench == name && jobs.map_or(true, |j| b.jobs == j))
        };
        e.before = row(&e.bench, Some(e.jobs))
            .or_else(|| row(&e.bench, Some(1)))
            .or_else(|| row(baseline_name(&e.bench), Some(1)))
            .map(|b| b.value);
    }
}

// ---------------------------------------------------------------------
// JSON (hand-rolled, like act-fleet's report: the workspace is offline)
// ---------------------------------------------------------------------

/// Render entries as the `BENCH_hotpath.json` array.
pub fn render_json(entries: &[BenchEntry]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("  {");
        write!(out, "\"bench\":\"{}\"", e.bench).expect("string write");
        if let Some(b) = e.before {
            write!(out, ",\"before\":{b}").expect("string write");
        }
        write!(out, ",\"value\":{},\"unit\":\"{}\",\"jobs\":{}", e.value, e.unit, e.jobs)
            .expect("string write");
        out.push('}');
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Strict parser for the schema above (and only it): an array of flat
/// objects whose values are strings or numbers. Anything else — unknown
/// keys, missing fields, trailing garbage — is an error, which is exactly
/// what `ci.sh` wants from "malformed".
pub fn parse_json(text: &str) -> Result<Vec<BenchEntry>, ActError> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    p.ws();
    p.expect(b'[')?;
    let mut entries = Vec::new();
    p.ws();
    if !p.eat(b']') {
        loop {
            entries.push(p.object()?);
            p.ws();
            if p.eat(b',') {
                p.ws();
                continue;
            }
            p.expect(b']')?;
            break;
        }
    }
    p.ws();
    if p.i != p.b.len() {
        return Err(ActError::Parse(format!("trailing garbage at byte {}", p.i)));
    }
    Ok(entries)
}

/// Validate a `BENCH_hotpath.json` body; returns the entry count.
pub fn validate(text: &str) -> Result<usize, ActError> {
    let entries = parse_json(text)?;
    if entries.is_empty() {
        return Err(ActError::Parse("no bench entries".to_string()));
    }
    for e in &entries {
        if e.bench.is_empty() {
            return Err(ActError::Parse("empty bench name".to_string()));
        }
        if !(e.value.is_finite() && e.value > 0.0) {
            return Err(ActError::Parse(format!("{}: non-positive value {}", e.bench, e.value)));
        }
        if !matches!(e.unit.as_str(), "ops/s" | "MB/s" | "ratio" | "s") {
            return Err(ActError::Parse(format!("{}: unknown unit `{}`", e.bench, e.unit)));
        }
        if e.jobs == 0 {
            return Err(ActError::Parse(format!("{}: jobs must be >= 1", e.bench)));
        }
        if let Some(b) = e.before {
            if !(b.is_finite() && b > 0.0) {
                return Err(ActError::Parse(format!("{}: non-positive before {b}", e.bench)));
            }
        }
    }
    Ok(entries.len())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ActError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(ActError::Parse(format!("expected `{}` at byte {}", c as char, self.i)))
        }
    }

    fn string(&mut self) -> Result<String, ActError> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            if self.b[self.i] == b'\\' {
                return Err(ActError::Parse(format!("escapes unsupported at byte {}", self.i)));
            }
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| ActError::Parse("non-utf8 string".to_string()))?
            .to_string();
        self.expect(b'"')?;
        Ok(s)
    }

    fn number(&mut self) -> Result<f64, ActError> {
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| ActError::Parse(format!("bad number at byte {start}")))
    }

    fn object(&mut self) -> Result<BenchEntry, ActError> {
        self.expect(b'{')?;
        let (mut bench, mut before, mut value, mut unit, mut jobs) = (None, None, None, None, None);
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            match key.as_str() {
                "bench" => bench = Some(self.string()?),
                "unit" => unit = Some(self.string()?),
                "before" => before = Some(self.number()?),
                "value" => value = Some(self.number()?),
                "jobs" => jobs = Some(self.number()? as usize),
                other => return Err(ActError::Parse(format!("unknown key `{other}`"))),
            }
            self.ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            break;
        }
        Ok(BenchEntry {
            bench: bench.ok_or("missing `bench`")?,
            before,
            value: value.ok_or("missing `value`")?,
            unit: unit.ok_or("missing `unit`")?,
            jobs: jobs.ok_or("missing `jobs`")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchEntry> {
        vec![
            BenchEntry {
                bench: "classify_predictions_per_sec".into(),
                before: Some(1.0e6),
                value: 2.5e6,
                unit: "ops/s".into(),
                jobs: 1,
            },
            BenchEntry {
                bench: "table4_wall_s".into(),
                before: None,
                value: 2.75,
                unit: "s".into(),
                jobs: 4,
            },
        ]
    }

    #[test]
    fn json_round_trips() {
        let entries = sample();
        let text = render_json(&entries);
        let back = parse_json(&text).unwrap();
        assert_eq!(back, entries);
        assert_eq!(validate(&text).unwrap(), 2);
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate("").is_err());
        assert!(validate("[]").is_err(), "empty array is not a benchmark record");
        assert!(validate("[{\"bench\":\"x\"}]").is_err(), "missing fields");
        assert!(validate("[{\"bench\":\"x\",\"value\":0,\"unit\":\"s\",\"jobs\":1}]").is_err());
        assert!(
            validate("[{\"bench\":\"x\",\"value\":1,\"unit\":\"furlongs\",\"jobs\":1}]").is_err()
        );
        assert!(validate("[{\"bench\":\"x\",\"value\":1,\"unit\":\"s\",\"jobs\":0}]").is_err());
        assert!(
            validate("[{\"bench\":\"x\",\"value\":1,\"unit\":\"s\",\"jobs\":1,\"extra\":1}]")
                .is_err(),
            "unknown keys rejected"
        );
        assert!(validate("[{\"bench\":\"x\",\"value\":1,\"unit\":\"s\",\"jobs\":1}] tail").is_err());
    }

    #[test]
    fn speedup_respects_unit_direction() {
        let mut up = sample()[0].clone();
        assert!((up.speedup().unwrap() - 2.5).abs() < 1e-12);
        up.unit = "s".into(); // lower-is-better: 1e6 -> 2.5e6 s is a slowdown
        assert!(up.speedup().unwrap() < 1.0);
    }

    #[test]
    fn regression_pct_is_signed_and_direction_aware() {
        let mut e = sample()[0].clone(); // ops/s, 1.0e6 -> 2.5e6
        assert!((e.regression_pct().unwrap() - -150.0).abs() < 1e-9, "improvement is negative");
        e.value = 0.9e6; // 10% fewer ops/s
        assert!((e.regression_pct().unwrap() - 10.0).abs() < 1e-9);
        e.unit = "s".into(); // lower-is-better: 1.0s -> 0.9s is an improvement
        assert!(e.regression_pct().unwrap() < 0.0);
        e.before = None;
        assert_eq!(e.regression_pct(), None, "no baseline, no verdict");
    }

    #[test]
    fn baseline_merge_prefers_exact_then_serial() {
        let baseline = vec![
            BenchEntry { bench: "a".into(), before: None, value: 10.0, unit: "s".into(), jobs: 1 },
            BenchEntry { bench: "a".into(), before: None, value: 4.0, unit: "s".into(), jobs: 4 },
        ];
        let mut now = vec![
            BenchEntry { bench: "a".into(), before: None, value: 5.0, unit: "s".into(), jobs: 4 },
            BenchEntry { bench: "a".into(), before: None, value: 9.0, unit: "s".into(), jobs: 8 },
            BenchEntry { bench: "b".into(), before: None, value: 1.0, unit: "s".into(), jobs: 1 },
        ];
        merge_baseline(&mut now, &baseline);
        assert_eq!(now[0].before, Some(4.0), "exact (bench, jobs) match");
        assert_eq!(now[1].before, Some(10.0), "serial fallback");
        assert_eq!(now[2].before, None, "no baseline row");
    }
}
