//! Micro-benchmarks for the neural substrate: forward/backprop latency per
//! topology, and the hardware cycle models (pipeline vs NPU).

use act_nn::network::{Network, Topology};
use act_nn::npu::{pipeline_batch_cycles, NpuConfig};
use act_nn::pipeline::{NnPipeline, PipelineConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_forward");
    for (i, h) in [(4usize, 4usize), (8, 8), (10, 10)] {
        let mut net = Network::random(Topology::new(i, h), 0.2, 1);
        let x: Vec<f32> = (0..i).map(|k| k as f32 / i as f32).collect();
        group.bench_function(format!("{i}x{h}x1"), |b| {
            b.iter(|| black_box(net.predict(black_box(&x))))
        });
    }
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_backprop");
    for (i, h) in [(8usize, 8usize), (10, 10)] {
        let mut net = Network::random(Topology::new(i, h), 0.2, 1);
        let x: Vec<f32> = (0..i).map(|k| k as f32 / i as f32).collect();
        group.bench_function(format!("{i}x{h}x1"), |b| {
            b.iter(|| black_box(net.train(black_box(&x), 1.0)))
        });
    }
    group.finish();
}

fn bench_cycle_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_cycle_models");
    group.bench_function("pipeline_accept_drain", |b| {
        b.iter(|| {
            let mut p = NnPipeline::new(PipelineConfig::default());
            for t in 0..1000u64 {
                let _ = black_box(p.try_accept(t * 3));
            }
            p.stats()
        })
    });
    group.bench_function("npu_batch_1k", |b| {
        let npu = NpuConfig::default();
        b.iter(|| black_box(npu.batch_cycles(Topology::new(10, 10), 1000)))
    });
    group.bench_function("pipeline_batch_1k", |b| {
        b.iter(|| black_box(pipeline_batch_cycles(&PipelineConfig::default(), 1000)))
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_train, bench_cycle_models);
criterion_main!(benches);
