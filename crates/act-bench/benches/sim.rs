//! Micro-benchmarks for the simulator substrate: whole-kernel simulation
//! throughput with and without ACT attached (the per-run cost behind the
//! Fig 8 overhead experiment).

use act_bench::{act_cfg_for, machine_cfg, train_workload};
use act_core::diagnosis::run_with_act;
use act_core::weights::shared;
use act_sim::machine::Machine;
use act_workloads::registry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for name in ["fft", "bc"] {
        let w = registry::by_name(name).unwrap();
        let built = w.build(&w.default_params());
        group.bench_function(format!("{name}_plain"), |b| {
            b.iter(|| {
                let mut m = Machine::new(&built.program, machine_cfg(7));
                black_box(m.run())
            })
        });
        let trained = train_workload(w.as_ref(), 4, &act_cfg_for(w.as_ref()));
        let cfg = act_cfg_for(w.as_ref());
        group.bench_function(format!("{name}_with_act"), |b| {
            b.iter(|| {
                let store = shared(trained.store.clone());
                black_box(run_with_act(&built.program, machine_cfg(7), &cfg, &store).outcome)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
