//! Micro-benchmarks for the offline analyses: RAW extraction, input
//! generation, and prune-and-rank postprocessing.

use act_bench::{act_cfg_for, collect_clean_traces, norm_of, train_workload};
use act_core::module::DebugEntry;
use act_core::postprocess::postprocess;
use act_sim::events::RawDep;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::{positive_sequences, sequences_ext};
use act_trace::raw::observed_deps;
use act_workloads::registry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_trace_analysis(c: &mut Criterion) {
    let w = registry::by_name("lu").unwrap();
    let traces = collect_clean_traces(w.as_ref(), 0..2);
    let trace = &traces[0];
    let mut group = c.benchmark_group("trace_analysis");
    group.bench_function("observed_deps", |b| b.iter(|| black_box(observed_deps(trace))));
    let deps = observed_deps(trace);
    group.bench_function("input_gen_n2_cross4", |b| {
        b.iter(|| black_box(sequences_ext(&deps, 2, 4)))
    });
    group.finish();
}

fn bench_postprocess(c: &mut Criterion) {
    let w = registry::by_name("lu").unwrap();
    let traces = collect_clean_traces(w.as_ref(), 0..4);
    let mut set = CorrectSet::default();
    for t in &traces {
        for s in positive_sequences(&observed_deps(t), 2) {
            set.insert(&s.deps);
        }
    }
    // A debug buffer of 60 synthetic entries.
    let entries: Vec<DebugEntry> = (0..60u32)
        .map(|i| DebugEntry {
            deps: vec![
                RawDep { store_pc: i % 7, load_pc: 40 + i % 5, inter_thread: i % 2 == 0 },
                RawDep { store_pc: i % 11, load_pc: 50 + i % 3, inter_thread: false },
            ],
            output: 0.1,
            cycle: i as u64,
            tid: 0,
        })
        .collect();
    c.bench_function("prune_and_rank_60", |b| b.iter(|| black_box(postprocess(&entries, &set))));
}

fn bench_offline_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_training");
    group.sample_size(10);
    let w = registry::by_name("gzip").unwrap();
    let cfg = act_cfg_for(w.as_ref());
    group.bench_function("train_gzip_4_traces", |b| {
        b.iter(|| black_box(train_workload(w.as_ref(), 4, &cfg).report.seq_len))
    });
    let _ = norm_of(w.as_ref());
    group.finish();
}

criterion_group!(benches, bench_trace_analysis, bench_postprocess, bench_offline_training);
criterion_main!(benches);
