//! Fleet-level acceptance tests: an act-fleet campaign driven through an
//! act-gate gateway over real in-process act-serve backends.
//!
//! - Killing one of three backends mid-campaign loses zero requests, and
//!   the campaign report is byte-identical to the same campaign against a
//!   single-backend fleet (cache-state scrubbing + failover at work).
//! - Consistent-hash sharding keeps the fleet's cache hit rate within
//!   five points of a single backend's on a repeated campaign.

use act_bench::campaign::executor_for;
use act_fleet::{run_campaign, CampaignReport, CampaignSpec};
use act_gate::{GateConfig, Gateway};
use act_serve::{ServeConfig, Server};
use std::time::Duration;

fn boot_backend() -> Server {
    let cfg = ServeConfig {
        tcp_addr: Some("127.0.0.1:0".to_string()),
        workers: 2,
        queue_depth: 32,
        ..ServeConfig::default()
    };
    Server::start(cfg).expect("backend boots")
}

fn boot_gateway(backends: &[Server]) -> Gateway {
    let cfg = GateConfig {
        backends: backends.iter().map(|b| b.tcp_addr().expect("tcp").to_string()).collect(),
        connect_timeout: Duration::from_millis(500),
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(500),
        ..GateConfig::default()
    };
    Gateway::start(cfg).expect("gateway boots")
}

/// The small diagnose campaign both fleet shapes run.
fn diagnose_spec(gateway_addr: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::new("gate-diagnose", "diagnose", &["seq"]);
    spec.seeds = vec![0, 1, 2, 3];
    spec.params.insert("gateway".into(), gateway_addr.to_string());
    spec.params.insert("traces".into(), "2".into());
    spec.params.insert("hidden".into(), "4".into());
    spec.params.insert("max_epochs".into(), "30".into());
    spec
}

fn run_diagnose_campaign(gateway_addr: &str, pipeline_depth: usize) -> CampaignReport {
    let mut spec = diagnose_spec(gateway_addr);
    if pipeline_depth > 1 {
        spec.params.insert("pipeline_depth".into(), pipeline_depth.to_string());
    }
    let exec = executor_for(&spec).expect("remote executor");
    run_campaign(&spec, 2, exec)
}

#[test]
fn killing_a_backend_mid_campaign_loses_nothing_and_changes_nothing() {
    // Three-backend fleet, one backend killed while the campaign runs.
    let mut backends: Vec<Server> = (0..3).map(|_| boot_backend()).collect();
    let gate = boot_gateway(&backends);
    let victim = backends.pop().expect("three backends");
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        victim.shutdown();
        victim.join();
    });
    let fleet_report = run_diagnose_campaign(&gate.tcp_addr().to_string(), 1);
    killer.join().expect("killer thread");
    assert_eq!(
        fleet_report.aggregate.crashed,
        0,
        "zero failed requests despite the mid-campaign kill:\n{}",
        fleet_report.lines().collect::<Vec<_>>().join("\n")
    );
    gate.shutdown();
    gate.join();
    for b in backends {
        b.shutdown();
        b.join();
    }

    // The same campaign against a single-backend fleet.
    let single = vec![boot_backend()];
    let gate1 = boot_gateway(&single);
    let single_report = run_diagnose_campaign(&gate1.tcp_addr().to_string(), 1);
    assert_eq!(single_report.aggregate.crashed, 0);
    gate1.shutdown();
    gate1.join();
    for b in single {
        b.shutdown();
        b.join();
    }

    assert_eq!(
        fleet_report.deterministic_json(),
        single_report.deterministic_json(),
        "campaign results must not depend on fleet size or failover"
    );
}

/// Requests through one shared depth-8 session must produce the same
/// campaign report as one-connection-per-job — out-of-order completion
/// never leaks into results.
#[test]
fn pipeline_depth_changes_nothing_in_the_campaign_report() {
    let run_at = |depth: usize| {
        let backends = vec![boot_backend()];
        let gate = boot_gateway(&backends);
        let report = run_diagnose_campaign(&gate.tcp_addr().to_string(), depth);
        assert_eq!(report.aggregate.crashed, 0, "depth {depth}: crashed jobs");
        gate.shutdown();
        gate.join();
        for b in backends {
            b.shutdown();
            b.join();
        }
        report
    };
    let sequential = run_at(1);
    let pipelined = run_at(8);
    assert_eq!(
        sequential.deterministic_json(),
        pipelined.deterministic_json(),
        "campaign results must not depend on pipeline depth"
    );
}

/// Fleet-wide cache hit rate, read off the gateway's aggregated snapshot.
fn fleet_hit_rate(gate: &Gateway) -> f64 {
    let client = act_client::Client::builder()
        .addr(gate.tcp_addr().to_string())
        .build()
        .expect("endpoint is set");
    let status = client.status().expect("gateway status");
    let snap = status.metrics.expect("gateway replies with metrics");
    let c = |name: &str| snap.counter(name).unwrap_or(0) as f64;
    let hits =
        c("fleet.cache_memory_hits") + c("fleet.cache_disk_loads") + c("fleet.cache_store_loads");
    let misses = c("fleet.cache_trained");
    assert!(hits + misses > 0.0, "no cache traffic reached the fleet");
    100.0 * hits / (hits + misses)
}

#[test]
fn sharding_keeps_the_fleet_cache_hit_rate_close_to_single_backend() {
    let train_spec = |gateway_addr: &str| {
        let mut spec = CampaignSpec::new("gate-train", "train", &["seq", "fft", "lu"]);
        spec.seeds = vec![0, 1, 2, 3];
        spec.params.insert("gateway".into(), gateway_addr.to_string());
        spec.params.insert("traces".into(), "2".into());
        spec.params.insert("hidden".into(), "4".into());
        spec.params.insert("max_epochs".into(), "30".into());
        spec
    };
    // Run the identical campaign twice per fleet shape: the first run
    // trains every model cold, the repeat should be all cache hits —
    // *if* sharding sends each repeated key back to the backend that
    // trained it.
    let rate_for = |n: usize| {
        let backends: Vec<Server> = (0..n).map(|_| boot_backend()).collect();
        let gate = boot_gateway(&backends);
        let spec = train_spec(&gate.tcp_addr().to_string());
        for round in 0..2 {
            let exec = executor_for(&spec).expect("remote executor");
            let report = run_campaign(&spec, 2, exec);
            assert_eq!(report.aggregate.crashed, 0, "round {round} crashed jobs");
        }
        let rate = fleet_hit_rate(&gate);
        gate.shutdown();
        gate.join();
        for b in backends {
            b.shutdown();
            b.join();
        }
        rate
    };
    let single = rate_for(1);
    let sharded = rate_for(2);
    assert!(
        (single - sharded).abs() <= 5.0,
        "sharded hit rate {sharded:.1}% strays from single-backend {single:.1}%"
    );
}
