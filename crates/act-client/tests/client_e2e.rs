//! End-to-end client tests: boot an in-process `act-serve` daemon on an
//! ephemeral loopback port and drive it through the [`act_client::Client`]
//! façade at every transport depth.
//!
//! Covers the client/protocol-v4 acceptance criteria:
//! - typed methods produce identical results at pipeline depth 1 (one-shot
//!   v1–v3 framing) and depth 8 (multiplexed v4 session);
//! - streamed uploads (`TRACE_PUT_START`/`DIAGNOSE_START` + chunks) answer
//!   with byte-identical summaries to their one-frame twins;
//! - replies demultiplex out of order across a pipelined session;
//! - a connection killed mid-stream leaves no partial corpus segment;
//! - the in-flight window is negotiated down to the server's cap;
//! - any interleaving of pipelined v4 requests yields the same replies as
//!   the same requests issued sequentially over one-shot v3 (proptest);
//! - raw v1–v3 one-shot clients keep working bit-for-bit.

use act_client::{Client, ModelSpec, Reply, Request};
use act_serve::proto::{read_frame, write_frame, FrameKind};
use act_serve::server::{ServeConfig, Server};
use act_serve::Endpoint;
use act_store::{Corpus, EntryKind};
use act_trace::collector::TraceCollector;
use act_trace::io::trace_to_bytes;
use act_workloads::registry;
use proptest::prelude::*;
use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// Boot a daemon on 127.0.0.1:0 and return it with its client endpoint.
fn boot(cfg: ServeConfig) -> (Server, Endpoint) {
    let cfg = ServeConfig { tcp_addr: Some("127.0.0.1:0".to_string()), ..cfg };
    let server = Server::start(cfg).expect("daemon boots");
    let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp bound").to_string());
    (server, endpoint)
}

fn small(workers: usize, queue_depth: usize) -> ServeConfig {
    ServeConfig { workers, queue_depth, ..ServeConfig::default() }
}

/// A client for `endpoint` with snappy test timeouts.
fn client_at(endpoint: &Endpoint, depth: u32) -> Client {
    let builder = match endpoint {
        Endpoint::Tcp(addr) => Client::builder().addr(addr.clone()),
        Endpoint::Unix(path) => Client::builder().unix(path.clone()),
    };
    builder
        .timeouts(Duration::from_secs(2), Duration::from_secs(30))
        .pipeline_depth(depth)
        .build()
        .expect("client builds")
}

/// A small spec that trains in well under a second.
fn tiny_spec(workload: &str) -> ModelSpec {
    let mut spec = ModelSpec::new(workload);
    spec.traces = 2;
    spec.seq_len = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    spec
}

/// Serialize a `seq` run: failing when `failing`, else correct.
fn trace_bytes(base_seed: u64, failing: bool) -> Vec<u8> {
    let w = registry::by_name("seq").expect("seq workload");
    let norm = w.norm_code_len().unwrap_or_else(|| w.build(&w.default_params()).program.code_len());
    for seed in base_seed..base_seed + 64 {
        let params = if failing {
            w.default_params().triggered().with_seed(seed)
        } else {
            w.default_params().with_seed(seed)
        };
        let built = w.build(&params);
        let mut collector = TraceCollector::new(norm);
        let run_cfg =
            act_sim::config::MachineConfig { seed, jitter_ppm: 10_000, ..Default::default() };
        let mut machine = act_sim::machine::Machine::new(&built.program, run_cfg);
        let outcome = machine.run_observed(&mut collector);
        let wanted = if failing { built.is_failure(&outcome) } else { built.is_correct(&outcome) };
        if wanted {
            return trace_to_bytes(&collector.into_trace());
        }
    }
    panic!("no matching seq run in 64 seeds from {base_seed}");
}

fn scratch_corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("act-client-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn typed_methods_agree_between_depth_one_and_depth_eight() {
    let dir = scratch_corpus("typed");
    let cfg = ServeConfig { corpus_dir: Some(dir.clone()), ..small(2, 16) };
    let (server, endpoint) = boot(cfg);
    let spec = tiny_spec("seq");
    let failing = trace_bytes(0, true);
    let correct = trace_bytes(0, false);

    // Warm the model once so both depths diagnose against the same cache
    // state and the reports can be compared byte-for-byte.
    client_at(&endpoint, 1).train(&spec).expect("warm train");

    let mut reports = Vec::new();
    for depth in [1u32, 8] {
        let client = client_at(&endpoint, depth);
        let trained = client.train(&spec).expect("train");
        assert!(trained.contains("cache-hit"), "depth {depth}: {trained}");
        let report = client.diagnose(&spec, &failing).expect("diagnose");
        assert!(report.starts_with("diagnosis workload=seq"), "depth {depth}: {report}");
        let key = format!("clean-depth-{depth}");
        let stored = client.trace_put(&key, "seq", &correct).expect("trace put");
        assert!(stored.contains(&key), "depth {depth}: {stored}");
        let back = client.trace_get(&key).expect("trace get");
        assert_eq!(back, correct, "depth {depth}: trace round trip must be lossless");
        let status = client.status().expect("status");
        assert!(status.text.contains("requests_served"), "depth {depth}: {}", status.text);
        let snap = status.metrics.expect("v2+ metrics snapshot");
        if depth > 1 {
            assert!(snap.counter("req_hello").unwrap_or(0) >= 1, "session handshake counted");
            assert!(
                snap.counter("sessions_open").is_some() || snap.gauge("sessions_open").is_some()
            );
        }
        reports.push(report);
    }
    assert_eq!(reports[0], reports[1], "reports must be byte-identical at any pipeline depth");

    client_at(&endpoint, 1).shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_uploads_match_their_one_frame_twins() {
    let dir = scratch_corpus("stream");
    let cfg = ServeConfig { corpus_dir: Some(dir.clone()), ..small(2, 16) };
    let (server, endpoint) = boot(cfg);
    let spec = tiny_spec("seq");
    let failing = trace_bytes(0, true);
    let correct = trace_bytes(0, false);
    let client = client_at(&endpoint, 4);

    // One-frame and streamed TRACE_PUT of the same bytes: summaries differ
    // only in the key, and both read back losslessly.
    let one_frame = client.trace_put("one-frame", "seq", &correct).expect("one-frame put");
    let streamed =
        client.trace_put_streaming("streamed", "seq", &correct[..]).expect("streamed put");
    assert_eq!(
        one_frame.replace("one-frame", "KEY"),
        streamed.replace("streamed", "KEY"),
        "streamed and one-frame summaries must agree"
    );
    assert_eq!(client.trace_get("streamed").expect("get"), correct);

    // Materialized and streamed DIAGNOSE of the same trace: identical text.
    client.train(&spec).expect("warm");
    let materialized = client.diagnose(&spec, &failing).expect("diagnose");
    let streamed = client.diagnose_streaming(&spec, &failing[..]).expect("streamed diagnose");
    assert_eq!(materialized, streamed, "streamed diagnose must match the one-frame report");

    client.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_replies_demultiplex_out_of_order() {
    let (server, endpoint) = boot(small(2, 16));
    let client = client_at(&endpoint, 4);
    let session = client.pipeline().expect("session");

    let sleeper = |ms: u64| {
        let mut spec = ModelSpec::new("__sleep");
        spec.seed = ms;
        Request::Train(spec)
    };
    // The slow request is issued first; with two workers the fast one
    // finishes (and is demultiplexed) while the slow one still runs.
    let slow = session.call(&sleeper(400)).expect("send slow");
    let fast = session.call(&sleeper(10)).expect("send fast");
    let t0 = std::time::Instant::now();
    match fast.wait().expect("fast reply") {
        Reply::Trained(s) => assert_eq!(s, "slept 10ms"),
        other => panic!("unexpected fast reply: {other:?}"),
    }
    assert!(t0.elapsed() < Duration::from_millis(350), "fast reply must not wait for the slow one");
    match slow.wait().expect("slow reply") {
        Reply::Trained(s) => assert_eq!(s, "slept 400ms"),
        other => panic!("unexpected slow reply: {other:?}"),
    }

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn window_is_negotiated_down_to_the_server_cap() {
    let cfg = ServeConfig { session_window: 2, ..small(1, 8) };
    let (server, endpoint) = boot(cfg);

    let session =
        act_client::session::Session::open(&endpoint, &act_client::ClientConfig::default(), 8)
            .expect("session opens");
    assert_eq!(session.window(), 2, "server caps the asked-for window");
    drop(session);

    client_at(&endpoint, 1).shutdown().expect("shutdown");
    server.join();
}

#[test]
fn mid_stream_kill_leaves_no_partial_corpus_segment() {
    let dir = scratch_corpus("kill");
    let cfg = ServeConfig { corpus_dir: Some(dir.clone()), ..small(1, 8) };
    let (server, endpoint) = boot(cfg);
    let addr = match &endpoint {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("tcp endpoint expected, got {other}"),
    };
    let correct = trace_bytes(0, false);

    // Open a raw v4 session, start a chunked TRACE_PUT, feed half the
    // trace, then kill the socket without STREAM_END.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut stream, &Request::Hello { window: 2 }.to_frame().with_request(0))
        .expect("hello");
    let ack = read_frame(&mut stream).expect("hello ack");
    assert_eq!(ack.kind, FrameKind::HelloAck);
    let start = Request::TracePutStart { key: "half".into(), workload: "seq".into() };
    write_frame(&mut stream, &start.to_frame().with_request(1)).expect("start");
    let half = &correct[..correct.len() / 2];
    write_frame(&mut stream, &Request::StreamChunk(half.to_vec()).to_frame().with_request(1))
        .expect("chunk");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(100)); // let the server ingest the chunk
    stream.shutdown(Shutdown::Both).expect("kill connection");
    drop(stream);
    std::thread::sleep(Duration::from_millis(200)); // let the session clean up

    // The daemon still serves, and the key was never published.
    let client = client_at(&endpoint, 1);
    let err = client.trace_get("half").expect_err("half-streamed key must not exist");
    assert!(err.to_string().contains("trace get failed"), "got {err}");
    client.shutdown().expect("shutdown");
    server.join();

    // Offline reopen: recovery finds no trace of the aborted stream.
    let corpus = Corpus::open(&dir).expect("corpus reopens cleanly");
    assert!(!corpus.contains(EntryKind::Trace, "half"), "no partial entry may survive");
    assert_eq!(corpus.entries(None).len(), 0, "corpus must be empty after the aborted stream");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn raw_v1_to_v3_one_shot_clients_still_work() {
    let (server, endpoint) = boot(small(1, 8));
    let addr = match &endpoint {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("tcp endpoint expected, got {other}"),
    };

    for version in 1u8..=3 {
        // STATUS: v1 gets the plain text frame, v2/v3 the metrics frame —
        // exactly as before the v4 redesign, stamped with the asked version.
        let mut stream = TcpStream::connect(&addr).expect("connect");
        write_frame(&mut stream, &Request::Status.to_frame().with_version(version))
            .expect("send status");
        stream.flush().expect("flush");
        let frame = read_frame(&mut stream).expect("status reply");
        assert_eq!(frame.version, version, "reply restamped for the v{version} requester");
        let expected = if version == 1 { FrameKind::StatusText } else { FrameKind::StatusMetrics };
        assert_eq!(frame.kind, expected, "v{version} status frame kind");
        assert_eq!(frame.request_id, 0, "pre-v4 frames carry no request id");

        // A worker-path request round-trips too.
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let mut spec = ModelSpec::new("__sleep");
        spec.seed = 1;
        write_frame(&mut stream, &Request::Train(spec).to_frame().with_version(version))
            .expect("send train");
        stream.flush().expect("flush");
        let frame = read_frame(&mut stream).expect("train reply");
        assert_eq!(frame.version, version);
        match Reply::from_frame(&frame).expect("decode") {
            Reply::Trained(s) => assert_eq!(s, "slept 1ms"),
            other => panic!("unexpected v{version} reply: {other:?}"),
        }
    }

    client_at(&endpoint, 1).shutdown().expect("shutdown");
    server.join();
}

/// The fixed request vocabulary the equivalence property draws from. All
/// replies are deterministic and order-independent: fault-hook sleeps echo
/// their duration, diagnoses hit the pre-warmed model cache, and trace
/// gets return pre-stored bytes.
struct Vocabulary {
    endpoint: Endpoint,
    spec: ModelSpec,
    failing: Vec<u8>,
    stored: Vec<(String, Vec<u8>)>,
}

impl Vocabulary {
    fn request(&self, op: u8) -> Request {
        match op % 5 {
            0 | 1 => {
                let mut spec = ModelSpec::new("__sleep");
                spec.seed = 5 + (op as u64 % 7) * 3;
                Request::Train(spec)
            }
            2 => Request::Diagnose(self.spec.clone(), self.failing.clone()),
            3 => Request::TraceGet { key: self.stored[0].0.clone() },
            _ => Request::TraceGet { key: self.stored[1].0.clone() },
        }
    }
}

/// Render a reply for multiset comparison.
fn fingerprint(reply: &Reply) -> String {
    format!("{reply:?}")
}

fn equivalence_fixture() -> &'static Vocabulary {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(Server, Vocabulary)> = OnceLock::new();
    let (_, vocab) = FIXTURE.get_or_init(|| {
        let dir = scratch_corpus("prop");
        let cfg = ServeConfig { corpus_dir: Some(dir.clone()), ..small(2, 64) };
        let (server, endpoint) = boot(cfg);
        let spec = tiny_spec("seq");
        let failing = trace_bytes(0, true);
        let client = client_at(&endpoint, 1);
        client.train(&spec).expect("warm model");
        let stored: Vec<(String, Vec<u8>)> = [(0u64, "prop-a"), (100, "prop-b")]
            .into_iter()
            .map(|(seed, key)| {
                let bytes = trace_bytes(seed, false);
                client.trace_put(key, "seq", &bytes).expect("seed corpus");
                (key.to_string(), bytes)
            })
            .collect();
        (server, Vocabulary { endpoint, spec, failing, stored })
    });
    vocab
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn any_pipelined_interleaving_matches_sequential_v3(
        depth in 2u32..6,
        plan in prop::collection::vec((any::<u8>(), any::<u8>()), 1..10),
    ) {
        let vocab = equivalence_fixture();

        // Sequential baseline: the same requests one at a time over raw
        // one-shot v3 connections.
        let mut expected = Vec::new();
        for (op, _) in &plan {
            let req = vocab.request(*op);
            let addr = match &vocab.endpoint {
                Endpoint::Tcp(addr) => addr.clone(),
                other => panic!("tcp endpoint expected, got {other}"),
            };
            let mut stream = TcpStream::connect(&addr).expect("connect");
            write_frame(&mut stream, &req.to_frame().with_version(3)).expect("send v3");
            let frame = read_frame(&mut stream).expect("v3 reply");
            expected.push(fingerprint(&Reply::from_frame(&frame).expect("decode")));
        }

        // Pipelined run: same requests over one v4 session, issue/wait
        // order driven by the generated plan, replies collected per id.
        let session = act_client::session::Session::open(
            &vocab.endpoint,
            &act_client::ClientConfig::default(),
            depth,
        ).expect("session opens");
        let mut pending: Vec<(usize, act_client::session::Pending)> = Vec::new();
        let mut got: Vec<Option<String>> = vec![None; plan.len()];
        for (i, (op, pick)) in plan.iter().enumerate() {
            // Keep strictly under the granted window so `call` never blocks;
            // drain a plan-chosen pending once the window fills.
            while pending.len() >= session.window() as usize {
                let victim = (*pick as usize) % pending.len();
                let (slot, p) = pending.swap_remove(victim);
                got[slot] = Some(fingerprint(&p.wait().expect("pipelined reply")));
            }
            pending.push((i, session.call(&vocab.request(*op)).expect("send pipelined")));
        }
        while let Some((slot, p)) = pending.pop() {
            got[slot] = Some(fingerprint(&p.wait().expect("pipelined reply")));
        }
        let got: Vec<String> = got.into_iter().map(|g| g.expect("every reply collected")).collect();

        prop_assert_eq!(got, expected);
    }
}
