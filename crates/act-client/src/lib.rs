//! `act-client` — the one public client façade for the ACT service.
//!
//! Everything that talks to an `act serve` daemon or an `act gate`
//! gateway goes through [`Client`]: the CLI, the benchmark harness, and
//! the gateway's own backend connections. A client is configured once
//! through [`Client::builder`] and then used concurrently from any number
//! of threads:
//!
//! ```no_run
//! use act_client::Client;
//! use std::time::Duration;
//!
//! let client = Client::builder()
//!     .addr("127.0.0.1:7411")
//!     .timeouts(Duration::from_secs(5), Duration::from_secs(120))
//!     .retry(Duration::from_millis(100), 42)
//!     .pipeline_depth(8)
//!     .build()?;
//! let report = client.train(&act_client::ModelSpec {
//!     workload: "seq".into(),
//!     seed: 7,
//!     traces: 4,
//!     seq_len: 3,
//!     hidden: 8,
//!     max_epochs: 50,
//! })?;
//! println!("{report}");
//! # Ok::<(), act_client::ActError>(())
//! ```
//!
//! Transport selection is automatic: with `pipeline_depth <= 1` each
//! request is a classic one-shot connection (works against protocol v1–v3
//! daemons); with a larger depth the client keeps one multiplexed
//! protocol-v4 [`session::Session`] open and pipelines requests over it.
//! The streaming methods ([`Client::trace_put_streaming`],
//! [`Client::diagnose_streaming`]) always use a session, because chunked
//! ingest only exists in v4.
//!
//! All methods return [`ActError`], the workspace-wide error type, so
//! callers never juggle transport-level error enums.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod session;

pub use act_core::{ActError, ConfigError};
pub use act_obs::MetricsSnapshot;
pub use act_serve::{ClientConfig, Endpoint, ModelSpec, Reply, Request};

use session::Session;
use std::io::Read;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use act_serve::ClientError;

/// A `STATUS` answer: the human-readable counters block, plus the typed
/// metrics snapshot when the daemon speaks protocol v2 or newer.
#[derive(Debug, Clone)]
pub struct ServerStatus {
    /// The rendered counters block.
    pub text: String,
    /// Full metrics snapshot (`None` from v1 daemons).
    pub metrics: Option<MetricsSnapshot>,
}

/// Configures and creates a [`Client`]. Obtained from [`Client::builder`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    endpoint: Option<Endpoint>,
    cfg: ClientConfig,
    depth: u32,
}

impl ClientBuilder {
    /// Target a TCP daemon or gateway, e.g. `127.0.0.1:7411`.
    ///
    /// Replaces any endpoint set earlier (last call wins, same as
    /// repeating a CLI flag).
    pub fn addr(mut self, addr: impl Into<String>) -> ClientBuilder {
        self.endpoint = Some(Endpoint::Tcp(addr.into()));
        self
    }

    /// Target a Unix-domain-socket daemon.
    pub fn unix(mut self, path: impl Into<PathBuf>) -> ClientBuilder {
        self.endpoint = Some(Endpoint::Unix(path.into()));
        self
    }

    /// Set the TCP connect timeout and the per-read/write socket timeout.
    pub fn timeouts(mut self, connect: Duration, io: Duration) -> ClientBuilder {
        self.cfg.connect_timeout = Some(connect);
        self.cfg.io_timeout = Some(io);
        self
    }

    /// Retry once on transport failure or `BUSY`, sleeping a jittered
    /// `backoff` in between (deterministic for a given `seed`).
    pub fn retry(mut self, backoff: Duration, seed: u64) -> ClientBuilder {
        self.cfg = self.cfg.with_retry(backoff, seed);
        self
    }

    /// How many requests to keep in flight at once. `0` and `1` mean
    /// classic one-shot requests (compatible with v1–v3 daemons); larger
    /// depths open a multiplexed v4 session. The server may grant a
    /// smaller window than asked.
    pub fn pipeline_depth(mut self, depth: u32) -> ClientBuilder {
        self.depth = depth;
        self
    }

    /// Use a pre-built transport config instead of the individual
    /// [`timeouts`](ClientBuilder::timeouts)/[`retry`](ClientBuilder::retry)
    /// setters.
    pub fn config(mut self, cfg: ClientConfig) -> ClientBuilder {
        self.cfg = cfg;
        self
    }

    /// Build the client. No connection is made yet; sessions open lazily
    /// on the first pipelined or streaming call.
    ///
    /// # Errors
    ///
    /// [`ActError::Config`] when no endpoint was set.
    pub fn build(self) -> Result<Client, ActError> {
        let endpoint = self.endpoint.ok_or_else(|| {
            ActError::Config(ConfigError::new("endpoint", "not set; use .addr() or .unix()"))
        })?;
        Ok(Client { endpoint, cfg: self.cfg, depth: self.depth, session: Mutex::new(None) })
    }
}

/// A typed, thread-safe client for one ACT daemon or gateway.
///
/// See the [crate docs](crate) for transport selection; the short version
/// is that every method blocks until its reply arrives and returns the
/// reply's natural payload, with every failure — transport, protocol, or
/// server-reported — as an [`ActError`].
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    cfg: ClientConfig,
    depth: u32,
    /// The lazily opened v4 session (pipelined and streaming calls only).
    session: Mutex<Option<Arc<Session>>>,
}

impl Client {
    /// Start configuring a client.
    pub fn builder() -> ClientBuilder {
        ClientBuilder { endpoint: None, cfg: ClientConfig::default(), depth: 1 }
    }

    /// The endpoint this client talks to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The configured pipeline depth (not the server-granted window).
    pub fn pipeline_depth(&self) -> u32 {
        self.depth
    }

    /// Train (or fetch from cache) the model for `spec`; returns the
    /// `TRAINED` summary line.
    ///
    /// # Errors
    ///
    /// Transport failures, `BUSY` after retry, and server-side `ERROR`s
    /// (e.g. unknown workload).
    pub fn train(&self, spec: &ModelSpec) -> Result<String, ActError> {
        match self.roundtrip(&Request::Train(spec.clone()))? {
            Reply::Trained(s) => Ok(s),
            other => Err(unexpected("TRAINED", &other)),
        }
    }

    /// Diagnose a failing trace (`act-trace::io` v1 text bytes) against
    /// the model for `spec`; returns the rendered ranked-suspect report.
    ///
    /// # Errors
    ///
    /// Transport failures, `BUSY` after retry, and server-side `ERROR`s.
    pub fn diagnose(&self, spec: &ModelSpec, trace: &[u8]) -> Result<String, ActError> {
        match self.roundtrip(&Request::Diagnose(spec.clone(), trace.to_vec()))? {
            Reply::Diagnosis(s) => Ok(s),
            other => Err(unexpected("DIAGNOSIS", &other)),
        }
    }

    /// Like [`diagnose`](Client::diagnose), but streams the trace from
    /// `reader` in chunks over a v4 session instead of materializing one
    /// big frame — use for traces that are large or arriving piecewise.
    ///
    /// # Errors
    ///
    /// Transport and source-read failures, plus server-side `ERROR`s.
    pub fn diagnose_streaming(
        &self,
        spec: &ModelSpec,
        reader: impl Read,
    ) -> Result<String, ActError> {
        match self.stream_roundtrip(&Request::DiagnoseStart(spec.clone()), reader)? {
            Reply::Diagnosis(s) => Ok(s),
            other => Err(unexpected("DIAGNOSIS", &other)),
        }
    }

    /// Store a correct-run trace in the daemon's corpus under
    /// `(workload, key)`; returns the `STORED` summary line.
    ///
    /// # Errors
    ///
    /// Transport failures and server-side `ERROR`s (e.g. no corpus).
    pub fn trace_put(&self, key: &str, workload: &str, trace: &[u8]) -> Result<String, ActError> {
        let req = Request::TracePut {
            key: key.to_string(),
            workload: workload.to_string(),
            trace: trace.to_vec(),
        };
        match self.roundtrip(&req)? {
            Reply::Stored(s) => Ok(s),
            other => Err(unexpected("STORED", &other)),
        }
    }

    /// Like [`trace_put`](Client::trace_put), but streams the trace from
    /// `reader` in CRC-checked chunks, so the upload is not bounded by
    /// the one-frame payload cap.
    ///
    /// # Errors
    ///
    /// Transport and source-read failures, plus server-side `ERROR`s.
    pub fn trace_put_streaming(
        &self,
        key: &str,
        workload: &str,
        reader: impl Read,
    ) -> Result<String, ActError> {
        let start = Request::TracePutStart { key: key.to_string(), workload: workload.to_string() };
        match self.stream_roundtrip(&start, reader)? {
            Reply::Stored(s) => Ok(s),
            other => Err(unexpected("STORED", &other)),
        }
    }

    /// Read a stored trace back from the corpus.
    ///
    /// # Errors
    ///
    /// Transport failures and server-side `ERROR`s (e.g. unknown key).
    pub fn trace_get(&self, key: &str) -> Result<Vec<u8>, ActError> {
        match self.roundtrip(&Request::TraceGet { key: key.to_string() })? {
            Reply::TraceData(bytes) => Ok(bytes),
            other => Err(unexpected("TRACE_DATA", &other)),
        }
    }

    /// Fetch the daemon's counters block (and metrics snapshot, v2+).
    ///
    /// # Errors
    ///
    /// Transport failures and server-side `ERROR`s.
    pub fn status(&self) -> Result<ServerStatus, ActError> {
        match self.roundtrip(&Request::Status)? {
            Reply::StatusText(text) => Ok(ServerStatus { text, metrics: None }),
            Reply::StatusMetrics(text, snap) => Ok(ServerStatus { text, metrics: Some(snap) }),
            other => Err(unexpected("STATUS", &other)),
        }
    }

    /// Ask the daemon to drain and exit; returns once `BYE` arrives.
    ///
    /// # Errors
    ///
    /// Transport failures and server-side `ERROR`s.
    pub fn shutdown(&self) -> Result<(), ActError> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::Bye => Ok(()),
            other => Err(unexpected("BYE", &other)),
        }
    }

    /// The raw pipelined session, opening it if necessary. For callers —
    /// the gateway, benchmarks, tests — that want to hold many
    /// [`session::Pending`]s at once instead of the blocking typed
    /// methods. Requires `pipeline_depth > 1`.
    ///
    /// # Errors
    ///
    /// [`ActError::Config`] at depth <= 1; otherwise connect/handshake
    /// failures.
    pub fn pipeline(&self) -> Result<Arc<Session>, ActError> {
        if self.depth <= 1 {
            return Err(ActError::Config(ConfigError::new(
                "pipeline_depth",
                "must be greater than 1 to use pipeline(); one-shot clients have no session",
            )));
        }
        self.live_session(self.depth).map_err(|e| self.convert(e))
    }

    /// Dispatch a unary request over the configured transport.
    fn roundtrip(&self, req: &Request) -> Result<Reply, ActError> {
        if self.depth <= 1 {
            let reply = self.oneshot(req).map_err(|e| self.convert(e))?;
            return check_reply(reply);
        }
        match self.over_session(self.depth, |s| s.call(req)?.wait()) {
            Ok(reply) => check_reply(reply),
            Err(e) => Err(self.convert(e)),
        }
    }

    /// One classic one-shot exchange (fresh connection, one frame each
    /// way — understood by v1+ daemons), retried exactly once on a
    /// transport failure or `BUSY` when a retry policy is configured.
    fn oneshot(&self, req: &Request) -> Result<Reply, ClientError> {
        match self.oneshot_once(req) {
            outcome @ (Err(ClientError::Io(_)) | Ok(Reply::Busy)) => match &self.cfg.retry {
                Some(policy) => {
                    std::thread::sleep(policy.sleep_for(0));
                    self.oneshot_once(req)
                }
                None => outcome,
            },
            outcome => outcome,
        }
    }

    fn oneshot_once(&self, req: &Request) -> Result<Reply, ClientError> {
        fn exchange<S: Read + std::io::Write>(
            mut stream: S,
            req: &Request,
        ) -> Result<Reply, ClientError> {
            act_serve::proto::write_frame(&mut stream, &req.to_frame())?;
            let frame = act_serve::proto::read_frame(&mut stream)?;
            Ok(Reply::from_frame(&frame)?)
        }
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let stream = act_serve::connect_tcp(addr, self.cfg.connect_timeout)?;
                stream.set_read_timeout(self.cfg.io_timeout)?;
                stream.set_write_timeout(self.cfg.io_timeout)?;
                exchange(stream, req)
            }
            Endpoint::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)?;
                stream.set_read_timeout(self.cfg.io_timeout)?;
                stream.set_write_timeout(self.cfg.io_timeout)?;
                exchange(stream, req)
            }
        }
    }

    /// Dispatch a chunked upload; always a session, whatever the depth
    /// (a window of 1 still streams fine — chunks are not requests).
    fn stream_roundtrip(&self, start: &Request, reader: impl Read) -> Result<Reply, ActError> {
        let session = self.live_session(self.depth.max(1)).map_err(|e| self.convert(e))?;
        // No resend on failure: half a stream must not be replayed.
        let reply = session.stream(start, reader).and_then(session::Pending::wait);
        match reply {
            Ok(reply) => check_reply(reply),
            Err(e) => {
                self.drop_session(&session);
                Err(self.convert(e))
            }
        }
    }

    /// Run `f` against the live session, reopening and retrying exactly
    /// once when the session turns out to be dead (daemon restarted, idle
    /// disconnect). Only safe for requests that are replayable.
    fn over_session(
        &self,
        depth: u32,
        f: impl Fn(&Arc<Session>) -> Result<Reply, ClientError>,
    ) -> Result<Reply, ClientError> {
        let session = self.live_session(depth)?;
        match f(&session) {
            Ok(reply) => Ok(reply),
            Err(ClientError::Io(_)) => {
                self.drop_session(&session);
                if let Some(retry) = &self.cfg.retry {
                    std::thread::sleep(retry.backoff);
                }
                let fresh = self.live_session(depth)?;
                f(&fresh)
            }
            Err(e) => Err(e),
        }
    }

    /// The cached session, or a freshly opened one.
    fn live_session(&self, depth: u32) -> Result<Arc<Session>, ClientError> {
        let mut slot = self.session.lock().expect("client session lock");
        if let Some(s) = slot.as_ref() {
            return Ok(s.clone());
        }
        let fresh = Session::open(&self.endpoint, &self.cfg, depth)?;
        *slot = Some(fresh.clone());
        Ok(fresh)
    }

    /// Forget `stale` so the next call opens a new session — but only if
    /// the cache still holds that exact session (another thread may have
    /// replaced it already).
    fn drop_session(&self, stale: &Arc<Session>) {
        let mut slot = self.session.lock().expect("client session lock");
        if slot.as_ref().is_some_and(|s| Arc::ptr_eq(s, stale)) {
            *slot = None;
        }
    }

    /// Fold a transport error into [`ActError`], naming the endpoint.
    fn convert(&self, e: ClientError) -> ActError {
        let target = match &self.endpoint {
            Endpoint::Tcp(addr) => addr.clone(),
            Endpoint::Unix(path) => path.display().to_string(),
        };
        match e {
            ClientError::Io(io) => ActError::io(format!("request to {target}"), io),
            ClientError::Proto(p) => {
                ActError::from(format!("protocol error talking to {target}: {p}"))
            }
        }
    }
}

/// Turn server-reported failure replies into errors; pass the rest on.
fn check_reply(reply: Reply) -> Result<Reply, ActError> {
    match reply {
        Reply::Error(msg) => Err(ActError::from(format!("server error: {msg}"))),
        Reply::Busy => Err(ActError::from("server busy (queue full); retry later".to_string())),
        other => Ok(other),
    }
}

/// The server answered with a reply kind the request can't produce.
fn unexpected(wanted: &str, got: &Reply) -> ActError {
    ActError::from(format!("expected {wanted} reply, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_an_endpoint() {
        let err = Client::builder().build().unwrap_err();
        assert!(matches!(err, ActError::Config(_)), "got {err:?}");
    }

    #[test]
    fn builder_last_endpoint_wins_and_depth_sticks() {
        let client = Client::builder()
            .unix("/tmp/ignored.sock")
            .addr("127.0.0.1:1")
            .pipeline_depth(8)
            .build()
            .unwrap();
        assert!(matches!(client.endpoint(), Endpoint::Tcp(a) if a == "127.0.0.1:1"));
        assert_eq!(client.pipeline_depth(), 8);
    }

    #[test]
    fn pipeline_handle_is_refused_for_one_shot_clients() {
        let client = Client::builder().addr("127.0.0.1:1").build().unwrap();
        let err = client.pipeline().unwrap_err();
        assert!(matches!(err, ActError::Config(_)), "got {err:?}");
    }

    #[test]
    fn connection_failures_name_the_endpoint() {
        // Port 1 refuses immediately; no retry configured, so this is fast.
        let client = Client::builder()
            .addr("127.0.0.1:1")
            .timeouts(Duration::from_millis(200), Duration::from_millis(200))
            .build()
            .unwrap();
        let err = client.status().unwrap_err();
        assert!(err.to_string().contains("127.0.0.1:1"), "got {err}");
    }
}
