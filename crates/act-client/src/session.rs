//! Multiplexed, pipelined protocol-v4 sessions: one connection, many
//! requests in flight, replies demultiplexed by request id.
//!
//! A [`Session`] opens with `HELLO`, learns its in-flight window from the
//! `HELLO_ACK`, and then hands out [`Pending`] handles: [`Session::call`]
//! claims a window slot, stamps the request with a fresh id, and writes
//! the frame; a background reader thread matches every arriving reply to
//! its waiter. The caller decides how much pipelining it wants by simply
//! holding several `Pending`s before waiting on any of them.
//!
//! Chunked uploads ([`Session::stream`]) share the machinery: the opener
//! frame claims one slot and one id, the chunks ride under that id (each
//! at most [`act_serve::proto::MAX_CHUNK`] bytes), and the single reply to
//! `STREAM_END` resolves the handle. Chunk frames from one stream and
//! frames from concurrent requests interleave on the wire at frame
//! granularity — the writer lock is held per frame, never per request.

use act_serve::proto::{read_frame, write_frame, MAX_CHUNK};
use act_serve::{ClientConfig, ClientError, Endpoint, Reply, Request};
use act_store::Crc32;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Bytes per `STREAM_CHUNK` frame the client emits (well under the
/// protocol's cap so chunks interleave fairly with other requests).
pub const STREAM_CHUNK_BYTES: usize = 1 << 20;

/// A connected socket, TCP or Unix-domain.
enum ClientConn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.read(buf),
            ClientConn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.write(buf),
            ClientConn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientConn::Tcp(s) => s.flush(),
            ClientConn::Unix(s) => s.flush(),
        }
    }
}

impl ClientConn {
    fn connect(endpoint: &Endpoint, cfg: &ClientConfig) -> io::Result<ClientConn> {
        let conn = match endpoint {
            Endpoint::Tcp(addr) => {
                ClientConn::Tcp(act_serve::connect_tcp(addr, cfg.connect_timeout)?)
            }
            Endpoint::Unix(path) => ClientConn::Unix(UnixStream::connect(path)?),
        };
        conn.set_timeouts(cfg)?;
        Ok(conn)
    }

    fn set_timeouts(&self, cfg: &ClientConfig) -> io::Result<()> {
        match self {
            ClientConn::Tcp(s) => {
                s.set_read_timeout(cfg.io_timeout)?;
                s.set_write_timeout(cfg.io_timeout)
            }
            ClientConn::Unix(s) => {
                s.set_read_timeout(cfg.io_timeout)?;
                s.set_write_timeout(cfg.io_timeout)
            }
        }
    }

    fn try_clone(&self) -> io::Result<ClientConn> {
        match self {
            ClientConn::Tcp(s) => Ok(ClientConn::Tcp(s.try_clone()?)),
            ClientConn::Unix(s) => Ok(ClientConn::Unix(s.try_clone()?)),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            ClientConn::Tcp(s) => s.shutdown(Shutdown::Both),
            ClientConn::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

/// Everything the reader thread and the waiters share, under one lock.
struct State {
    /// Per-request mailbox: `None` until the reply lands.
    replies: HashMap<u32, Option<Reply>>,
    /// Requests currently occupying window slots.
    in_flight: u32,
    /// Set (with the reason) when the connection died; every present and
    /// future waiter fails fast once it is.
    dead: Option<String>,
}

/// One multiplexed v4 session. Cheap to share (`Arc`); all methods take
/// `&self`. Dropping the last handle shuts the socket down, which also
/// stops the reader thread.
pub struct Session {
    /// Frame-granular write lock; whole frames only, so concurrent
    /// requests and stream chunks never interleave mid-frame.
    writer: Mutex<ClientConn>,
    state: Mutex<State>,
    /// Signaled when a reply lands or the session dies.
    arrived: Condvar,
    /// Signaled when a window slot frees up (or the session dies).
    slot_free: Condvar,
    window: u32,
    next_id: AtomicU32,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("session state lock");
        f.debug_struct("Session")
            .field("window", &self.window)
            .field("in_flight", &st.in_flight)
            .field("dead", &st.dead)
            .finish()
    }
}

impl Session {
    /// Connect, send `HELLO` asking for `depth` in-flight requests, and
    /// wait for the `HELLO_ACK`. The granted window (the server may trim
    /// the ask) is what [`Session::window`] reports.
    ///
    /// # Errors
    ///
    /// [`OpenError::Transport`] on connect/read/write failure,
    /// [`OpenError::Unsupported`] when the server answers the `HELLO` with
    /// anything but `HELLO_ACK` (e.g. an old pre-v4 daemon).
    pub fn open(
        endpoint: &Endpoint,
        cfg: &ClientConfig,
        depth: u32,
    ) -> Result<Arc<Session>, OpenError> {
        let transport = |e: ClientError| OpenError::Transport(e);
        let mut conn = ClientConn::connect(endpoint, cfg).map_err(|e| transport(e.into()))?;
        let hello = Request::Hello { window: depth }.to_frame().with_request(0);
        write_frame(&mut conn, &hello).map_err(|e| transport(e.into()))?;
        let ack = read_frame(&mut conn).map_err(|e| transport(e.into()))?;
        let window = match Reply::from_frame(&ack).map_err(|e| transport(e.into()))? {
            Reply::HelloAck { window } => window.max(1),
            other => return Err(OpenError::Unsupported(other)),
        };
        let writer = conn.try_clone().map_err(|e| transport(e.into()))?;
        let session = Arc::new(Session {
            writer: Mutex::new(writer),
            state: Mutex::new(State { replies: HashMap::new(), in_flight: 0, dead: None }),
            arrived: Condvar::new(),
            slot_free: Condvar::new(),
            window,
            next_id: AtomicU32::new(1),
        });
        let for_reader = session.clone();
        std::thread::Builder::new()
            .name("act-client-demux".to_string())
            .spawn(move || reader_loop(conn, for_reader))
            .map_err(|e| OpenError::Transport(ClientError::Io(e)))?;
        Ok(session)
    }

    /// The in-flight window the server granted.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Whether the connection has died (pools prune dead sessions).
    pub fn is_dead(&self) -> bool {
        self.state.lock().expect("session state lock").dead.is_some()
    }

    /// Send one request without waiting for its reply. Blocks only while
    /// the window is full; the returned [`Pending`] resolves to the reply.
    ///
    /// # Errors
    ///
    /// Fails when the session is dead or the write fails.
    pub fn call(self: &Arc<Session>, request: &Request) -> Result<Pending, ClientError> {
        let id = self.begin(None)?;
        let frame = request.to_frame().with_request(id);
        if let Err(e) = {
            let mut w = self.writer.lock().expect("session writer lock");
            write_frame(&mut *w, &frame)
        } {
            self.abandon(id);
            return Err(ClientError::Io(e));
        }
        Ok(Pending { session: self.clone(), id })
    }

    /// Open a chunked upload (`TRACE_PUT_START` or `DIAGNOSE_START`),
    /// stream `reader` through `STREAM_CHUNK` frames with a running
    /// CRC-32, and seal it with `STREAM_END`. The single reply (STORED,
    /// DIAGNOSIS, or ERROR) resolves the returned [`Pending`].
    ///
    /// # Errors
    ///
    /// Fails on dead sessions, source-read failures, and write failures.
    pub fn stream(
        self: &Arc<Session>,
        start: &Request,
        mut reader: impl Read,
    ) -> Result<Pending, ClientError> {
        let id = self.begin(None)?;
        let send = |frame: &act_serve::Frame| -> io::Result<()> {
            let mut w = self.writer.lock().expect("session writer lock");
            write_frame(&mut *w, frame)
        };
        let result = (|| -> Result<(), ClientError> {
            send(&start.to_frame().with_request(id))?;
            let mut crc = Crc32::new();
            let mut total = 0u64;
            let mut buf = vec![0u8; STREAM_CHUNK_BYTES.min(MAX_CHUNK as usize)];
            loop {
                let n = reader.read(&mut buf).map_err(ClientError::Io)?;
                if n == 0 {
                    break;
                }
                crc.update(&buf[..n]);
                total += n as u64;
                send(&Request::StreamChunk(buf[..n].to_vec()).to_frame().with_request(id))?;
            }
            let end = Request::StreamEnd { crc32: crc.finish(), total_len: total };
            send(&end.to_frame().with_request(id))?;
            Ok(())
        })();
        match result {
            Ok(()) => Ok(Pending { session: self.clone(), id }),
            Err(e) => {
                self.abandon(id);
                Err(e)
            }
        }
    }

    /// Claim a window slot and a request id.
    fn begin(&self, _hint: Option<u32>) -> Result<u32, ClientError> {
        let mut st = self.state.lock().expect("session state lock");
        while st.dead.is_none() && st.in_flight >= self.window {
            st = self.slot_free.wait(st).expect("session state lock");
        }
        if let Some(why) = &st.dead {
            return Err(dead_error(why));
        }
        st.in_flight += 1;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        st.replies.insert(id, None);
        Ok(id)
    }

    /// Give the slot back after a failed send (no reply will ever come).
    fn abandon(&self, id: u32) {
        let mut st = self.state.lock().expect("session state lock");
        st.replies.remove(&id);
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.slot_free.notify_one();
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Shut the socket (not just our fd) so the server sees EOF and the
        // reader thread unblocks.
        self.writer.lock().expect("session writer lock").shutdown();
    }
}

fn dead_error(why: &str) -> ClientError {
    ClientError::Io(io::Error::new(io::ErrorKind::BrokenPipe, format!("session dead: {why}")))
}

/// Why [`Session::open`] failed: transport trouble, or a server that
/// answered the `HELLO` with something other than `HELLO_ACK` — i.e. one
/// that does not speak protocol-v4 sessions. Callers that can fall back
/// to one-shot requests (the gateway's backend pool) match on
/// [`OpenError::Unsupported`]; everyone else converts to [`ClientError`].
#[derive(Debug)]
pub enum OpenError {
    /// Connect, write, or read failed.
    Transport(ClientError),
    /// The server answered, but not with `HELLO_ACK`.
    Unsupported(Reply),
}

impl From<OpenError> for ClientError {
    fn from(e: OpenError) -> ClientError {
        match e {
            OpenError::Transport(inner) => inner,
            OpenError::Unsupported(reply) => ClientError::Io(io::Error::other(format!(
                "server does not speak v4 sessions (HELLO answered with {reply:?})"
            ))),
        }
    }
}

/// Drain replies off the socket, waking the matching waiters; on any
/// read/decode failure, fail every outstanding and future request.
fn reader_loop(mut conn: ClientConn, session: Arc<Session>) {
    loop {
        let outcome =
            read_frame(&mut conn).and_then(|f| Ok((f.request_id, Reply::from_frame(&f)?)));
        match outcome {
            Ok((id, reply)) => {
                let mut st = session.state.lock().expect("session state lock");
                if let Some(slot) = st.replies.get_mut(&id) {
                    *slot = Some(reply);
                    drop(st);
                    session.arrived.notify_all();
                }
                // An id nobody is waiting for (abandoned send) is dropped.
            }
            Err(e) => {
                let mut st = session.state.lock().expect("session state lock");
                st.dead = Some(e.to_string());
                drop(st);
                session.arrived.notify_all();
                session.slot_free.notify_all();
                return;
            }
        }
    }
}

/// A request in flight on a [`Session`]. Resolve it with
/// [`Pending::wait`]; dropping it without waiting leaks the window slot
/// for the rest of the session's life, so don't.
#[must_use = "a Pending holds a window slot until waited on"]
pub struct Pending {
    session: Arc<Session>,
    id: u32,
}

impl Pending {
    /// The request id this handle waits for.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Block until the reply for this request arrives.
    ///
    /// # Errors
    ///
    /// Fails when the session dies before the reply lands.
    pub fn wait(self) -> Result<Reply, ClientError> {
        let mut st = self.session.state.lock().expect("session state lock");
        loop {
            if st.replies.get(&self.id).is_some_and(|slot| slot.is_some()) {
                let reply = st.replies.remove(&self.id).flatten().expect("checked above");
                st.in_flight = st.in_flight.saturating_sub(1);
                drop(st);
                self.session.slot_free.notify_one();
                return Ok(reply);
            }
            if let Some(why) = &st.dead {
                let err = dead_error(why);
                st.replies.remove(&self.id);
                st.in_flight = st.in_flight.saturating_sub(1);
                drop(st);
                self.session.slot_free.notify_one();
                return Err(err);
            }
            st = self.session.arrived.wait(st).expect("session state lock");
        }
    }
}
