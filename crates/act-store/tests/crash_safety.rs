//! Crash-safety: a segment truncated at *every* byte boundary of its tail
//! entry must recover exactly the committed prefix — no panic, no lost
//! committed entry, no phantom tail entry — and the dropped tail must be
//! reported.

use act_sim::events::RawDep;
use act_store::{Corpus, EntryKind};
use act_trace::io::trace_to_bytes;
use act_trace::{Trace, TraceKind, TraceRecord};
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("act-store-it-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn small_trace(n: u64, salt: u64) -> Trace {
    let mut records =
        vec![TraceRecord { seq: 0, cycle: 0, tid: 0, pc: 0, kind: TraceKind::ThreadStart }];
    for i in 0..n {
        let pc = (1 + (i + salt) % 11) as u32;
        let addr = 8 * (i + salt + 1);
        let kind = match i % 3 {
            0 => TraceKind::Store { addr },
            1 => TraceKind::Load {
                addr,
                dep: Some(RawDep { store_pc: pc, load_pc: pc + 1, inter_thread: i % 2 == 0 }),
            },
            _ => TraceKind::Branch { taken: i % 2 == 0 },
        };
        records.push(TraceRecord { seq: i + 1, cycle: i + 2, tid: (i % 2) as u32, pc, kind });
    }
    Trace { records, code_len: 16 }
}

fn copy_corpus(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for ent in fs::read_dir(src).unwrap() {
        let ent = ent.unwrap();
        fs::copy(ent.path(), dst.join(ent.file_name())).unwrap();
    }
}

#[test]
fn recovery_at_every_truncation_point_of_the_tail_entry() {
    let base = tmp_dir("truncate-base");
    let t0 = small_trace(24, 0);
    let t1 = small_trace(24, 7);
    let t2 = small_trace(24, 13);
    let mut c = Corpus::init(&base).unwrap();
    c.put_trace("t0", "wl", &t0).unwrap();
    c.put_trace("t1", "wl", &t1).unwrap();
    let committed = fs::metadata(base.join("active.seg")).unwrap().len();
    c.put_trace("t2", "wl", &t2).unwrap();
    let full = fs::metadata(base.join("active.seg")).unwrap().len();
    drop(c);
    assert!(full > committed);

    // Cut exactly at the committed boundary: a clean file, nothing dropped.
    let scratch = tmp_dir("truncate-scratch");
    copy_corpus(&base, &scratch);
    let f = fs::OpenOptions::new().write(true).open(scratch.join("active.seg")).unwrap();
    f.set_len(committed).unwrap();
    drop(f);
    let c = Corpus::open(&scratch).unwrap();
    assert!(!c.open_report().dropped_tail);
    assert_eq!(c.entries(None).len(), 2);
    drop(c);

    // Every byte boundary inside the tail entry's blocks.
    for cut in committed + 1..full {
        copy_corpus(&base, &scratch);
        let f = fs::OpenOptions::new().write(true).open(scratch.join("active.seg")).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let c = Corpus::open(&scratch).unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        let report = c.open_report().clone();
        assert!(report.dropped_tail, "cut {cut}: tail drop not reported");
        assert_eq!(report.dropped_bytes, cut - committed, "cut {cut}: wrong dropped byte count");
        let entries = c.entries(None);
        assert_eq!(entries.len(), 2, "cut {cut}: committed entries lost or tail resurrected");
        assert!(!c.contains(EntryKind::Trace, "t2"), "cut {cut}: uncommitted entry visible");
        assert_eq!(trace_to_bytes(&c.get_trace("t0").unwrap()), trace_to_bytes(&t0));
        assert_eq!(trace_to_bytes(&c.get_trace("t1").unwrap()), trace_to_bytes(&t1));

        // The recovered corpus must accept appends again.
        let mut c = c;
        c.put_trace("t3", "wl", &t2).unwrap();
        assert_eq!(trace_to_bytes(&c.get_trace("t3").unwrap()), trace_to_bytes(&t2));
    }

    // Untruncated file: everything is there, nothing is reported dropped.
    let c = Corpus::open(&base).unwrap();
    assert!(!c.open_report().dropped_tail);
    assert_eq!(c.entries(None).len(), 3);
    assert_eq!(trace_to_bytes(&c.get_trace("t2").unwrap()), trace_to_bytes(&t2));

    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn flipped_byte_in_tail_is_dropped_not_served() {
    let base = tmp_dir("bitrot");
    let t0 = small_trace(24, 0);
    let t1 = small_trace(24, 5);
    let mut c = Corpus::init(&base).unwrap();
    c.put_trace("t0", "wl", &t0).unwrap();
    let committed = fs::metadata(base.join("active.seg")).unwrap().len();
    c.put_trace("t1", "wl", &t1).unwrap();
    drop(c);

    // Flip one byte inside the tail entry's bytes: CRC catches it, recovery
    // truncates back to the committed prefix.
    let path = base.join("active.seg");
    let mut bytes = fs::read(&path).unwrap();
    let victim = committed as usize + 12;
    bytes[victim] ^= 0x40;
    fs::write(&path, &bytes).unwrap();

    let c = Corpus::open(&base).unwrap();
    assert!(c.open_report().dropped_tail);
    assert_eq!(c.entries(None).len(), 1);
    assert_eq!(trace_to_bytes(&c.get_trace("t0").unwrap()), trace_to_bytes(&t0));
    fs::remove_dir_all(&base).unwrap();
}

#[test]
fn sealed_segment_with_damaged_footer_falls_back_to_scan() {
    let base = tmp_dir("footer");
    let mut c = Corpus::init(&base).unwrap();
    c.set_seal_bytes(64);
    c.put_trace("t0", "wl", &small_trace(40, 0)).unwrap();
    let stat = c.stat().unwrap();
    assert_eq!(stat.sealed_segments, 1);
    drop(c);

    // Damage the trailer magic of the sealed segment: open must still find
    // the entry by scanning.
    let seg = base.join("seg-000001.seg");
    let mut bytes = fs::read(&seg).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 0xff;
    fs::write(&seg, &bytes).unwrap();

    let c = Corpus::open(&base).unwrap();
    assert_eq!(c.open_report().scanned_segments, 1);
    assert_eq!(trace_to_bytes(&c.get_trace("t0").unwrap()), trace_to_bytes(&small_trace(40, 0)));
    fs::remove_dir_all(&base).unwrap();
}
