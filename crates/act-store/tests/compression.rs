//! The acceptance bar from the issue: on a representative workload trace
//! (collected exactly the way the daemon collects training traces), the
//! columnar store must be lossless byte-for-byte AND at least 3× smaller
//! than the `trace_to_bytes` text codec.

use act_sim::config::MachineConfig;
use act_sim::Machine;
use act_store::{Corpus, EntryKind};
use act_trace::io::trace_to_bytes;
use act_trace::{Trace, TraceCollector};
use act_workloads::registry;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("act-store-it-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Collect one correct-run trace the way `act-serve` does for training.
fn workload_trace(name: &str, seed: u64) -> Trace {
    let w = registry::by_name(name).expect("workload registered");
    let norm = w.norm_code_len().unwrap_or_else(|| w.build(&w.default_params()).program.code_len());
    let built = w.build(&w.default_params().with_seed(seed));
    let mut collector = TraceCollector::new(norm);
    let cfg = MachineConfig { seed, jitter_ppm: 10_000, ..Default::default() };
    let mut machine = Machine::new(&built.program, cfg);
    machine.run_observed(&mut collector);
    collector.into_trace()
}

#[test]
fn representative_trace_compresses_at_least_3x_and_is_lossless() {
    let trace = workload_trace("lu", 42);
    assert!(trace.len() > 100, "trace too small to be representative");
    let text = trace_to_bytes(&trace);

    let dir = tmp_dir("ratio");
    let mut c = Corpus::init(&dir).unwrap();
    let info = c.put_trace("lu-clean-42", "lu", &trace).unwrap();

    // Lossless: byte-identical text after a round trip through the store.
    let back = c.get_trace("lu-clean-42").unwrap();
    assert_eq!(trace_to_bytes(&back), text);

    // ≥ 3× smaller than the text codec.
    let ratio = text.len() as f64 / info.encoded_bytes as f64;
    assert!(
        ratio >= 3.0,
        "compression ratio {ratio:.2}× below the 3× bar ({} text bytes, {} stored)",
        text.len(),
        info.encoded_bytes
    );
    assert_eq!(info.raw_bytes, text.len() as u64);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn correct_set_builds_from_corpus_traces() {
    let dir = tmp_dir("cset");
    let mut c = Corpus::init(&dir).unwrap();
    for seed in 0..3u64 {
        let trace = workload_trace("lu", 100 + seed);
        c.put_trace(&format!("lu-{seed}"), "lu", &trace).unwrap();
    }
    let set = c.correct_set("lu", 2).unwrap();
    assert!(!set.is_empty(), "lu traces must contribute dependence windows");
    assert_eq!(set.seq_len(), 2);
    assert!(!c.contains(EntryKind::CorrectSet, "unused"));
    fs::remove_dir_all(&dir).unwrap();
}
