//! Store error type: every fallible store operation returns [`StoreError`],
//! and hostile or damaged on-disk bytes must surface as [`StoreError::Corrupt`]
//! — never a panic or an unbounded allocation.

use std::fmt;
use std::io;

/// Errors from corpus/segment operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// On-disk bytes failed validation (bad magic, CRC mismatch, truncated
    /// varint, impossible length...). `offset` is the best-effort byte
    /// position within the file or block being decoded.
    Corrupt {
        /// Byte position the decoder was at.
        offset: u64,
        /// Human-readable cause.
        reason: String,
    },
    /// No entry under the requested key.
    NotFound {
        /// The key that was looked up.
        key: String,
    },
    /// Caller misuse (bad key syntax, entry kind mismatch, put while another
    /// entry is open...).
    InvalidInput(String),
}

impl StoreError {
    /// Shorthand for a corruption error.
    pub fn corrupt(offset: u64, reason: impl Into<String>) -> Self {
        StoreError::Corrupt { offset, reason: reason.into() }
    }

    /// Whether this is a data-integrity error (as opposed to IO or misuse).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt store data at byte {offset}: {reason}")
            }
            StoreError::NotFound { key } => write!(f, "no store entry for key `{key}`"),
            StoreError::InvalidInput(msg) => write!(f, "invalid store input: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Map a store decode error into the trace codec's error type so store-backed
/// readers can implement [`act_trace::io::TraceSource`].
pub fn to_parse_error(e: StoreError) -> act_trace::io::ParseTraceError {
    match e {
        StoreError::Io(io) => act_trace::io::ParseTraceError::Io(io),
        other => act_trace::io::ParseTraceError::Malformed { line: 0, reason: other.to_string() },
    }
}
