//! # act-store — compressed, indexed trace & model corpus store
//!
//! ACT's whole pipeline is fed by memory-access traces of correct runs;
//! at production scale the trace volume dominates (the scaling problem
//! application-level post-silicon debugging hit first), so this crate is the
//! storage layer the daemon, campaigns, and CLI share:
//!
//! * [`varint`] / [`crc32`] — leaf codecs (LEB128 + zigzag, CRC-32), built
//!   in-tree because the workspace compiles offline.
//! * [`column`] — the columnar chunk codec: per-field delta+varint columns,
//!   self-contained per chunk so decode memory is bounded.
//! * [`segment`] — append-only segment files: CRC-checksummed blocks, entry
//!   commit protocol (`ENTRY_BEGIN DATA* ENTRY_END`), footer index, and the
//!   streaming [`segment::SegmentWriter`] / [`segment::TraceEntrySource`]
//!   pair. The trace entry types implement `act-trace`'s shared
//!   `TraceSink`/`TraceSource` codec interface, so there is exactly one
//!   event codec boundary in the workspace.
//! * [`corpus`] — the [`Corpus`] manager: create/open/append/get/iter/
//!   compact with atomic rename commits and truncated-tail recovery.
//! * [`metrics`] — store instruments on an `act-obs` registry (bytes in/out,
//!   compression ratio, decode throughput, corrupt blocks).

pub mod column;
pub mod corpus;
pub mod crc32;
pub mod error;
pub mod metrics;
pub mod segment;
pub mod varint;

pub use corpus::{CompactStat, Corpus, CorpusStat, OpenReport, DEFAULT_SEAL_BYTES};
pub use crc32::Crc32;
pub use error::StoreError;
pub use metrics::StoreMetrics;
pub use segment::{
    EntryInfo, EntryKind, EntryMeta, SegmentWriter, TraceEntrySink, TraceEntrySource,
};
