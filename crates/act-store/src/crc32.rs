//! CRC-32 (IEEE 802.3 polynomial), table-driven, built in-tree because the
//! workspace must compile offline. Every segment block carries a CRC of its
//! body so bit rot and torn writes are detected before decode.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (reflected, init/xorout `!0` — the zlib convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC-32 over a byte stream, for callers that see the data in
/// chunks (the protocol's streaming ingest): feed with [`Crc32::update`],
/// read the digest with [`Crc32::finish`]. `Crc32::new().update(b).finish()`
/// equals [`crc32`]`(b)` for any chunking of `b`.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher (empty input digests to 0).
    pub fn new() -> Crc32 {
        Crc32 { state: !0u32 }
    }

    /// Fold `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything fed so far (the hasher stays usable).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot_for_any_chunking() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let want = crc32(data);
        for split in [0, 1, 7, 20, data.len()] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), want, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = crc32(b"the quick brown fox");
        let mut flipped = b"the quick brown fox".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(crc32(&flipped), base);
    }
}
