//! LEB128 varints and the zigzag transform — the leaf codec under the
//! columnar trace encoding. RAW traces are highly delta-compressible: a
//! sequential workload's PC column deltas are mostly in `[-4, 4]`, so one
//! varint byte replaces a ~10-digit decimal field of the text codec.

use crate::error::StoreError;

/// Longest legal encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_BYTES: usize = 10;

/// Append `v` to `out` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Decode one varint from `buf` at `*pos`, advancing `*pos` past it.
///
/// Rejects truncated input, encodings longer than 10 bytes, and 10-byte
/// encodings whose top bits overflow a `u64` — all as [`StoreError::Corrupt`].
///
/// The one- and two-byte encodings are unrolled ahead of the general
/// loop: delta-compressed columns are dominated by tiny values (a
/// sequential workload's PC deltas fit one byte almost always), and the
/// unrolled path decodes them with a single bounds check and no shift
/// bookkeeping — this is the decode hot path's inner loop.
#[inline]
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    if let Some(&b0) = buf.get(*pos) {
        if b0 & 0x80 == 0 {
            *pos += 1;
            return Ok(b0 as u64);
        }
        if let Some(&b1) = buf.get(*pos + 1) {
            if b1 & 0x80 == 0 {
                *pos += 2;
                return Ok(((b1 as u64) << 7) | (b0 & 0x7f) as u64);
            }
        }
    }
    get_varint_long(buf, pos)
}

/// The general decode loop for 3+-byte encodings (and all error cases).
/// Out of line so the common path above stays small enough to inline.
#[cold]
fn get_varint_long(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT_BYTES {
        let Some(&b) = buf.get(*pos + i) else {
            return Err(StoreError::corrupt((*pos + i) as u64, "truncated varint"));
        };
        let low = (b & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(StoreError::corrupt(*pos as u64, "varint overflows u64"));
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            *pos += i + 1;
            return Ok(v);
        }
        shift += 7;
    }
    Err(StoreError::corrupt(*pos as u64, "varint longer than 10 bytes"))
}

/// Zigzag-map a signed delta to an unsigned varint payload (small magnitudes
/// of either sign become small codes).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(get_varint(&buf[..cut], &mut pos).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn overlong_varint_is_an_error() {
        // Eleven continuation bytes can never be a legal u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
        // A 10-byte encoding whose final byte carries more than one bit
        // overflows 64 bits.
        let mut over = vec![0x80u8; 9];
        over.push(0x02);
        let mut pos = 0;
        assert!(get_varint(&over, &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn varint_roundtrip_any(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn zigzag_roundtrip_any(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }

        #[test]
        fn zigzag_orders_by_magnitude(v in -1_000_000i64..1_000_000) {
            // Smaller magnitude never encodes wider than double magnitude.
            let mut small = Vec::new();
            let mut big = Vec::new();
            put_varint(&mut small, zigzag(v));
            put_varint(&mut big, zigzag(v.saturating_mul(128)));
            prop_assert!(small.len() <= big.len());
        }
    }
}
