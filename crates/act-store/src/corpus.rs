//! The [`Corpus`]: a directory of segment files plus an in-memory key index.
//!
//! On disk a corpus is
//!
//! ```text
//! corpus/
//!   seg-000001.seg     sealed (immutable, footer-indexed)
//!   seg-000002.seg
//!   active.seg         unsealed append target, scanned on open
//! ```
//!
//! Appends go to `active.seg`; once it grows past the seal threshold it is
//! sealed (footer written, fsync'd) and atomically renamed to the next
//! `seg-N` — readers only ever observe a fully-written sealed file or the
//! scannable active file. Keys shadow by recency: the same `(kind, key)`
//! appended again wins, and `compact` rewrites only the live entries into a
//! fresh sealed segment before deleting the old files (new data is durable
//! before old data is unlinked, so a crash between the two steps leaves
//! duplicates, not loss).

use crate::column::CHUNK_RECORDS;
use crate::crc32::Crc32;
use crate::error::StoreError;
use crate::metrics::StoreMetrics;
use crate::segment::{
    open_entry, read_blob, read_sealed_index, scan_segment, EntryInfo, EntryKind, EntryMeta,
    SegmentWriter, TraceEntrySink, TraceEntrySource,
};
use act_obs::metrics::Registry;
use act_trace::io::{
    copy_trace, parse_record_line, stream_trace, CopyError, TextTraceSink, TextTraceSource,
    TraceBuilder, MAX_CODE_LEN,
};
use act_trace::{Trace, TraceRecord};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Seal the active segment once it exceeds this many bytes.
pub const DEFAULT_SEAL_BYTES: u64 = 4 << 20;
/// Cap on a materialized blob entry (mirrors `act-serve`'s payload cap).
pub const MAX_BLOB_BYTES: usize = 64 << 20;
/// Write blobs in blocks of at most this size.
const BLOB_BLOCK_BYTES: usize = 1 << 20;

/// What `Corpus::open` had to do to get a consistent view.
#[derive(Debug, Clone, Default)]
pub struct OpenReport {
    /// Bytes truncated off the active segment's uncommitted tail.
    pub dropped_bytes: u64,
    /// Whether a damaged/partial tail was dropped.
    pub dropped_tail: bool,
    /// Sealed segments whose footer was damaged and had to be scanned.
    pub scanned_segments: usize,
}

/// Corpus-wide accounting for `act store stat`.
#[derive(Debug, Clone)]
pub struct CorpusStat {
    /// Sealed segment files.
    pub sealed_segments: usize,
    /// Live (non-shadowed) entries.
    pub live_entries: usize,
    /// Entries on disk including shadowed ones.
    pub total_entries: usize,
    /// Uncompressed payload bytes of live entries.
    pub raw_bytes: u64,
    /// Compressed payload bytes of live entries.
    pub encoded_bytes: u64,
    /// Live compression ratio ×1000 (3000 = 3×).
    pub ratio_milli: u64,
    /// Total segment file bytes on disk.
    pub disk_bytes: u64,
}

/// Result of a `compact` pass.
#[derive(Debug, Clone)]
pub struct CompactStat {
    /// Entries carried into the new segment.
    pub entries_kept: usize,
    /// Entries dropped because a newer write shadowed them.
    pub entries_dropped: usize,
    /// Disk bytes before → after.
    pub disk_bytes_before: u64,
    /// Disk bytes after compaction.
    pub disk_bytes_after: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegRef {
    Sealed(u64),
    Active,
}

#[derive(Debug, Clone)]
struct Location {
    seg: SegRef,
    info: EntryInfo,
}

/// An open corpus: the append writer plus the live-key index.
pub struct Corpus {
    dir: PathBuf,
    active: Option<SegmentWriter>,
    sealed: Vec<PathBuf>,
    index: HashMap<(EntryKind, String), Location>,
    total_entries: usize,
    report: OpenReport,
    metrics: StoreMetrics,
    seal_bytes: u64,
    next_seg_id: u64,
    stream: Option<StreamPut>,
}

/// Cap on a buffered partial line in a streaming put — a chunked upload
/// with no newlines must not grow memory without bound.
const MAX_STREAM_LINE_BYTES: usize = 64 << 10;

/// In-flight state of a chunked [`Corpus::stream_begin`] upload: the
/// incremental text-codec parser (partial trailing line + line counter),
/// the columnar chunk buffer, and the running CRC/length tallies the
/// finishing frame is verified against.
struct StreamPut {
    key: String,
    workload: String,
    crc: Crc32,
    bytes_in: u64,
    lineno: usize,
    partial: Vec<u8>,
    header_seen: bool,
    records: Vec<TraceRecord>,
    total_records: u64,
}

fn active_path(dir: &Path) -> PathBuf {
    dir.join("active.seg")
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.seg"))
}

fn seg_id_of(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    rest.parse().ok()
}

/// A `Write` that only counts — used to price a trace in text-codec bytes
/// (the compression-ratio baseline) without allocating the text.
#[derive(Default)]
struct CountWriter(u64);

impl Write for CountWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Text-codec byte size of `trace` (what `trace_to_bytes` would produce).
pub fn text_size_of(trace: &Trace) -> u64 {
    let mut sink = TextTraceSink::new(CountWriter::default());
    stream_trace(trace, &mut sink).expect("counting writer cannot fail");
    sink.into_inner().0
}

/// Parse the `acttrace v1 <code_len>` header line of a streamed put (the
/// same validation [`TextTraceSource::new`] applies to materialized input).
fn parse_stream_header(line: &str) -> Result<u64, String> {
    let mut hp = line.split_whitespace();
    if hp.next() != Some("acttrace") || hp.next() != Some("v1") {
        return Err("bad header".into());
    }
    let code_len: u64 =
        hp.next().and_then(|t| t.parse().ok()).ok_or_else(|| "bad code_len".to_string())?;
    if code_len > MAX_CODE_LEN {
        return Err(format!("code_len {code_len} exceeds the {MAX_CODE_LEN} cap"));
    }
    Ok(code_len)
}

/// Apply one complete line of a streaming put: the first line is the
/// header (which opens the segment entry), every later non-empty line is a
/// record, buffered into columnar chunks.
fn stream_line(
    active: &mut SegmentWriter,
    s: &mut StreamPut,
    line: &[u8],
) -> Result<(), StoreError> {
    s.lineno += 1;
    let text = std::str::from_utf8(line)
        .map_err(|_| StoreError::InvalidInput(format!("stream line {} is not UTF-8", s.lineno)))?;
    let text = text.strip_suffix('\r').unwrap_or(text);
    if !s.header_seen {
        let code_len = parse_stream_header(text)
            .map_err(|why| StoreError::InvalidInput(format!("stream header: {why}")))?;
        active.begin_entry(EntryMeta {
            kind: EntryKind::Trace,
            key: s.key.clone(),
            workload: s.workload.clone(),
            code_len,
        })?;
        s.header_seen = true;
        return Ok(());
    }
    if text.is_empty() {
        return Ok(());
    }
    let rec = parse_record_line(text, s.lineno)
        .map_err(|e| StoreError::InvalidInput(format!("trace payload rejected: {e}")))?;
    s.records.push(rec);
    s.total_records += 1;
    if s.records.len() == CHUNK_RECORDS {
        active.write_chunk(&s.records)?;
        s.records.clear();
    }
    Ok(())
}

impl Corpus {
    /// Create a fresh corpus at `dir` (the directory may exist but must not
    /// already hold segments).
    pub fn init(dir: impl Into<PathBuf>) -> Result<Corpus, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if active_path(&dir).exists() {
            return Err(StoreError::InvalidInput(format!("{} is already a corpus", dir.display())));
        }
        let active = SegmentWriter::create(active_path(&dir))?;
        Ok(Corpus {
            dir,
            active: Some(active),
            sealed: Vec::new(),
            index: HashMap::new(),
            total_entries: 0,
            report: OpenReport::default(),
            metrics: StoreMetrics::global(),
            seal_bytes: DEFAULT_SEAL_BYTES,
            next_seg_id: 1,
            stream: None,
        })
    }

    /// Open an existing corpus, recovering the active segment's committed
    /// prefix (any torn tail is truncated away and reported).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Corpus, StoreError> {
        let dir = dir.into();
        if !active_path(&dir).exists() && !dir.is_dir() {
            return Err(StoreError::InvalidInput(format!("{} is not a corpus", dir.display())));
        }
        let metrics = StoreMetrics::global();
        let mut report = OpenReport::default();

        // Discover sealed segments.
        let mut ids: Vec<u64> = Vec::new();
        for ent in fs::read_dir(&dir)? {
            let name = ent?.file_name();
            if let Some(id) = name.to_str().and_then(seg_id_of) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut sealed = Vec::new();
        let mut index: HashMap<(EntryKind, String), Location> = HashMap::new();
        let mut total_entries = 0usize;
        for &id in &ids {
            let path = seg_path(&dir, id);
            let entries = match read_sealed_index(&path) {
                Ok(Some(entries)) => entries,
                // Unsealed or damaged footer: fall back to a scan.
                Ok(None) | Err(StoreError::Corrupt { .. }) => {
                    metrics.corrupt_blocks.inc();
                    report.scanned_segments += 1;
                    scan_segment(&path)?.entries
                }
                Err(e) => return Err(e),
            };
            total_entries += entries.len();
            for info in entries {
                index.insert(
                    (info.meta.kind, info.meta.key.clone()),
                    Location { seg: SegRef::Sealed(id), info },
                );
            }
            sealed.push(path);
        }
        let mut next_seg_id = ids.last().map_or(1, |m| m + 1);

        // Recover the active segment.
        let apath = active_path(&dir);
        let active = if apath.exists() {
            let scan = scan_segment(&apath)?;
            if scan.sealed {
                // Crash between seal and rename: finish the rename now.
                let id = next_seg_id;
                next_seg_id += 1;
                let spath = seg_path(&dir, id);
                fs::rename(&apath, &spath)?;
                let entries = read_sealed_index(&spath)?
                    .ok_or_else(|| StoreError::corrupt(0, "sealed segment lost its footer"))?;
                total_entries += entries.len();
                for info in entries {
                    index.insert(
                        (info.meta.kind, info.meta.key.clone()),
                        Location { seg: SegRef::Sealed(id), info },
                    );
                }
                sealed.push(spath.clone());
                SegmentWriter::create(&apath)?
            } else {
                if scan.dropped_bytes() > 0 {
                    report.dropped_bytes = scan.dropped_bytes();
                    report.dropped_tail = true;
                    metrics.corrupt_blocks.inc();
                    let f = fs::OpenOptions::new().write(true).open(&apath)?;
                    f.set_len(scan.committed_len)?;
                    f.sync_all()?;
                }
                total_entries += scan.entries.len();
                for info in &scan.entries {
                    index.insert(
                        (info.meta.kind, info.meta.key.clone()),
                        Location { seg: SegRef::Active, info: info.clone() },
                    );
                }
                SegmentWriter::resume(&apath, scan.committed_len, scan.entries)?
            }
        } else {
            SegmentWriter::create(&apath)?
        };

        let corpus = Corpus {
            dir,
            active: Some(active),
            sealed,
            index,
            total_entries,
            report,
            metrics,
            seal_bytes: DEFAULT_SEAL_BYTES,
            next_seg_id,
            stream: None,
        };
        corpus.publish_ratio();
        Ok(corpus)
    }

    /// Open `dir` as a corpus, creating it when empty/missing.
    pub fn open_or_init(dir: impl Into<PathBuf>) -> Result<Corpus, StoreError> {
        let dir = dir.into();
        if active_path(&dir).exists() {
            Corpus::open(dir)
        } else {
            Corpus::init(dir)
        }
    }

    /// Re-register the store instruments on `registry` (e.g. the serving
    /// daemon's per-server registry) instead of the process-global one.
    pub fn with_registry(mut self, registry: &Registry) -> Corpus {
        self.metrics = StoreMetrics::register(registry);
        self.publish_ratio();
        self
    }

    /// Directory this corpus lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What `open` recovered.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// Lower the seal threshold (tests exercise segment rollover with it).
    pub fn set_seal_bytes(&mut self, bytes: u64) {
        self.seal_bytes = bytes.max(64);
    }

    fn active_mut(&mut self) -> &mut SegmentWriter {
        self.active.as_mut().expect("active segment writer present")
    }

    fn live_totals(&self) -> (u64, u64) {
        let mut raw = 0;
        let mut encoded = 0;
        for loc in self.index.values() {
            raw += loc.info.raw_bytes;
            encoded += loc.info.encoded_bytes;
        }
        (raw, encoded)
    }

    fn publish_ratio(&self) {
        let (raw, encoded) = self.live_totals();
        self.metrics.set_ratio(raw, encoded);
    }

    fn commit(&mut self, seg: SegRef, info: EntryInfo) -> Result<EntryInfo, StoreError> {
        self.metrics.bytes_in.add(info.raw_bytes);
        self.total_entries += 1;
        self.index
            .insert((info.meta.kind, info.meta.key.clone()), Location { seg, info: info.clone() });
        self.publish_ratio();
        self.maybe_seal()?;
        Ok(info)
    }

    fn maybe_seal(&mut self) -> Result<(), StoreError> {
        if self.active.as_ref().map_or(0, |a| a.offset()) < self.seal_bytes {
            return Ok(());
        }
        let writer = self.active.take().expect("active segment writer present");
        if writer.entries().is_empty() {
            self.active = Some(writer);
            return Ok(());
        }
        let id = self.next_seg_id;
        self.next_seg_id += 1;
        let apath = writer.seal()?;
        let spath = seg_path(&self.dir, id);
        fs::rename(&apath, &spath)?;
        self.sealed.push(spath.clone());
        for loc in self.index.values_mut() {
            if loc.seg == SegRef::Active {
                loc.seg = SegRef::Sealed(id);
            }
        }
        self.active = Some(SegmentWriter::create(active_path(&self.dir))?);
        Ok(())
    }

    // -- writes ------------------------------------------------------------

    /// Truncate away a half-written entry after a failed put, so one bad
    /// input cannot wedge the writer or leave junk for recovery to drop.
    fn abort_on_err<T>(&mut self, r: Result<T, StoreError>) -> Result<T, StoreError> {
        if r.is_err() {
            let _ = self.active_mut().abort_entry();
        }
        r
    }

    /// A streaming put owns the active segment's open entry; any other
    /// write interleaving with it would corrupt the entry, so they are
    /// refused while a stream is open.
    fn reject_if_streaming(&self) -> Result<(), StoreError> {
        match &self.stream {
            Some(s) => Err(StoreError::InvalidInput(format!(
                "a streaming put ({}) is in progress; finish or abort it first",
                s.key
            ))),
            None => Ok(()),
        }
    }

    /// Store a trace under `(workload, key)`, streaming it through the
    /// columnar codec. Returns the committed entry's accounting.
    pub fn put_trace(
        &mut self,
        key: &str,
        workload: &str,
        trace: &Trace,
    ) -> Result<EntryInfo, StoreError> {
        self.reject_if_streaming()?;
        let raw = text_size_of(trace);
        let r = (|| {
            let active = self.active.as_mut().expect("active segment writer present");
            let mut sink = TraceEntrySink::new(active, key, workload);
            stream_trace(trace, &mut sink)?;
            active.end_entry(raw)
        })();
        let info = self.abort_on_err(r)?;
        self.commit(SegRef::Active, info)
    }

    /// Ingest a text-codec trace payload (the daemon's `TRACE_PUT` path):
    /// parsed and re-encoded record-by-record, so the uncompressed text is
    /// never materialized a second time.
    pub fn put_trace_bytes(
        &mut self,
        key: &str,
        workload: &str,
        bytes: &[u8],
    ) -> Result<EntryInfo, StoreError> {
        self.reject_if_streaming()?;
        let mut source = TextTraceSource::new(bytes)
            .map_err(|e| StoreError::InvalidInput(format!("trace payload rejected: {e}")))?;
        let r = (|| {
            let active = self.active.as_mut().expect("active segment writer present");
            let mut sink = TraceEntrySink::new(active, key, workload);
            match copy_trace(&mut source, &mut sink) {
                Ok(()) => {}
                Err(CopyError::Source(e)) => {
                    return Err(StoreError::InvalidInput(format!("trace payload rejected: {e}")));
                }
                Err(CopyError::Sink(e)) => return Err(e),
            }
            active.end_entry(bytes.len() as u64)
        })();
        let info = self.abort_on_err(r)?;
        self.commit(SegRef::Active, info)
    }

    /// Store an opaque blob (model weights, serialized correct sets).
    pub fn put_blob(
        &mut self,
        kind: EntryKind,
        key: &str,
        workload: &str,
        bytes: &[u8],
    ) -> Result<EntryInfo, StoreError> {
        self.reject_if_streaming()?;
        if kind == EntryKind::Trace {
            return Err(StoreError::InvalidInput("traces go through put_trace".into()));
        }
        if bytes.len() > MAX_BLOB_BYTES {
            return Err(StoreError::InvalidInput(format!(
                "blob of {} bytes over cap",
                bytes.len()
            )));
        }
        let meta =
            EntryMeta { kind, key: key.to_string(), workload: workload.to_string(), code_len: 0 };
        let r = (|| {
            let active = self.active.as_mut().expect("active segment writer present");
            active.begin_entry(meta)?;
            for chunk in bytes.chunks(BLOB_BLOCK_BYTES) {
                active.write_blob(chunk)?;
            }
            active.end_entry(bytes.len() as u64)
        })();
        let info = self.abort_on_err(r)?;
        self.commit(SegRef::Active, info)
    }

    // -- streaming writes --------------------------------------------------

    /// Open a chunked trace put under `(workload, key)`: the protocol's
    /// `TRACE_PUT_START`. Text-codec bytes arrive via
    /// [`Corpus::stream_chunk`] and the entry commits only at
    /// [`Corpus::stream_finish`] — until then the key stays unpublished,
    /// and [`Corpus::stream_abort`] (or a failed chunk) truncates every
    /// byte the stream wrote. One stream may be open at a time; a second
    /// `stream_begin` (or any materialized put) is refused while it is.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidInput`] when a stream is already open.
    pub fn stream_begin(&mut self, key: &str, workload: &str) -> Result<(), StoreError> {
        self.reject_if_streaming()?;
        self.stream = Some(StreamPut {
            key: key.to_string(),
            workload: workload.to_string(),
            crc: Crc32::new(),
            bytes_in: 0,
            lineno: 0,
            partial: Vec::new(),
            header_seen: false,
            records: Vec::new(),
            total_records: 0,
        });
        Ok(())
    }

    /// Feed one chunk of text-codec bytes into the open stream. Chunks may
    /// split lines (and multi-byte sequences) anywhere; the parser carries
    /// the partial tail over. Any parse or write failure aborts the stream
    /// — the half-written entry is truncated away before the error returns.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidInput`] when no stream is open or the
    /// bytes are not valid text-codec lines, and I/O errors from the
    /// segment writer.
    pub fn stream_chunk(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let r = self.stream_chunk_inner(bytes);
        if r.is_err() {
            self.stream_abort();
        }
        r
    }

    fn stream_chunk_inner(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let Some(s) = self.stream.as_mut() else {
            return Err(StoreError::InvalidInput("no streaming put is open".into()));
        };
        let active = self.active.as_mut().expect("active segment writer present");
        s.crc.update(bytes);
        s.bytes_in += bytes.len() as u64;
        let mut rest = bytes;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            s.partial.extend_from_slice(head);
            let line = std::mem::take(&mut s.partial);
            stream_line(active, s, &line)?;
        }
        s.partial.extend_from_slice(rest);
        if s.partial.len() > MAX_STREAM_LINE_BYTES {
            return Err(StoreError::InvalidInput(format!(
                "streamed line exceeds {MAX_STREAM_LINE_BYTES} bytes without a newline"
            )));
        }
        Ok(())
    }

    /// Seal the open stream: verify the client's CRC-32 and total length
    /// against the running tallies, flush the trailing records, and commit
    /// the entry. On any mismatch or failure the stream aborts — the key
    /// is never published.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidInput`] on CRC/length mismatch, an
    /// empty stream, or a missing header, and I/O errors from the commit.
    pub fn stream_finish(&mut self, crc32: u32, total_len: u64) -> Result<EntryInfo, StoreError> {
        let r = self.stream_finish_inner(crc32, total_len);
        if r.is_err() {
            self.stream_abort();
        }
        r
    }

    fn stream_finish_inner(&mut self, crc32: u32, total_len: u64) -> Result<EntryInfo, StoreError> {
        let Some(s) = self.stream.as_mut() else {
            return Err(StoreError::InvalidInput("no streaming put is open".into()));
        };
        let active = self.active.as_mut().expect("active segment writer present");
        if s.bytes_in != total_len {
            return Err(StoreError::InvalidInput(format!(
                "stream length mismatch: received {} bytes, client sealed {total_len}",
                s.bytes_in
            )));
        }
        let got = s.crc.finish();
        if got != crc32 {
            return Err(StoreError::InvalidInput(format!(
                "stream crc mismatch: received {got:#010x}, client sealed {crc32:#010x}"
            )));
        }
        // A final line without a trailing newline is still a line.
        if !s.partial.is_empty() {
            let line = std::mem::take(&mut s.partial);
            stream_line(active, s, &line)?;
        }
        if !s.header_seen {
            return Err(StoreError::InvalidInput("stream ended before the header line".into()));
        }
        if !s.records.is_empty() {
            active.write_chunk(&s.records)?;
            s.records.clear();
        }
        let raw = s.bytes_in;
        let info = active.end_entry(raw)?;
        self.stream = None;
        self.commit(SegRef::Active, info)
    }

    /// Drop the open stream (client vanished mid-upload, CRC mismatch,
    /// parse failure): the half-written entry is truncated out of the
    /// active segment, leaving the corpus exactly as it was before
    /// `stream_begin`. Idempotent; a no-op when nothing is streaming.
    pub fn stream_abort(&mut self) {
        if let Some(s) = self.stream.take() {
            if s.header_seen {
                let _ = self.active_mut().abort_entry();
            }
        }
    }

    /// Key of the open streaming put, if any.
    pub fn streaming_key(&self) -> Option<&str> {
        self.stream.as_ref().map(|s| s.key.as_str())
    }

    // -- reads -------------------------------------------------------------

    fn locate(&self, kind: EntryKind, key: &str) -> Result<&Location, StoreError> {
        self.index
            .get(&(kind, key.to_string()))
            .ok_or_else(|| StoreError::NotFound { key: key.to_string() })
    }

    fn path_of(&self, seg: SegRef) -> PathBuf {
        match seg {
            SegRef::Active => active_path(&self.dir),
            SegRef::Sealed(id) => seg_path(&self.dir, id),
        }
    }

    /// Whether `(kind, key)` has a live entry.
    pub fn contains(&self, kind: EntryKind, key: &str) -> bool {
        self.index.contains_key(&(kind, key.to_string()))
    }

    /// Accounting for one live entry.
    pub fn entry_info(&self, kind: EntryKind, key: &str) -> Result<EntryInfo, StoreError> {
        Ok(self.locate(kind, key)?.info.clone())
    }

    /// Open a stored trace for streaming decode (memory bounded by the
    /// chunk size, not the trace length).
    pub fn open_trace(&self, key: &str) -> Result<TraceEntrySource, StoreError> {
        let loc = self.locate(EntryKind::Trace, key)?;
        let stream = open_entry(&self.path_of(loc.seg), loc.info.offset).map_err(|e| {
            if e.is_corrupt() {
                self.metrics.corrupt_blocks.inc();
            }
            e
        })?;
        self.metrics.bytes_out.add(loc.info.encoded_bytes);
        TraceEntrySource::new(stream)
    }

    /// Materialize a stored trace (and record decode throughput).
    pub fn get_trace(&self, key: &str) -> Result<Trace, StoreError> {
        let start = Instant::now();
        let mut source = self.open_trace(key)?;
        let mut builder = TraceBuilder::default();
        match copy_trace(&mut source, &mut builder) {
            Ok(()) => {}
            Err(CopyError::Source(e)) => {
                self.metrics.corrupt_blocks.inc();
                return Err(StoreError::corrupt(0, format!("stored trace damaged: {e}")));
            }
            Err(CopyError::Sink(e)) => match e {},
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            let mbps = source.encoded_bytes_read as f64 / (1 << 20) as f64 / elapsed;
            self.metrics.decode_mb_per_sec.set(mbps as i64);
        }
        Ok(builder.into_trace())
    }

    /// Materialize a stored blob.
    pub fn get_blob(&self, kind: EntryKind, key: &str) -> Result<Vec<u8>, StoreError> {
        let loc = self.locate(kind, key)?;
        let mut stream = open_entry(&self.path_of(loc.seg), loc.info.offset)?;
        let bytes = read_blob(&mut stream, MAX_BLOB_BYTES).map_err(|e| {
            if e.is_corrupt() {
                self.metrics.corrupt_blocks.inc();
            }
            e
        })?;
        self.metrics.bytes_out.add(bytes.len() as u64);
        Ok(bytes)
    }

    /// Live entries, sorted by (kind, key). `workload`, when given, filters
    /// (this is the `ModelKey`-by-workload listing path).
    pub fn entries(&self, workload: Option<&str>) -> Vec<EntryInfo> {
        let mut out: Vec<EntryInfo> = self
            .index
            .values()
            .filter(|loc| workload.map_or(true, |w| loc.info.meta.workload == w))
            .map(|loc| loc.info.clone())
            .collect();
        out.sort_by(|a, b| {
            (a.meta.kind.name(), &a.meta.key).cmp(&(b.meta.kind.name(), &b.meta.key))
        });
        out
    }

    /// Build a Correct Set from every stored trace of `workload` — the
    /// train-from-store path: the daemon and campaigns window the observed
    /// dependences of corpus traces instead of re-running the workload.
    pub fn correct_set(
        &self,
        workload: &str,
        n: usize,
    ) -> Result<act_trace::CorrectSet, StoreError> {
        let mut traces = Vec::new();
        for info in self.entries(Some(workload)) {
            if info.meta.kind == EntryKind::Trace {
                traces.push(self.get_trace(&info.meta.key)?);
            }
        }
        Ok(act_trace::CorrectSet::from_corpus(traces, n))
    }

    /// Corpus-wide accounting.
    pub fn stat(&self) -> Result<CorpusStat, StoreError> {
        let (raw, encoded) = self.live_totals();
        let mut disk = 0;
        for path in &self.sealed {
            disk += fs::metadata(path)?.len();
        }
        disk += fs::metadata(active_path(&self.dir))?.len();
        Ok(CorpusStat {
            sealed_segments: self.sealed.len(),
            live_entries: self.index.len(),
            total_entries: self.total_entries,
            raw_bytes: raw,
            encoded_bytes: encoded,
            ratio_milli: if encoded == 0 { 0 } else { raw * 1000 / encoded },
            disk_bytes: disk,
        })
    }

    /// Rewrite live entries into one fresh sealed segment, then delete the
    /// shadowed history. New data is sealed and renamed into place *before*
    /// old files are unlinked, so a crash can duplicate but never lose.
    pub fn compact(&mut self) -> Result<CompactStat, StoreError> {
        let before = self.stat()?;
        let live = self.entries(None);
        let id = self.next_seg_id;
        self.next_seg_id += 1;
        let tmp = self.dir.join("compact.tmp");
        let mut writer = SegmentWriter::create(&tmp)?;
        for info in &live {
            match info.meta.kind {
                EntryKind::Trace => {
                    let mut source = self.open_trace(&info.meta.key)?;
                    let mut sink =
                        TraceEntrySink::new(&mut writer, &info.meta.key, &info.meta.workload);
                    match copy_trace(&mut source, &mut sink) {
                        Ok(()) => {}
                        Err(CopyError::Source(e)) => {
                            return Err(StoreError::corrupt(0, format!("compact read: {e}")));
                        }
                        Err(CopyError::Sink(e)) => return Err(e),
                    }
                    writer.end_entry(info.raw_bytes)?;
                }
                kind => {
                    let bytes = self.get_blob(kind, &info.meta.key)?;
                    writer.begin_entry(info.meta.clone())?;
                    for chunk in bytes.chunks(BLOB_BLOCK_BYTES) {
                        writer.write_blob(chunk)?;
                    }
                    writer.end_entry(bytes.len() as u64)?;
                }
            }
        }
        let new_entries = writer.entries().to_vec();
        let sealed_tmp = writer.seal()?;
        let spath = seg_path(&self.dir, id);
        fs::rename(sealed_tmp, &spath)?;

        // New segment is durable: now drop the history.
        for path in self.sealed.drain(..) {
            fs::remove_file(&path)?;
        }
        self.active = None;
        let fresh = SegmentWriter::create(active_path(&self.dir))?;
        self.active = Some(fresh);
        self.sealed.push(spath.clone());
        self.index.clear();
        for info in new_entries {
            self.index.insert(
                (info.meta.kind, info.meta.key.clone()),
                Location { seg: SegRef::Sealed(id), info },
            );
        }
        self.total_entries = self.index.len();
        self.publish_ratio();
        let after = self.stat()?;
        Ok(CompactStat {
            entries_kept: self.index.len(),
            entries_dropped: before.total_entries - self.index.len(),
            disk_bytes_before: before.disk_bytes,
            disk_bytes_after: after.disk_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::events::RawDep;
    use act_trace::{TraceKind, TraceRecord};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("act-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace(n: u64, salt: u64) -> Trace {
        let mut records = Vec::new();
        records.push(TraceRecord { seq: 0, cycle: 0, tid: 0, pc: 0, kind: TraceKind::ThreadStart });
        for i in 0..n {
            let pc = (i % 37) as u32 + 1;
            let addr = 64 + (i + salt) * 8;
            let kind = match i % 4 {
                0 => TraceKind::Store { addr },
                1 => TraceKind::Load {
                    addr,
                    dep: Some(RawDep {
                        store_pc: pc.wrapping_sub(1),
                        load_pc: pc,
                        inter_thread: i % 8 == 1,
                    }),
                },
                2 => TraceKind::Branch { taken: i % 3 == 0 },
                _ => TraceKind::Load { addr, dep: None },
            };
            records.push(TraceRecord {
                seq: i + 1,
                cycle: 2 * i + 1,
                tid: (i % 2) as u32,
                pc,
                kind,
            });
        }
        Trace { records, code_len: 40 }
    }

    #[test]
    fn put_get_roundtrip_is_byte_identical() {
        let dir = tmp_dir("roundtrip");
        let mut c = Corpus::init(&dir).unwrap();
        let trace = sample_trace(500, 3);
        c.put_trace("t1", "wl", &trace).unwrap();
        let back = c.get_trace("t1").unwrap();
        assert_eq!(act_trace::io::trace_to_bytes(&back), act_trace::io::trace_to_bytes(&trace));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_trace_bytes_matches_put_trace() {
        let dir = tmp_dir("bytes");
        let mut c = Corpus::init(&dir).unwrap();
        let trace = sample_trace(100, 0);
        let text = act_trace::io::trace_to_bytes(&trace);
        let info = c.put_trace_bytes("t1", "wl", &text).unwrap();
        assert_eq!(info.raw_bytes, text.len() as u64);
        assert_eq!(act_trace::io::trace_to_bytes(&c.get_trace("t1").unwrap()), text);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_trace_bytes_leave_no_partial_entry() {
        let dir = tmp_dir("hostile");
        let mut c = Corpus::init(&dir).unwrap();
        let err = c.put_trace_bytes("bad", "wl", b"acttrace v1 10\nL not a record\n");
        assert!(err.is_err());
        assert!(!c.contains(EntryKind::Trace, "bad"));
        // The corpus stays usable and recovery drops the aborted blocks.
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        assert_eq!(c.entries(None).len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_put_matches_materialized_put_for_any_chunking() {
        let dir = tmp_dir("stream");
        let mut c = Corpus::init(&dir).unwrap();
        let trace = sample_trace(300, 5);
        let text = act_trace::io::trace_to_bytes(&trace);
        let crc = crate::crc32::crc32(&text);
        // Chunk sizes chosen to split lines (and the header) mid-way.
        for (i, chunk_len) in [1usize, 3, 7, 64, text.len()].into_iter().enumerate() {
            let key = format!("s{i}");
            c.stream_begin(&key, "wl").unwrap();
            assert_eq!(c.streaming_key(), Some(key.as_str()));
            for chunk in text.chunks(chunk_len) {
                c.stream_chunk(chunk).unwrap();
            }
            let info = c.stream_finish(crc, text.len() as u64).unwrap();
            assert_eq!(info.raw_bytes, text.len() as u64);
            assert!(c.streaming_key().is_none());
            assert_eq!(act_trace::io::trace_to_bytes(&c.get_trace(&key).unwrap()), text);
        }
        // Byte-for-byte the same accounting as the materialized path.
        let info = c.put_trace_bytes("mat", "wl", &text).unwrap();
        let streamed = c.entry_info(EntryKind::Trace, "s0").unwrap();
        assert_eq!(info.raw_bytes, streamed.raw_bytes);
        assert_eq!(info.records, streamed.records);
        assert_eq!(info.encoded_bytes, streamed.encoded_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_crc_and_length_mismatches_abort_without_publishing() {
        let dir = tmp_dir("stream-crc");
        let mut c = Corpus::init(&dir).unwrap();
        let text = act_trace::io::trace_to_bytes(&sample_trace(50, 1));
        let crc = crate::crc32::crc32(&text);

        c.stream_begin("bad-crc", "wl").unwrap();
        c.stream_chunk(&text).unwrap();
        let err = c.stream_finish(crc ^ 1, text.len() as u64).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "{err}");
        assert!(!c.contains(EntryKind::Trace, "bad-crc"));
        assert!(c.streaming_key().is_none(), "failed finish drops the stream");

        c.stream_begin("bad-len", "wl").unwrap();
        c.stream_chunk(&text).unwrap();
        let err = c.stream_finish(crc, text.len() as u64 + 1).unwrap_err();
        assert!(err.to_string().contains("length mismatch"), "{err}");
        assert!(!c.contains(EntryKind::Trace, "bad-len"));

        // The corpus is still fully usable afterwards.
        c.put_trace_bytes("ok", "wl", &text).unwrap();
        assert!(c.contains(EntryKind::Trace, "ok"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aborted_stream_leaves_no_partial_entry_after_reopen() {
        let dir = tmp_dir("stream-abort");
        let mut c = Corpus::init(&dir).unwrap();
        let text = act_trace::io::trace_to_bytes(&sample_trace(5000, 2));
        c.stream_begin("half", "wl").unwrap();
        // Feed enough to open the entry and flush real columnar chunks,
        // then drop the client mid-upload.
        c.stream_chunk(&text[..text.len() / 2]).unwrap();
        c.stream_abort();
        assert!(!c.contains(EntryKind::Trace, "half"));
        // Recovery on reopen sees no trace of the half-streamed entry.
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        assert_eq!(c.entries(None).len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn materialized_puts_are_refused_while_a_stream_is_open() {
        let dir = tmp_dir("stream-lock");
        let mut c = Corpus::init(&dir).unwrap();
        let trace = sample_trace(20, 3);
        let text = act_trace::io::trace_to_bytes(&trace);
        c.stream_begin("s", "wl").unwrap();
        c.stream_chunk(&text[..10]).unwrap();
        assert!(c.put_trace("t", "wl", &trace).is_err());
        assert!(c.put_trace_bytes("t", "wl", &text).is_err());
        assert!(c.put_blob(EntryKind::Model, "m", "wl", b"w").is_err());
        assert!(c.stream_begin("s2", "wl").is_err(), "one stream at a time");
        // The open stream survives those refusals and still finishes.
        let rest = &text[10..];
        c.stream_chunk(rest).unwrap();
        c.stream_finish(crate::crc32::crc32(&text), text.len() as u64).unwrap();
        assert_eq!(act_trace::io::trace_to_bytes(&c.get_trace("s").unwrap()), text);
        c.put_trace("t", "wl", &trace).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_mid_stream_aborts_and_truncates() {
        let dir = tmp_dir("stream-garbage");
        let mut c = Corpus::init(&dir).unwrap();
        c.stream_begin("bad", "wl").unwrap();
        c.stream_chunk(b"acttrace v1 10\n").unwrap();
        assert!(c.stream_chunk(b"L not a record\n").is_err());
        assert!(c.streaming_key().is_none(), "failed chunk aborts the stream");
        assert!(!c.contains(EntryKind::Trace, "bad"));
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        assert_eq!(c.entries(None).len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_shadow_latest_wins_and_compact_reclaims() {
        let dir = tmp_dir("shadow");
        let mut c = Corpus::init(&dir).unwrap();
        c.put_trace("t", "wl", &sample_trace(50, 1)).unwrap();
        let newer = sample_trace(50, 2);
        c.put_trace("t", "wl", &newer).unwrap();
        c.put_blob(EntryKind::Model, "m", "wl", b"weights-v2").unwrap();
        assert_eq!(c.entries(None).len(), 2);
        let stat = c.compact().unwrap();
        assert_eq!(stat.entries_kept, 2);
        assert_eq!(stat.entries_dropped, 1);
        assert!(stat.disk_bytes_after <= stat.disk_bytes_before);
        assert_eq!(
            act_trace::io::trace_to_bytes(&c.get_trace("t").unwrap()),
            act_trace::io::trace_to_bytes(&newer)
        );
        assert_eq!(c.get_blob(EntryKind::Model, "m").unwrap(), b"weights-v2");
        // And the compacted corpus reopens cleanly.
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        assert_eq!(c.entries(None).len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_rollover_and_reopen() {
        let dir = tmp_dir("rollover");
        let mut c = Corpus::init(&dir).unwrap();
        c.set_seal_bytes(256);
        for i in 0..6 {
            c.put_trace(&format!("t{i}"), "wl", &sample_trace(80, i)).unwrap();
        }
        let stat = c.stat().unwrap();
        assert!(stat.sealed_segments >= 1, "expected rollover, got {stat:?}");
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        for i in 0..6 {
            assert_eq!(
                act_trace::io::trace_to_bytes(&c.get_trace(&format!("t{i}")).unwrap()),
                act_trace::io::trace_to_bytes(&sample_trace(80, i))
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_filter_by_workload() {
        let dir = tmp_dir("filter");
        let mut c = Corpus::init(&dir).unwrap();
        c.put_trace("a", "w1", &sample_trace(10, 0)).unwrap();
        c.put_trace("b", "w2", &sample_trace(10, 0)).unwrap();
        assert_eq!(c.entries(Some("w1")).len(), 1);
        assert_eq!(c.entries(None).len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_key_is_not_found() {
        let dir = tmp_dir("missing");
        let c = Corpus::init(&dir).unwrap();
        assert!(matches!(c.get_trace("nope"), Err(StoreError::NotFound { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn init_refuses_existing_corpus() {
        let dir = tmp_dir("reinit");
        let _ = Corpus::init(&dir).unwrap();
        assert!(Corpus::init(&dir).is_err());
        assert!(Corpus::open_or_init(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
