//! The [`Corpus`]: a directory of segment files plus an in-memory key index.
//!
//! On disk a corpus is
//!
//! ```text
//! corpus/
//!   seg-000001.seg     sealed (immutable, footer-indexed)
//!   seg-000002.seg
//!   active.seg         unsealed append target, scanned on open
//! ```
//!
//! Appends go to `active.seg`; once it grows past the seal threshold it is
//! sealed (footer written, fsync'd) and atomically renamed to the next
//! `seg-N` — readers only ever observe a fully-written sealed file or the
//! scannable active file. Keys shadow by recency: the same `(kind, key)`
//! appended again wins, and `compact` rewrites only the live entries into a
//! fresh sealed segment before deleting the old files (new data is durable
//! before old data is unlinked, so a crash between the two steps leaves
//! duplicates, not loss).

use crate::error::StoreError;
use crate::metrics::StoreMetrics;
use crate::segment::{
    open_entry, read_blob, read_sealed_index, scan_segment, EntryInfo, EntryKind, EntryMeta,
    SegmentWriter, TraceEntrySink, TraceEntrySource,
};
use act_obs::metrics::Registry;
use act_trace::io::{
    copy_trace, stream_trace, CopyError, TextTraceSink, TextTraceSource, TraceBuilder,
};
use act_trace::Trace;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Seal the active segment once it exceeds this many bytes.
pub const DEFAULT_SEAL_BYTES: u64 = 4 << 20;
/// Cap on a materialized blob entry (mirrors `act-serve`'s payload cap).
pub const MAX_BLOB_BYTES: usize = 64 << 20;
/// Write blobs in blocks of at most this size.
const BLOB_BLOCK_BYTES: usize = 1 << 20;

/// What `Corpus::open` had to do to get a consistent view.
#[derive(Debug, Clone, Default)]
pub struct OpenReport {
    /// Bytes truncated off the active segment's uncommitted tail.
    pub dropped_bytes: u64,
    /// Whether a damaged/partial tail was dropped.
    pub dropped_tail: bool,
    /// Sealed segments whose footer was damaged and had to be scanned.
    pub scanned_segments: usize,
}

/// Corpus-wide accounting for `act store stat`.
#[derive(Debug, Clone)]
pub struct CorpusStat {
    /// Sealed segment files.
    pub sealed_segments: usize,
    /// Live (non-shadowed) entries.
    pub live_entries: usize,
    /// Entries on disk including shadowed ones.
    pub total_entries: usize,
    /// Uncompressed payload bytes of live entries.
    pub raw_bytes: u64,
    /// Compressed payload bytes of live entries.
    pub encoded_bytes: u64,
    /// Live compression ratio ×1000 (3000 = 3×).
    pub ratio_milli: u64,
    /// Total segment file bytes on disk.
    pub disk_bytes: u64,
}

/// Result of a `compact` pass.
#[derive(Debug, Clone)]
pub struct CompactStat {
    /// Entries carried into the new segment.
    pub entries_kept: usize,
    /// Entries dropped because a newer write shadowed them.
    pub entries_dropped: usize,
    /// Disk bytes before → after.
    pub disk_bytes_before: u64,
    /// Disk bytes after compaction.
    pub disk_bytes_after: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegRef {
    Sealed(u64),
    Active,
}

#[derive(Debug, Clone)]
struct Location {
    seg: SegRef,
    info: EntryInfo,
}

/// An open corpus: the append writer plus the live-key index.
pub struct Corpus {
    dir: PathBuf,
    active: Option<SegmentWriter>,
    sealed: Vec<PathBuf>,
    index: HashMap<(EntryKind, String), Location>,
    total_entries: usize,
    report: OpenReport,
    metrics: StoreMetrics,
    seal_bytes: u64,
    next_seg_id: u64,
}

fn active_path(dir: &Path) -> PathBuf {
    dir.join("active.seg")
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.seg"))
}

fn seg_id_of(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    rest.parse().ok()
}

/// A `Write` that only counts — used to price a trace in text-codec bytes
/// (the compression-ratio baseline) without allocating the text.
#[derive(Default)]
struct CountWriter(u64);

impl Write for CountWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Text-codec byte size of `trace` (what `trace_to_bytes` would produce).
pub fn text_size_of(trace: &Trace) -> u64 {
    let mut sink = TextTraceSink::new(CountWriter::default());
    stream_trace(trace, &mut sink).expect("counting writer cannot fail");
    sink.into_inner().0
}

impl Corpus {
    /// Create a fresh corpus at `dir` (the directory may exist but must not
    /// already hold segments).
    pub fn init(dir: impl Into<PathBuf>) -> Result<Corpus, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if active_path(&dir).exists() {
            return Err(StoreError::InvalidInput(format!("{} is already a corpus", dir.display())));
        }
        let active = SegmentWriter::create(active_path(&dir))?;
        Ok(Corpus {
            dir,
            active: Some(active),
            sealed: Vec::new(),
            index: HashMap::new(),
            total_entries: 0,
            report: OpenReport::default(),
            metrics: StoreMetrics::global(),
            seal_bytes: DEFAULT_SEAL_BYTES,
            next_seg_id: 1,
        })
    }

    /// Open an existing corpus, recovering the active segment's committed
    /// prefix (any torn tail is truncated away and reported).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Corpus, StoreError> {
        let dir = dir.into();
        if !active_path(&dir).exists() && !dir.is_dir() {
            return Err(StoreError::InvalidInput(format!("{} is not a corpus", dir.display())));
        }
        let metrics = StoreMetrics::global();
        let mut report = OpenReport::default();

        // Discover sealed segments.
        let mut ids: Vec<u64> = Vec::new();
        for ent in fs::read_dir(&dir)? {
            let name = ent?.file_name();
            if let Some(id) = name.to_str().and_then(seg_id_of) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut sealed = Vec::new();
        let mut index: HashMap<(EntryKind, String), Location> = HashMap::new();
        let mut total_entries = 0usize;
        for &id in &ids {
            let path = seg_path(&dir, id);
            let entries = match read_sealed_index(&path) {
                Ok(Some(entries)) => entries,
                // Unsealed or damaged footer: fall back to a scan.
                Ok(None) | Err(StoreError::Corrupt { .. }) => {
                    metrics.corrupt_blocks.inc();
                    report.scanned_segments += 1;
                    scan_segment(&path)?.entries
                }
                Err(e) => return Err(e),
            };
            total_entries += entries.len();
            for info in entries {
                index.insert(
                    (info.meta.kind, info.meta.key.clone()),
                    Location { seg: SegRef::Sealed(id), info },
                );
            }
            sealed.push(path);
        }
        let mut next_seg_id = ids.last().map_or(1, |m| m + 1);

        // Recover the active segment.
        let apath = active_path(&dir);
        let active = if apath.exists() {
            let scan = scan_segment(&apath)?;
            if scan.sealed {
                // Crash between seal and rename: finish the rename now.
                let id = next_seg_id;
                next_seg_id += 1;
                let spath = seg_path(&dir, id);
                fs::rename(&apath, &spath)?;
                let entries = read_sealed_index(&spath)?
                    .ok_or_else(|| StoreError::corrupt(0, "sealed segment lost its footer"))?;
                total_entries += entries.len();
                for info in entries {
                    index.insert(
                        (info.meta.kind, info.meta.key.clone()),
                        Location { seg: SegRef::Sealed(id), info },
                    );
                }
                sealed.push(spath.clone());
                SegmentWriter::create(&apath)?
            } else {
                if scan.dropped_bytes() > 0 {
                    report.dropped_bytes = scan.dropped_bytes();
                    report.dropped_tail = true;
                    metrics.corrupt_blocks.inc();
                    let f = fs::OpenOptions::new().write(true).open(&apath)?;
                    f.set_len(scan.committed_len)?;
                    f.sync_all()?;
                }
                total_entries += scan.entries.len();
                for info in &scan.entries {
                    index.insert(
                        (info.meta.kind, info.meta.key.clone()),
                        Location { seg: SegRef::Active, info: info.clone() },
                    );
                }
                SegmentWriter::resume(&apath, scan.committed_len, scan.entries)?
            }
        } else {
            SegmentWriter::create(&apath)?
        };

        let corpus = Corpus {
            dir,
            active: Some(active),
            sealed,
            index,
            total_entries,
            report,
            metrics,
            seal_bytes: DEFAULT_SEAL_BYTES,
            next_seg_id,
        };
        corpus.publish_ratio();
        Ok(corpus)
    }

    /// Open `dir` as a corpus, creating it when empty/missing.
    pub fn open_or_init(dir: impl Into<PathBuf>) -> Result<Corpus, StoreError> {
        let dir = dir.into();
        if active_path(&dir).exists() {
            Corpus::open(dir)
        } else {
            Corpus::init(dir)
        }
    }

    /// Re-register the store instruments on `registry` (e.g. the serving
    /// daemon's per-server registry) instead of the process-global one.
    pub fn with_registry(mut self, registry: &Registry) -> Corpus {
        self.metrics = StoreMetrics::register(registry);
        self.publish_ratio();
        self
    }

    /// Directory this corpus lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What `open` recovered.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// Lower the seal threshold (tests exercise segment rollover with it).
    pub fn set_seal_bytes(&mut self, bytes: u64) {
        self.seal_bytes = bytes.max(64);
    }

    fn active_mut(&mut self) -> &mut SegmentWriter {
        self.active.as_mut().expect("active segment writer present")
    }

    fn live_totals(&self) -> (u64, u64) {
        let mut raw = 0;
        let mut encoded = 0;
        for loc in self.index.values() {
            raw += loc.info.raw_bytes;
            encoded += loc.info.encoded_bytes;
        }
        (raw, encoded)
    }

    fn publish_ratio(&self) {
        let (raw, encoded) = self.live_totals();
        self.metrics.set_ratio(raw, encoded);
    }

    fn commit(&mut self, seg: SegRef, info: EntryInfo) -> Result<EntryInfo, StoreError> {
        self.metrics.bytes_in.add(info.raw_bytes);
        self.total_entries += 1;
        self.index
            .insert((info.meta.kind, info.meta.key.clone()), Location { seg, info: info.clone() });
        self.publish_ratio();
        self.maybe_seal()?;
        Ok(info)
    }

    fn maybe_seal(&mut self) -> Result<(), StoreError> {
        if self.active.as_ref().map_or(0, |a| a.offset()) < self.seal_bytes {
            return Ok(());
        }
        let writer = self.active.take().expect("active segment writer present");
        if writer.entries().is_empty() {
            self.active = Some(writer);
            return Ok(());
        }
        let id = self.next_seg_id;
        self.next_seg_id += 1;
        let apath = writer.seal()?;
        let spath = seg_path(&self.dir, id);
        fs::rename(&apath, &spath)?;
        self.sealed.push(spath.clone());
        for loc in self.index.values_mut() {
            if loc.seg == SegRef::Active {
                loc.seg = SegRef::Sealed(id);
            }
        }
        self.active = Some(SegmentWriter::create(active_path(&self.dir))?);
        Ok(())
    }

    // -- writes ------------------------------------------------------------

    /// Truncate away a half-written entry after a failed put, so one bad
    /// input cannot wedge the writer or leave junk for recovery to drop.
    fn abort_on_err<T>(&mut self, r: Result<T, StoreError>) -> Result<T, StoreError> {
        if r.is_err() {
            let _ = self.active_mut().abort_entry();
        }
        r
    }

    /// Store a trace under `(workload, key)`, streaming it through the
    /// columnar codec. Returns the committed entry's accounting.
    pub fn put_trace(
        &mut self,
        key: &str,
        workload: &str,
        trace: &Trace,
    ) -> Result<EntryInfo, StoreError> {
        let raw = text_size_of(trace);
        let r = (|| {
            let active = self.active.as_mut().expect("active segment writer present");
            let mut sink = TraceEntrySink::new(active, key, workload);
            stream_trace(trace, &mut sink)?;
            active.end_entry(raw)
        })();
        let info = self.abort_on_err(r)?;
        self.commit(SegRef::Active, info)
    }

    /// Ingest a text-codec trace payload (the daemon's `TRACE_PUT` path):
    /// parsed and re-encoded record-by-record, so the uncompressed text is
    /// never materialized a second time.
    pub fn put_trace_bytes(
        &mut self,
        key: &str,
        workload: &str,
        bytes: &[u8],
    ) -> Result<EntryInfo, StoreError> {
        let mut source = TextTraceSource::new(bytes)
            .map_err(|e| StoreError::InvalidInput(format!("trace payload rejected: {e}")))?;
        let r = (|| {
            let active = self.active.as_mut().expect("active segment writer present");
            let mut sink = TraceEntrySink::new(active, key, workload);
            match copy_trace(&mut source, &mut sink) {
                Ok(()) => {}
                Err(CopyError::Source(e)) => {
                    return Err(StoreError::InvalidInput(format!("trace payload rejected: {e}")));
                }
                Err(CopyError::Sink(e)) => return Err(e),
            }
            active.end_entry(bytes.len() as u64)
        })();
        let info = self.abort_on_err(r)?;
        self.commit(SegRef::Active, info)
    }

    /// Store an opaque blob (model weights, serialized correct sets).
    pub fn put_blob(
        &mut self,
        kind: EntryKind,
        key: &str,
        workload: &str,
        bytes: &[u8],
    ) -> Result<EntryInfo, StoreError> {
        if kind == EntryKind::Trace {
            return Err(StoreError::InvalidInput("traces go through put_trace".into()));
        }
        if bytes.len() > MAX_BLOB_BYTES {
            return Err(StoreError::InvalidInput(format!(
                "blob of {} bytes over cap",
                bytes.len()
            )));
        }
        let meta =
            EntryMeta { kind, key: key.to_string(), workload: workload.to_string(), code_len: 0 };
        let r = (|| {
            let active = self.active.as_mut().expect("active segment writer present");
            active.begin_entry(meta)?;
            for chunk in bytes.chunks(BLOB_BLOCK_BYTES) {
                active.write_blob(chunk)?;
            }
            active.end_entry(bytes.len() as u64)
        })();
        let info = self.abort_on_err(r)?;
        self.commit(SegRef::Active, info)
    }

    // -- reads -------------------------------------------------------------

    fn locate(&self, kind: EntryKind, key: &str) -> Result<&Location, StoreError> {
        self.index
            .get(&(kind, key.to_string()))
            .ok_or_else(|| StoreError::NotFound { key: key.to_string() })
    }

    fn path_of(&self, seg: SegRef) -> PathBuf {
        match seg {
            SegRef::Active => active_path(&self.dir),
            SegRef::Sealed(id) => seg_path(&self.dir, id),
        }
    }

    /// Whether `(kind, key)` has a live entry.
    pub fn contains(&self, kind: EntryKind, key: &str) -> bool {
        self.index.contains_key(&(kind, key.to_string()))
    }

    /// Accounting for one live entry.
    pub fn entry_info(&self, kind: EntryKind, key: &str) -> Result<EntryInfo, StoreError> {
        Ok(self.locate(kind, key)?.info.clone())
    }

    /// Open a stored trace for streaming decode (memory bounded by the
    /// chunk size, not the trace length).
    pub fn open_trace(&self, key: &str) -> Result<TraceEntrySource, StoreError> {
        let loc = self.locate(EntryKind::Trace, key)?;
        let stream = open_entry(&self.path_of(loc.seg), loc.info.offset).map_err(|e| {
            if e.is_corrupt() {
                self.metrics.corrupt_blocks.inc();
            }
            e
        })?;
        self.metrics.bytes_out.add(loc.info.encoded_bytes);
        TraceEntrySource::new(stream)
    }

    /// Materialize a stored trace (and record decode throughput).
    pub fn get_trace(&self, key: &str) -> Result<Trace, StoreError> {
        let start = Instant::now();
        let mut source = self.open_trace(key)?;
        let mut builder = TraceBuilder::default();
        match copy_trace(&mut source, &mut builder) {
            Ok(()) => {}
            Err(CopyError::Source(e)) => {
                self.metrics.corrupt_blocks.inc();
                return Err(StoreError::corrupt(0, format!("stored trace damaged: {e}")));
            }
            Err(CopyError::Sink(e)) => match e {},
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            let mbps = source.encoded_bytes_read as f64 / (1 << 20) as f64 / elapsed;
            self.metrics.decode_mb_per_sec.set(mbps as i64);
        }
        Ok(builder.into_trace())
    }

    /// Materialize a stored blob.
    pub fn get_blob(&self, kind: EntryKind, key: &str) -> Result<Vec<u8>, StoreError> {
        let loc = self.locate(kind, key)?;
        let mut stream = open_entry(&self.path_of(loc.seg), loc.info.offset)?;
        let bytes = read_blob(&mut stream, MAX_BLOB_BYTES).map_err(|e| {
            if e.is_corrupt() {
                self.metrics.corrupt_blocks.inc();
            }
            e
        })?;
        self.metrics.bytes_out.add(bytes.len() as u64);
        Ok(bytes)
    }

    /// Live entries, sorted by (kind, key). `workload`, when given, filters
    /// (this is the `ModelKey`-by-workload listing path).
    pub fn entries(&self, workload: Option<&str>) -> Vec<EntryInfo> {
        let mut out: Vec<EntryInfo> = self
            .index
            .values()
            .filter(|loc| workload.map_or(true, |w| loc.info.meta.workload == w))
            .map(|loc| loc.info.clone())
            .collect();
        out.sort_by(|a, b| {
            (a.meta.kind.name(), &a.meta.key).cmp(&(b.meta.kind.name(), &b.meta.key))
        });
        out
    }

    /// Build a Correct Set from every stored trace of `workload` — the
    /// train-from-store path: the daemon and campaigns window the observed
    /// dependences of corpus traces instead of re-running the workload.
    pub fn correct_set(
        &self,
        workload: &str,
        n: usize,
    ) -> Result<act_trace::CorrectSet, StoreError> {
        let mut traces = Vec::new();
        for info in self.entries(Some(workload)) {
            if info.meta.kind == EntryKind::Trace {
                traces.push(self.get_trace(&info.meta.key)?);
            }
        }
        Ok(act_trace::CorrectSet::from_corpus(traces, n))
    }

    /// Corpus-wide accounting.
    pub fn stat(&self) -> Result<CorpusStat, StoreError> {
        let (raw, encoded) = self.live_totals();
        let mut disk = 0;
        for path in &self.sealed {
            disk += fs::metadata(path)?.len();
        }
        disk += fs::metadata(active_path(&self.dir))?.len();
        Ok(CorpusStat {
            sealed_segments: self.sealed.len(),
            live_entries: self.index.len(),
            total_entries: self.total_entries,
            raw_bytes: raw,
            encoded_bytes: encoded,
            ratio_milli: if encoded == 0 { 0 } else { raw * 1000 / encoded },
            disk_bytes: disk,
        })
    }

    /// Rewrite live entries into one fresh sealed segment, then delete the
    /// shadowed history. New data is sealed and renamed into place *before*
    /// old files are unlinked, so a crash can duplicate but never lose.
    pub fn compact(&mut self) -> Result<CompactStat, StoreError> {
        let before = self.stat()?;
        let live = self.entries(None);
        let id = self.next_seg_id;
        self.next_seg_id += 1;
        let tmp = self.dir.join("compact.tmp");
        let mut writer = SegmentWriter::create(&tmp)?;
        for info in &live {
            match info.meta.kind {
                EntryKind::Trace => {
                    let mut source = self.open_trace(&info.meta.key)?;
                    let mut sink =
                        TraceEntrySink::new(&mut writer, &info.meta.key, &info.meta.workload);
                    match copy_trace(&mut source, &mut sink) {
                        Ok(()) => {}
                        Err(CopyError::Source(e)) => {
                            return Err(StoreError::corrupt(0, format!("compact read: {e}")));
                        }
                        Err(CopyError::Sink(e)) => return Err(e),
                    }
                    writer.end_entry(info.raw_bytes)?;
                }
                kind => {
                    let bytes = self.get_blob(kind, &info.meta.key)?;
                    writer.begin_entry(info.meta.clone())?;
                    for chunk in bytes.chunks(BLOB_BLOCK_BYTES) {
                        writer.write_blob(chunk)?;
                    }
                    writer.end_entry(bytes.len() as u64)?;
                }
            }
        }
        let new_entries = writer.entries().to_vec();
        let sealed_tmp = writer.seal()?;
        let spath = seg_path(&self.dir, id);
        fs::rename(sealed_tmp, &spath)?;

        // New segment is durable: now drop the history.
        for path in self.sealed.drain(..) {
            fs::remove_file(&path)?;
        }
        self.active = None;
        let fresh = SegmentWriter::create(active_path(&self.dir))?;
        self.active = Some(fresh);
        self.sealed.push(spath.clone());
        self.index.clear();
        for info in new_entries {
            self.index.insert(
                (info.meta.kind, info.meta.key.clone()),
                Location { seg: SegRef::Sealed(id), info },
            );
        }
        self.total_entries = self.index.len();
        self.publish_ratio();
        let after = self.stat()?;
        Ok(CompactStat {
            entries_kept: self.index.len(),
            entries_dropped: before.total_entries - self.index.len(),
            disk_bytes_before: before.disk_bytes,
            disk_bytes_after: after.disk_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::events::RawDep;
    use act_trace::{TraceKind, TraceRecord};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("act-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace(n: u64, salt: u64) -> Trace {
        let mut records = Vec::new();
        records.push(TraceRecord { seq: 0, cycle: 0, tid: 0, pc: 0, kind: TraceKind::ThreadStart });
        for i in 0..n {
            let pc = (i % 37) as u32 + 1;
            let addr = 64 + (i + salt) * 8;
            let kind = match i % 4 {
                0 => TraceKind::Store { addr },
                1 => TraceKind::Load {
                    addr,
                    dep: Some(RawDep {
                        store_pc: pc.wrapping_sub(1),
                        load_pc: pc,
                        inter_thread: i % 8 == 1,
                    }),
                },
                2 => TraceKind::Branch { taken: i % 3 == 0 },
                _ => TraceKind::Load { addr, dep: None },
            };
            records.push(TraceRecord {
                seq: i + 1,
                cycle: 2 * i + 1,
                tid: (i % 2) as u32,
                pc,
                kind,
            });
        }
        Trace { records, code_len: 40 }
    }

    #[test]
    fn put_get_roundtrip_is_byte_identical() {
        let dir = tmp_dir("roundtrip");
        let mut c = Corpus::init(&dir).unwrap();
        let trace = sample_trace(500, 3);
        c.put_trace("t1", "wl", &trace).unwrap();
        let back = c.get_trace("t1").unwrap();
        assert_eq!(act_trace::io::trace_to_bytes(&back), act_trace::io::trace_to_bytes(&trace));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_trace_bytes_matches_put_trace() {
        let dir = tmp_dir("bytes");
        let mut c = Corpus::init(&dir).unwrap();
        let trace = sample_trace(100, 0);
        let text = act_trace::io::trace_to_bytes(&trace);
        let info = c.put_trace_bytes("t1", "wl", &text).unwrap();
        assert_eq!(info.raw_bytes, text.len() as u64);
        assert_eq!(act_trace::io::trace_to_bytes(&c.get_trace("t1").unwrap()), text);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_trace_bytes_leave_no_partial_entry() {
        let dir = tmp_dir("hostile");
        let mut c = Corpus::init(&dir).unwrap();
        let err = c.put_trace_bytes("bad", "wl", b"acttrace v1 10\nL not a record\n");
        assert!(err.is_err());
        assert!(!c.contains(EntryKind::Trace, "bad"));
        // The corpus stays usable and recovery drops the aborted blocks.
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        assert_eq!(c.entries(None).len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_shadow_latest_wins_and_compact_reclaims() {
        let dir = tmp_dir("shadow");
        let mut c = Corpus::init(&dir).unwrap();
        c.put_trace("t", "wl", &sample_trace(50, 1)).unwrap();
        let newer = sample_trace(50, 2);
        c.put_trace("t", "wl", &newer).unwrap();
        c.put_blob(EntryKind::Model, "m", "wl", b"weights-v2").unwrap();
        assert_eq!(c.entries(None).len(), 2);
        let stat = c.compact().unwrap();
        assert_eq!(stat.entries_kept, 2);
        assert_eq!(stat.entries_dropped, 1);
        assert!(stat.disk_bytes_after <= stat.disk_bytes_before);
        assert_eq!(
            act_trace::io::trace_to_bytes(&c.get_trace("t").unwrap()),
            act_trace::io::trace_to_bytes(&newer)
        );
        assert_eq!(c.get_blob(EntryKind::Model, "m").unwrap(), b"weights-v2");
        // And the compacted corpus reopens cleanly.
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        assert_eq!(c.entries(None).len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_rollover_and_reopen() {
        let dir = tmp_dir("rollover");
        let mut c = Corpus::init(&dir).unwrap();
        c.set_seal_bytes(256);
        for i in 0..6 {
            c.put_trace(&format!("t{i}"), "wl", &sample_trace(80, i)).unwrap();
        }
        let stat = c.stat().unwrap();
        assert!(stat.sealed_segments >= 1, "expected rollover, got {stat:?}");
        drop(c);
        let c = Corpus::open(&dir).unwrap();
        for i in 0..6 {
            assert_eq!(
                act_trace::io::trace_to_bytes(&c.get_trace(&format!("t{i}")).unwrap()),
                act_trace::io::trace_to_bytes(&sample_trace(80, i))
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_filter_by_workload() {
        let dir = tmp_dir("filter");
        let mut c = Corpus::init(&dir).unwrap();
        c.put_trace("a", "w1", &sample_trace(10, 0)).unwrap();
        c.put_trace("b", "w2", &sample_trace(10, 0)).unwrap();
        assert_eq!(c.entries(Some("w1")).len(), 1);
        assert_eq!(c.entries(None).len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_key_is_not_found() {
        let dir = tmp_dir("missing");
        let c = Corpus::init(&dir).unwrap();
        assert!(matches!(c.get_trace("nope"), Err(StoreError::NotFound { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn init_refuses_existing_corpus() {
        let dir = tmp_dir("reinit");
        let _ = Corpus::init(&dir).unwrap();
        assert!(Corpus::init(&dir).is_err());
        assert!(Corpus::open_or_init(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
