//! Append-only segment files: CRC-checksummed blocks with a footer index.
//!
//! Layout:
//!
//! ```text
//! "ACTSEG1\n"                                    8-byte file magic
//! block*                                         append-only block stream
//! [INDEX block]  [index_off:u64le "ACTSEND1"]    footer, sealed files only
//! ```
//!
//! Every block is `kind:u8  len:u32le  crc:u32le  body:len bytes` where
//! `crc` is the CRC-32 of the body. An entry is the block run
//! `ENTRY_BEGIN DATA* ENTRY_END`; it is **committed** iff its `ENTRY_END`
//! is present and valid, which is what makes recovery a pure prefix scan:
//! walk blocks until the first damaged or partial one, keep every entry
//! committed before that point, drop the rest.
//!
//! A sealed segment ends with an `INDEX` block (the entry table) and a
//! 16-byte trailer pointing at it, so opening a sealed file costs two seeks.
//! The active segment of a corpus has no footer yet and is recovered by
//! scanning.

use crate::column::{decode_chunk, encode_chunk, CHUNK_RECORDS};
use crate::crc32::crc32;
use crate::error::{to_parse_error, StoreError};
use crate::varint::{get_varint, put_varint};
use act_trace::io::{TraceSink, TraceSource};
use act_trace::TraceRecord;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic at offset 0.
pub const SEG_MAGIC: &[u8; 8] = b"ACTSEG1\n";
/// Trailer magic ending a sealed segment.
pub const SEG_TRAILER_MAGIC: &[u8; 8] = b"ACTSEND1";
/// `kind + len + crc` prefix of every block.
pub const BLOCK_HEADER_BYTES: usize = 9;
/// Trailer size (`index_off:u64le` + trailer magic).
pub const TRAILER_BYTES: usize = 16;
/// Upper bound on one block body — checked before any allocation, mirroring
/// `act-serve`'s pre-allocation cap so hostile length fields cannot OOM.
pub const MAX_BLOCK_BYTES: usize = 16 << 20;
/// Upper bound on key / workload strings.
pub const MAX_KEY_BYTES: usize = 4096;

const BLOCK_ENTRY_BEGIN: u8 = 0x01;
const BLOCK_DATA: u8 = 0x02;
const BLOCK_ENTRY_END: u8 = 0x03;
const BLOCK_INDEX: u8 = 0x7f;

/// What an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// A columnar-encoded execution trace.
    Trace,
    /// Trained model weights (opaque `act-core` weight-store bytes).
    Model,
    /// A serialized Correct Set (opaque `act-serve` text format).
    CorrectSet,
}

impl EntryKind {
    fn as_u8(self) -> u8 {
        match self {
            EntryKind::Trace => 0,
            EntryKind::Model => 1,
            EntryKind::CorrectSet => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, StoreError> {
        match v {
            0 => Ok(EntryKind::Trace),
            1 => Ok(EntryKind::Model),
            2 => Ok(EntryKind::CorrectSet),
            other => Err(StoreError::corrupt(0, format!("unknown entry kind {other}"))),
        }
    }

    /// Stable lowercase name (for `act store ls` output).
    pub fn name(self) -> &'static str {
        match self {
            EntryKind::Trace => "trace",
            EntryKind::Model => "model",
            EntryKind::CorrectSet => "cset",
        }
    }
}

/// Identity of an entry, written in its `ENTRY_BEGIN` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryMeta {
    /// What the entry holds.
    pub kind: EntryKind,
    /// Lookup key — for models this is `ModelKey::canonical()` form, for
    /// traces any caller-chosen name.
    pub key: String,
    /// Workload the entry belongs to (listing filter).
    pub workload: String,
    /// Program length for PC normalization (traces; 0 for blobs).
    pub code_len: u64,
}

/// Index row: identity plus location and size accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryInfo {
    /// The entry identity.
    pub meta: EntryMeta,
    /// Byte offset of the entry's `ENTRY_BEGIN` block in its segment.
    pub offset: u64,
    /// Total `DATA` body bytes (the compressed payload size).
    pub encoded_bytes: u64,
    /// Uncompressed payload size (text-codec bytes for traces, blob length
    /// for models) — the numerator of the compression ratio.
    pub raw_bytes: u64,
    /// Trace records in the entry (0 for blobs).
    pub records: u64,
}

fn put_lenstr(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_lenstr(buf: &[u8], pos: &mut usize) -> Result<String, StoreError> {
    let len = get_varint(buf, pos)? as usize;
    if len > MAX_KEY_BYTES {
        return Err(StoreError::corrupt(*pos as u64, format!("string length {len} exceeds cap")));
    }
    let Some(bytes) = buf.get(*pos..*pos + len) else {
        return Err(StoreError::corrupt(*pos as u64, "string overruns block"));
    };
    *pos += len;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| StoreError::corrupt(*pos as u64, "string is not UTF-8"))
}

fn encode_meta(meta: &EntryMeta) -> Vec<u8> {
    let mut body = Vec::with_capacity(meta.key.len() + meta.workload.len() + 16);
    body.push(meta.kind.as_u8());
    put_lenstr(&mut body, &meta.key);
    put_lenstr(&mut body, &meta.workload);
    put_varint(&mut body, meta.code_len);
    body
}

fn decode_meta(body: &[u8]) -> Result<EntryMeta, StoreError> {
    let mut pos = 0;
    let Some(&kind) = body.first() else {
        return Err(StoreError::corrupt(0, "empty entry header"));
    };
    pos += 1;
    let kind = EntryKind::from_u8(kind)?;
    let key = get_lenstr(body, &mut pos)?;
    let workload = get_lenstr(body, &mut pos)?;
    let code_len = get_varint(body, &mut pos)?;
    if pos != body.len() {
        return Err(StoreError::corrupt(pos as u64, "trailing bytes in entry header"));
    }
    Ok(EntryMeta { kind, key, workload, code_len })
}

fn encode_entry_end(records: u64, encoded: u64, raw: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(24);
    put_varint(&mut body, records);
    put_varint(&mut body, encoded);
    put_varint(&mut body, raw);
    body
}

fn decode_entry_end(body: &[u8]) -> Result<(u64, u64, u64), StoreError> {
    let mut pos = 0;
    let records = get_varint(body, &mut pos)?;
    let encoded = get_varint(body, &mut pos)?;
    let raw = get_varint(body, &mut pos)?;
    if pos != body.len() {
        return Err(StoreError::corrupt(pos as u64, "trailing bytes in entry end"));
    }
    Ok((records, encoded, raw))
}

fn encode_index(entries: &[EntryInfo]) -> Vec<u8> {
    let mut body = Vec::new();
    put_varint(&mut body, entries.len() as u64);
    for e in entries {
        body.push(e.meta.kind.as_u8());
        put_lenstr(&mut body, &e.meta.key);
        put_lenstr(&mut body, &e.meta.workload);
        put_varint(&mut body, e.meta.code_len);
        put_varint(&mut body, e.offset);
        put_varint(&mut body, e.encoded_bytes);
        put_varint(&mut body, e.raw_bytes);
        put_varint(&mut body, e.records);
    }
    body
}

fn decode_index(body: &[u8]) -> Result<Vec<EntryInfo>, StoreError> {
    let mut pos = 0;
    let count = get_varint(body, &mut pos)? as usize;
    // Each row is ≥ 8 bytes; reject absurd counts before reserving.
    if count > body.len() / 8 + 1 {
        return Err(StoreError::corrupt(0, format!("index claims {count} entries")));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let Some(&kind) = body.get(pos) else {
            return Err(StoreError::corrupt(pos as u64, "index row truncated"));
        };
        pos += 1;
        let kind = EntryKind::from_u8(kind)?;
        let key = get_lenstr(body, &mut pos)?;
        let workload = get_lenstr(body, &mut pos)?;
        let code_len = get_varint(body, &mut pos)?;
        let offset = get_varint(body, &mut pos)?;
        let encoded_bytes = get_varint(body, &mut pos)?;
        let raw_bytes = get_varint(body, &mut pos)?;
        let records = get_varint(body, &mut pos)?;
        entries.push(EntryInfo {
            meta: EntryMeta { kind, key, workload, code_len },
            offset,
            encoded_bytes,
            raw_bytes,
            records,
        });
    }
    if pos != body.len() {
        return Err(StoreError::corrupt(pos as u64, "trailing bytes in index"));
    }
    Ok(entries)
}

/// Read one block from `r`, advancing `*pos` (a byte offset used in error
/// reports). `Ok(None)` means clean EOF exactly at a block boundary; any
/// partial header/body, oversize length, or CRC mismatch is `Corrupt`.
fn read_block(r: &mut impl Read, pos: &mut u64) -> Result<Option<(u8, Vec<u8>)>, StoreError> {
    let mut body = Vec::new();
    Ok(read_block_into(r, pos, &mut body)?.map(|kind| (kind, body)))
}

/// [`read_block`] into a caller-owned buffer, so a streaming decode loop
/// reuses one allocation across every block instead of paying a fresh
/// `Vec` per chunk.
fn read_block_into(
    r: &mut impl Read,
    pos: &mut u64,
    body: &mut Vec<u8>,
) -> Result<Option<u8>, StoreError> {
    let mut header = [0u8; BLOCK_HEADER_BYTES];
    let mut got = 0;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    if got == 0 {
        return Ok(None);
    }
    if got < header.len() {
        return Err(StoreError::corrupt(*pos, "partial block header"));
    }
    let kind = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[5..9].try_into().unwrap());
    if len > MAX_BLOCK_BYTES {
        return Err(StoreError::corrupt(*pos, format!("block length {len} exceeds cap")));
    }
    body.clear();
    body.resize(len, 0);
    let mut filled = 0;
    while filled < len {
        let n = r.read(&mut body[filled..])?;
        if n == 0 {
            return Err(StoreError::corrupt(*pos, "block body truncated"));
        }
        filled += n;
    }
    if crc32(body) != crc {
        return Err(StoreError::corrupt(*pos, "block CRC mismatch"));
    }
    *pos += (BLOCK_HEADER_BYTES + len) as u64;
    Ok(Some(kind))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct Pending {
    meta: EntryMeta,
    offset: u64,
    encoded: u64,
    records: u64,
}

/// Streaming writer for one segment file.
pub struct SegmentWriter {
    path: PathBuf,
    file: BufWriter<File>,
    offset: u64,
    entries: Vec<EntryInfo>,
    pending: Option<Pending>,
    scratch: Vec<u8>,
}

impl SegmentWriter {
    /// Create a fresh segment at `path` (truncating any existing file) and
    /// write the magic.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let path = path.into();
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(SEG_MAGIC)?;
        file.flush()?;
        Ok(SegmentWriter {
            path,
            file,
            offset: SEG_MAGIC.len() as u64,
            entries: Vec::new(),
            pending: None,
            scratch: Vec::new(),
        })
    }

    /// Resume appending to an unsealed segment whose committed prefix is
    /// `committed_len` bytes and whose committed entries are `entries`
    /// (both from a recovery scan). The caller must already have truncated
    /// the file to `committed_len`.
    pub fn resume(
        path: impl Into<PathBuf>,
        committed_len: u64,
        entries: Vec<EntryInfo>,
    ) -> Result<Self, StoreError> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.seek(SeekFrom::Start(committed_len))?;
        Ok(SegmentWriter {
            path,
            file: BufWriter::new(file),
            offset: committed_len,
            entries,
            pending: None,
            scratch: Vec::new(),
        })
    }

    /// Path of the file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current append offset (== committed file length between entries).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Entries committed to this segment so far.
    pub fn entries(&self) -> &[EntryInfo] {
        &self.entries
    }

    fn write_block(&mut self, kind: u8, body: &[u8]) -> Result<(), StoreError> {
        if body.len() > MAX_BLOCK_BYTES {
            return Err(StoreError::InvalidInput(format!("block body {} too large", body.len())));
        }
        let mut header = [0u8; BLOCK_HEADER_BYTES];
        header[0] = kind;
        header[1..5].copy_from_slice(&(body.len() as u32).to_le_bytes());
        header[5..9].copy_from_slice(&crc32(body).to_le_bytes());
        self.file.write_all(&header)?;
        self.file.write_all(body)?;
        self.offset += (BLOCK_HEADER_BYTES + body.len()) as u64;
        Ok(())
    }

    /// Open a new entry. Errors if another entry is still open or the key /
    /// workload strings exceed [`MAX_KEY_BYTES`].
    pub fn begin_entry(&mut self, meta: EntryMeta) -> Result<(), StoreError> {
        if self.pending.is_some() {
            return Err(StoreError::InvalidInput("entry already open".into()));
        }
        if meta.key.is_empty() || meta.key.len() > MAX_KEY_BYTES {
            return Err(StoreError::InvalidInput(format!("bad key length {}", meta.key.len())));
        }
        if meta.workload.len() > MAX_KEY_BYTES {
            return Err(StoreError::InvalidInput("workload name too long".into()));
        }
        let offset = self.offset;
        let body = encode_meta(&meta);
        self.write_block(BLOCK_ENTRY_BEGIN, &body)?;
        self.pending = Some(Pending { meta, offset, encoded: 0, records: 0 });
        Ok(())
    }

    /// Append one columnar chunk of trace records to the open entry.
    pub fn write_chunk(&mut self, records: &[TraceRecord]) -> Result<(), StoreError> {
        let Some(p) = &self.pending else {
            return Err(StoreError::InvalidInput("no open entry".into()));
        };
        if p.meta.kind != EntryKind::Trace {
            return Err(StoreError::InvalidInput("chunk written to a blob entry".into()));
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        encode_chunk(records, &mut scratch);
        let res = self.write_block(BLOCK_DATA, &scratch);
        let body_len = scratch.len() as u64;
        self.scratch = scratch;
        res?;
        let p = self.pending.as_mut().unwrap();
        p.encoded += body_len;
        p.records += records.len() as u64;
        Ok(())
    }

    /// Append opaque blob bytes to the open (non-trace) entry.
    pub fn write_blob(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let Some(p) = &self.pending else {
            return Err(StoreError::InvalidInput("no open entry".into()));
        };
        if p.meta.kind == EntryKind::Trace {
            return Err(StoreError::InvalidInput("blob written to a trace entry".into()));
        }
        self.write_block(BLOCK_DATA, bytes)?;
        self.pending.as_mut().unwrap().encoded += bytes.len() as u64;
        Ok(())
    }

    /// Commit the open entry. `raw_bytes` is the uncompressed payload size
    /// (the compression-ratio numerator). Flushes so a reader opening the
    /// file immediately afterwards sees the committed entry.
    pub fn end_entry(&mut self, raw_bytes: u64) -> Result<EntryInfo, StoreError> {
        let Some(p) = self.pending.take() else {
            return Err(StoreError::InvalidInput("no open entry".into()));
        };
        let body = encode_entry_end(p.records, p.encoded, raw_bytes);
        self.write_block(BLOCK_ENTRY_END, &body)?;
        self.file.flush()?;
        let info = EntryInfo {
            meta: p.meta,
            offset: p.offset,
            encoded_bytes: p.encoded,
            raw_bytes,
            records: p.records,
        };
        self.entries.push(info.clone());
        Ok(info)
    }

    /// Abandon the open entry, truncating the file back to where it began —
    /// the in-process equivalent of crash recovery dropping an uncommitted
    /// tail. No-op when no entry is open.
    pub fn abort_entry(&mut self) -> Result<(), StoreError> {
        let Some(p) = self.pending.take() else {
            return Ok(());
        };
        self.file.flush()?;
        let f = self.file.get_mut();
        f.set_len(p.offset)?;
        f.seek(SeekFrom::Start(p.offset))?;
        self.offset = p.offset;
        Ok(())
    }

    /// Write the footer (INDEX block + trailer), flush, and sync. After
    /// sealing the file is immutable.
    pub fn seal(mut self) -> Result<PathBuf, StoreError> {
        if self.pending.is_some() {
            return Err(StoreError::InvalidInput("cannot seal with an open entry".into()));
        }
        let index_offset = self.offset;
        let body = encode_index(&self.entries);
        self.write_block(BLOCK_INDEX, &body)?;
        self.file.write_all(&index_offset.to_le_bytes())?;
        self.file.write_all(SEG_TRAILER_MAGIC)?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(self.path)
    }
}

/// A [`TraceSink`] that streams records into an open segment entry in
/// [`CHUNK_RECORDS`]-sized columnar chunks — `act-store`'s implementation of
/// the one shared trace codec interface (the text codec in `act_trace::io`
/// is the other).
pub struct TraceEntrySink<'a> {
    writer: &'a mut SegmentWriter,
    kind: EntryKind,
    key: String,
    workload: String,
    buf: Vec<TraceRecord>,
}

impl<'a> TraceEntrySink<'a> {
    /// Prepare a sink; the entry opens when the source calls `begin` (which
    /// supplies `code_len`).
    pub fn new(writer: &'a mut SegmentWriter, key: &str, workload: &str) -> Self {
        TraceEntrySink {
            writer,
            kind: EntryKind::Trace,
            key: key.to_string(),
            workload: workload.to_string(),
            buf: Vec::new(),
        }
    }
}

impl TraceSink for TraceEntrySink<'_> {
    type Error = StoreError;

    fn begin(&mut self, code_len: usize) -> Result<(), StoreError> {
        self.writer.begin_entry(EntryMeta {
            kind: self.kind,
            key: self.key.clone(),
            workload: self.workload.clone(),
            code_len: code_len as u64,
        })
    }

    fn record(&mut self, rec: &TraceRecord) -> Result<(), StoreError> {
        self.buf.push(*rec);
        if self.buf.len() == CHUNK_RECORDS {
            self.writer.write_chunk(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), StoreError> {
        if !self.buf.is_empty() {
            self.writer.write_chunk(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Result of scanning a (possibly damaged) segment sequentially.
#[derive(Debug)]
pub struct SegmentScan {
    /// Entries whose `ENTRY_END` was reached intact, in file order.
    pub entries: Vec<EntryInfo>,
    /// Byte length of the committed prefix (safe truncation point).
    pub committed_len: u64,
    /// Actual file length.
    pub file_len: u64,
    /// Whether the scan stopped at a damaged block (vs clean EOF).
    pub corrupt: bool,
    /// Whether a valid footer (INDEX + trailer) was seen.
    pub sealed: bool,
}

impl SegmentScan {
    /// Bytes past the committed prefix (the dropped tail).
    pub fn dropped_bytes(&self) -> u64 {
        self.file_len - self.committed_len
    }
}

/// Read a sealed segment's entry table via its footer. `Ok(None)` when the
/// file has no (or a partial) trailer — i.e. it is unsealed and must be
/// scanned. A present-but-invalid footer is `Corrupt`.
pub fn read_sealed_index(path: &Path) -> Result<Option<Vec<EntryInfo>>, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let min = (SEG_MAGIC.len() + TRAILER_BYTES) as u64;
    if file_len < min {
        return Ok(None);
    }
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != SEG_MAGIC {
        return Err(StoreError::corrupt(0, "bad segment magic"));
    }
    file.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
    let mut trailer = [0u8; TRAILER_BYTES];
    file.read_exact(&mut trailer)?;
    if &trailer[8..] != SEG_TRAILER_MAGIC {
        return Ok(None);
    }
    let index_offset = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    if index_offset < SEG_MAGIC.len() as u64 || index_offset >= file_len - TRAILER_BYTES as u64 {
        return Err(StoreError::corrupt(index_offset, "index offset out of range"));
    }
    file.seek(SeekFrom::Start(index_offset))?;
    let mut pos = index_offset;
    let mut r = BufReader::new(file);
    let Some((kind, body)) = read_block(&mut r, &mut pos)? else {
        return Err(StoreError::corrupt(index_offset, "missing index block"));
    };
    if kind != BLOCK_INDEX {
        return Err(StoreError::corrupt(index_offset, "trailer does not point at an index block"));
    }
    Ok(Some(decode_index(&body)?))
}

/// Scan a segment block-by-block, recovering the committed prefix. Never
/// fails on damage past the magic — damage truncates the result instead
/// (`corrupt` reports it). Only IO errors and a bad file magic are `Err`.
pub fn scan_segment(path: &Path) -> Result<SegmentScan, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut magic = [0u8; 8];
    if file_len < SEG_MAGIC.len() as u64 {
        return Err(StoreError::corrupt(0, "file shorter than segment magic"));
    }
    file.read_exact(&mut magic)?;
    if &magic != SEG_MAGIC {
        return Err(StoreError::corrupt(0, "bad segment magic"));
    }
    let mut r = BufReader::new(file);
    let mut pos = SEG_MAGIC.len() as u64;
    let mut scan = SegmentScan {
        entries: Vec::new(),
        committed_len: pos,
        file_len,
        corrupt: false,
        sealed: false,
    };
    let mut pending: Option<Pending> = None;
    loop {
        let block_start = pos;
        let (kind, body) = match read_block(&mut r, &mut pos) {
            Ok(Some(b)) => b,
            Ok(None) => break,
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(_) => {
                scan.corrupt = true;
                break;
            }
        };
        let ok = match kind {
            BLOCK_ENTRY_BEGIN => match (&pending, decode_meta(&body)) {
                (None, Ok(meta)) => {
                    pending = Some(Pending { meta, offset: block_start, encoded: 0, records: 0 });
                    true
                }
                _ => false,
            },
            BLOCK_DATA => {
                if let Some(p) = pending.as_mut() {
                    p.encoded += body.len() as u64;
                    if p.meta.kind == EntryKind::Trace {
                        // Count records from the chunk header without
                        // decoding the columns.
                        let mut cpos = 0;
                        match get_varint(&body, &mut cpos) {
                            Ok(n) if (n as usize) <= CHUNK_RECORDS => {
                                p.records += n;
                                true
                            }
                            _ => false,
                        }
                    } else {
                        true
                    }
                } else {
                    false
                }
            }
            BLOCK_ENTRY_END => match (pending.take(), decode_entry_end(&body)) {
                (Some(p), Ok((records, encoded, raw))) => {
                    if records == p.records && encoded == p.encoded {
                        scan.entries.push(EntryInfo {
                            meta: p.meta,
                            offset: p.offset,
                            encoded_bytes: p.encoded,
                            raw_bytes: raw,
                            records: p.records,
                        });
                        scan.committed_len = pos;
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            },
            BLOCK_INDEX => {
                // A footer: valid only with the trailer right behind it.
                if pending.is_none()
                    && pos + TRAILER_BYTES as u64 == file_len
                    && decode_index(&body).is_ok()
                {
                    scan.sealed = true;
                    scan.committed_len = file_len;
                }
                break;
            }
            _ => false,
        };
        if !ok {
            scan.corrupt = true;
            break;
        }
    }
    Ok(scan)
}

/// Verified block-level view of one entry (used by the streaming decoders).
pub struct EntryStream {
    reader: BufReader<File>,
    pos: u64,
    meta: EntryMeta,
    done: bool,
}

/// Open the entry whose `ENTRY_BEGIN` block is at `offset` in `path`.
pub fn open_entry(path: &Path, offset: u64) -> Result<EntryStream, StoreError> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut reader = BufReader::new(file);
    let mut pos = offset;
    let Some((kind, body)) = read_block(&mut reader, &mut pos)? else {
        return Err(StoreError::corrupt(offset, "entry offset past end of segment"));
    };
    if kind != BLOCK_ENTRY_BEGIN {
        return Err(StoreError::corrupt(offset, "offset does not point at an entry"));
    }
    let meta = decode_meta(&body)?;
    Ok(EntryStream { reader, pos, meta, done: false })
}

impl EntryStream {
    /// The entry's identity header.
    pub fn meta(&self) -> &EntryMeta {
        &self.meta
    }

    /// Next verified `DATA` body, or `None` once the entry's `ENTRY_END`
    /// has been consumed.
    pub fn next_data(&mut self) -> Result<Option<Vec<u8>>, StoreError> {
        let mut body = Vec::new();
        Ok(if self.next_data_into(&mut body)? { Some(body) } else { None })
    }

    /// [`EntryStream::next_data`] into a caller-owned buffer (`true` =
    /// `body` holds the next `DATA` payload). A streaming decoder calls
    /// this with the same buffer every time, so steady-state decode does
    /// not allocate per chunk.
    pub fn next_data_into(&mut self, body: &mut Vec<u8>) -> Result<bool, StoreError> {
        if self.done {
            return Ok(false);
        }
        let Some(kind) = read_block_into(&mut self.reader, &mut self.pos, body)? else {
            return Err(StoreError::corrupt(self.pos, "entry truncated before its end block"));
        };
        match kind {
            BLOCK_DATA => Ok(true),
            BLOCK_ENTRY_END => {
                decode_entry_end(body)?;
                self.done = true;
                Ok(false)
            }
            other => Err(StoreError::corrupt(self.pos, format!("unexpected block kind {other}"))),
        }
    }
}

/// Streaming [`TraceSource`] over a stored trace entry: decodes one chunk at
/// a time, so memory is bounded by [`CHUNK_RECORDS`] regardless of trace
/// length — the "stream-decode without materializing" contract.
pub struct TraceEntrySource {
    stream: EntryStream,
    buf: Vec<TraceRecord>,
    body: Vec<u8>,
    next: usize,
    /// Compressed bytes consumed so far (for throughput metrics).
    pub encoded_bytes_read: u64,
}

impl TraceEntrySource {
    /// Wrap an [`EntryStream`]; errors unless the entry is a trace.
    pub fn new(stream: EntryStream) -> Result<Self, StoreError> {
        if stream.meta().kind != EntryKind::Trace {
            return Err(StoreError::InvalidInput(format!(
                "entry `{}` is a {}, not a trace",
                stream.meta().key,
                stream.meta().kind.name()
            )));
        }
        Ok(TraceEntrySource {
            stream,
            buf: Vec::new(),
            body: Vec::new(),
            next: 0,
            encoded_bytes_read: 0,
        })
    }

    /// The entry's identity header.
    pub fn meta(&self) -> &EntryMeta {
        self.stream.meta()
    }

    fn refill(&mut self) -> Result<bool, StoreError> {
        // Both buffers are reused across refills: block payload and
        // decoded records — steady-state streaming decode is allocation
        // free once the buffers reach chunk size.
        if !self.stream.next_data_into(&mut self.body)? {
            return Ok(false);
        }
        self.encoded_bytes_read += self.body.len() as u64;
        self.buf.clear();
        self.next = 0;
        decode_chunk(&self.body, &mut self.buf)?;
        Ok(true)
    }

    /// `next_record` with the store's own error type (the [`TraceSource`]
    /// impl maps it onto `ParseTraceError`).
    pub fn try_next(&mut self) -> Result<Option<TraceRecord>, StoreError> {
        while self.next == self.buf.len() {
            if !self.refill()? {
                return Ok(None);
            }
        }
        let rec = self.buf[self.next];
        self.next += 1;
        Ok(Some(rec))
    }
}

impl TraceSource for TraceEntrySource {
    fn code_len(&self) -> usize {
        self.stream.meta().code_len as usize
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, act_trace::io::ParseTraceError> {
        self.try_next().map_err(to_parse_error)
    }
}

/// Materialize a blob entry (models, correct sets). Total size is capped by
/// `limit` — allocation never exceeds the declared, verified block sizes.
pub fn read_blob(stream: &mut EntryStream, limit: usize) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    while let Some(body) = stream.next_data()? {
        if out.len() + body.len() > limit {
            return Err(StoreError::corrupt(0, format!("blob exceeds {limit} byte cap")));
        }
        out.extend_from_slice(&body);
    }
    Ok(out)
}
