//! Store metrics, registered on an `act-obs` [`Registry`] so a corpus
//! embedded in the daemon surfaces through the same STATUS snapshot as the
//! serving counters.

use act_obs::metrics::{Counter, Gauge, Registry};

/// Handles to the store's instruments. Cheap to clone (each instrument is a
/// shared atomic cell).
#[derive(Clone)]
pub struct StoreMetrics {
    /// Uncompressed payload bytes accepted by `put` operations.
    pub bytes_in: Counter,
    /// Compressed bytes handed out by `get`/stream reads.
    pub bytes_out: Counter,
    /// Blocks rejected for CRC/structure damage (recovery drops + read
    /// failures).
    pub corrupt_blocks: Counter,
    /// Corpus-cumulative compression ratio ×1000 (raw/encoded; 3000 = 3×).
    pub compression_ratio_milli: Gauge,
    /// Most recent measured decode throughput, whole MB/s of compressed
    /// input.
    pub decode_mb_per_sec: Gauge,
}

impl StoreMetrics {
    /// Register (or re-attach to) the store instruments on `registry`.
    pub fn register(registry: &Registry) -> Self {
        StoreMetrics {
            bytes_in: registry.counter("store_bytes_in"),
            bytes_out: registry.counter("store_bytes_out"),
            corrupt_blocks: registry.counter("store_corrupt_blocks"),
            compression_ratio_milli: registry.gauge("store_compression_ratio_milli"),
            decode_mb_per_sec: registry.gauge("store_decode_mb_per_sec"),
        }
    }

    /// Register on the process-wide registry.
    pub fn global() -> Self {
        Self::register(act_obs::metrics::global())
    }

    /// Update the cumulative compression-ratio gauge.
    pub fn set_ratio(&self, raw_bytes: u64, encoded_bytes: u64) {
        if encoded_bytes > 0 {
            self.compression_ratio_milli.set((raw_bytes * 1000 / encoded_bytes) as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_gauge_is_milli_scaled() {
        let r = Registry::new();
        let m = StoreMetrics::register(&r);
        m.set_ratio(3000, 1000);
        let snap = r.snapshot();
        let (_, v) =
            snap.entries.iter().find(|(n, _)| n == "store_compression_ratio_milli").unwrap();
        assert_eq!(*v, act_obs::snapshot::MetricValue::Gauge(3000));
    }

    #[test]
    fn zero_encoded_does_not_divide() {
        let r = Registry::new();
        let m = StoreMetrics::register(&r);
        m.set_ratio(100, 0);
    }
}
