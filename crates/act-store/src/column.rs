//! Columnar chunk codec: a bounded run of [`TraceRecord`]s encoded as
//! independent per-field columns, each delta+varint compressed.
//!
//! Why columnar: within one field the values are strongly correlated (PCs
//! walk the program, addresses stride through arrays, sequence numbers
//! count up), while *across* fields there is no correlation at all — so each
//! column deltas against its own previous value and a record costs a few
//! bytes instead of a ~40-byte text line. Each column is length-prefixed so
//! a decoder sets up parallel cursors from a single pass over the header.
//!
//! Chunk layout (one chunk per segment `DATA` block, self-contained — delta
//! state does not cross chunks, so any chunk decodes in isolation):
//!
//! ```text
//! count:varint
//! 8 columns, each  len:varint  payload:len bytes
//!   tags       1 byte/record (kind + flags, see TAG_*)
//!   seq        zigzag(delta) varints, all records
//!   cycle      zigzag(delta) varints, all records
//!   tid        raw varints, all records
//!   pc         zigzag(delta) varints, all records
//!   addr       zigzag(delta) varints, loads + stores only
//!   dep_store  zigzag(delta) varints, loads with a dependence only
//!   dep_load   zigzag(delta) varints, loads with a dependence only
//! ```

use crate::error::StoreError;
use crate::varint::{get_varint, put_varint, unzigzag, zigzag};
use act_sim::events::RawDep;
use act_trace::{TraceKind, TraceRecord};

/// Records per chunk: bounds decode memory regardless of trace length.
pub const CHUNK_RECORDS: usize = 4096;

const TAG_THREAD_START: u8 = 0;
const TAG_THREAD_END: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_BRANCH_NOT_TAKEN: u8 = 3;
const TAG_BRANCH_TAKEN: u8 = 4;
const TAG_LOAD: u8 = 5;
const TAG_LOAD_DEP_INTRA: u8 = 6;
const TAG_LOAD_DEP_INTER: u8 = 7;
const TAG_MAX: u8 = TAG_LOAD_DEP_INTER;

fn tag_of(kind: &TraceKind) -> u8 {
    match kind {
        TraceKind::ThreadStart => TAG_THREAD_START,
        TraceKind::ThreadEnd => TAG_THREAD_END,
        TraceKind::Store { .. } => TAG_STORE,
        TraceKind::Branch { taken: false } => TAG_BRANCH_NOT_TAKEN,
        TraceKind::Branch { taken: true } => TAG_BRANCH_TAKEN,
        TraceKind::Load { dep: None, .. } => TAG_LOAD,
        TraceKind::Load { dep: Some(d), .. } => {
            if d.inter_thread {
                TAG_LOAD_DEP_INTER
            } else {
                TAG_LOAD_DEP_INTRA
            }
        }
    }
}

fn has_addr(tag: u8) -> bool {
    matches!(tag, TAG_STORE | TAG_LOAD | TAG_LOAD_DEP_INTRA | TAG_LOAD_DEP_INTER)
}

fn has_dep(tag: u8) -> bool {
    matches!(tag, TAG_LOAD_DEP_INTRA | TAG_LOAD_DEP_INTER)
}

/// A delta+varint column being built.
#[derive(Default)]
struct DeltaCol {
    buf: Vec<u8>,
    prev: u64,
}

impl DeltaCol {
    fn push(&mut self, v: u64) {
        put_varint(&mut self.buf, zigzag(v.wrapping_sub(self.prev) as i64));
        self.prev = v;
    }
}

/// Encode `records` (at most [`CHUNK_RECORDS`]) as one chunk, appending to
/// `out`. Returns the encoded byte length.
pub fn encode_chunk(records: &[TraceRecord], out: &mut Vec<u8>) -> usize {
    debug_assert!(records.len() <= CHUNK_RECORDS);
    let start = out.len();
    let mut tags = Vec::with_capacity(records.len());
    let mut seq = DeltaCol::default();
    let mut cycle = DeltaCol::default();
    let mut tid = Vec::new();
    let mut pc = DeltaCol::default();
    let mut addr = DeltaCol::default();
    let mut dep_store = DeltaCol::default();
    let mut dep_load = DeltaCol::default();
    for r in records {
        let tag = tag_of(&r.kind);
        tags.push(tag);
        seq.push(r.seq);
        cycle.push(r.cycle);
        put_varint(&mut tid, r.tid as u64);
        pc.push(r.pc as u64);
        match r.kind {
            TraceKind::Load { addr: a, dep } => {
                addr.push(a);
                if let Some(d) = dep {
                    dep_store.push(d.store_pc as u64);
                    dep_load.push(d.load_pc as u64);
                }
            }
            TraceKind::Store { addr: a } => addr.push(a),
            _ => {}
        }
    }
    put_varint(out, records.len() as u64);
    for col in
        [&tags, &seq.buf, &cycle.buf, &tid, &pc.buf, &addr.buf, &dep_store.buf, &dep_load.buf]
    {
        put_varint(out, col.len() as u64);
        out.extend_from_slice(col);
    }
    out.len() - start
}

/// A delta+varint column being read.
struct DeltaCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    prev: u64,
}

impl<'a> DeltaCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        DeltaCursor { buf, pos: 0, prev: 0 }
    }

    #[inline]
    fn next(&mut self) -> Result<u64, StoreError> {
        let d = get_varint(self.buf, &mut self.pos)?;
        self.prev = self.prev.wrapping_add(unzigzag(d) as u64);
        Ok(self.prev)
    }

    fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn take_col<'a>(body: &'a [u8], pos: &mut usize) -> Result<&'a [u8], StoreError> {
    let len = get_varint(body, pos)? as usize;
    let Some(col) = body.get(*pos..*pos + len) else {
        return Err(StoreError::corrupt(*pos as u64, "column overruns chunk"));
    };
    *pos += len;
    Ok(col)
}

fn narrow_u32(v: u64, what: &str) -> Result<u32, StoreError> {
    u32::try_from(v).map_err(|_| StoreError::corrupt(0, format!("{what} exceeds u32")))
}

/// Decode one chunk, appending its records to `out`.
///
/// The whole `body` must be consumed; trailing bytes, short columns, and
/// unknown tags are all [`StoreError::Corrupt`]. Memory is bounded: `count`
/// is validated against [`CHUNK_RECORDS`] before anything is allocated.
pub fn decode_chunk(body: &[u8], out: &mut Vec<TraceRecord>) -> Result<(), StoreError> {
    let mut pos = 0;
    let count = get_varint(body, &mut pos)? as usize;
    if count > CHUNK_RECORDS {
        return Err(StoreError::corrupt(0, format!("chunk claims {count} records")));
    }
    let tags = take_col(body, &mut pos)?;
    let seq_col = take_col(body, &mut pos)?;
    let cycle_col = take_col(body, &mut pos)?;
    let tid_col = take_col(body, &mut pos)?;
    let pc_col = take_col(body, &mut pos)?;
    let addr_col = take_col(body, &mut pos)?;
    let dep_store_col = take_col(body, &mut pos)?;
    let dep_load_col = take_col(body, &mut pos)?;
    if pos != body.len() {
        return Err(StoreError::corrupt(pos as u64, "trailing bytes in chunk"));
    }
    if tags.len() != count {
        return Err(StoreError::corrupt(0, "tag column length mismatch"));
    }
    let mut seq = DeltaCursor::new(seq_col);
    let mut cycle = DeltaCursor::new(cycle_col);
    let mut tid_pos = 0usize;
    let mut pc = DeltaCursor::new(pc_col);
    let mut addr = DeltaCursor::new(addr_col);
    let mut dep_store = DeltaCursor::new(dep_store_col);
    let mut dep_load = DeltaCursor::new(dep_load_col);
    out.reserve(count);
    for &tag in tags {
        if tag > TAG_MAX {
            return Err(StoreError::corrupt(0, format!("unknown record tag {tag}")));
        }
        let seq_v = seq.next()?;
        let cycle_v = cycle.next()?;
        let tid_v = narrow_u32(get_varint(tid_col, &mut tid_pos)?, "tid")?;
        let pc_v = narrow_u32(pc.next()?, "pc")?;
        let kind = match tag {
            TAG_THREAD_START => TraceKind::ThreadStart,
            TAG_THREAD_END => TraceKind::ThreadEnd,
            TAG_BRANCH_NOT_TAKEN => TraceKind::Branch { taken: false },
            TAG_BRANCH_TAKEN => TraceKind::Branch { taken: true },
            TAG_STORE => TraceKind::Store { addr: addr.next()? },
            _ => {
                let a = addr.next()?;
                let dep = if has_dep(tag) {
                    Some(RawDep {
                        store_pc: narrow_u32(dep_store.next()?, "dep store pc")?,
                        load_pc: narrow_u32(dep_load.next()?, "dep load pc")?,
                        inter_thread: tag == TAG_LOAD_DEP_INTER,
                    })
                } else {
                    None
                };
                TraceKind::Load { addr: a, dep }
            }
        };
        debug_assert!(
            has_addr(tag) || !matches!(kind, TraceKind::Load { .. } | TraceKind::Store { .. })
        );
        out.push(TraceRecord { seq: seq_v, cycle: cycle_v, tid: tid_v, pc: pc_v, kind });
    }
    for (cur, name) in [
        (seq.exhausted(), "seq"),
        (cycle.exhausted(), "cycle"),
        (tid_pos == tid_col.len(), "tid"),
        (pc.exhausted(), "pc"),
        (addr.exhausted(), "addr"),
        (dep_store.exhausted(), "dep store pc"),
        (dep_load.exhausted(), "dep load pc"),
    ] {
        if !cur {
            return Err(StoreError::corrupt(0, format!("{name} column has trailing bytes")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_records() -> Vec<TraceRecord> {
        let dep = RawDep { store_pc: 3, load_pc: 9, inter_thread: true };
        vec![
            TraceRecord { seq: 0, cycle: 5, tid: 0, pc: 0, kind: TraceKind::ThreadStart },
            TraceRecord { seq: 1, cycle: 6, tid: 0, pc: 3, kind: TraceKind::Store { addr: 64 } },
            TraceRecord {
                seq: 2,
                cycle: 8,
                tid: 1,
                pc: 9,
                kind: TraceKind::Load { addr: 64, dep: Some(dep) },
            },
            TraceRecord {
                seq: 3,
                cycle: 9,
                tid: 1,
                pc: 10,
                kind: TraceKind::Load { addr: 72, dep: None },
            },
            TraceRecord {
                seq: 4,
                cycle: 11,
                tid: 1,
                pc: 11,
                kind: TraceKind::Branch { taken: true },
            },
            TraceRecord {
                seq: 5,
                cycle: 12,
                tid: 1,
                pc: 12,
                kind: TraceKind::Branch { taken: false },
            },
            TraceRecord { seq: 6, cycle: 13, tid: 1, pc: 0, kind: TraceKind::ThreadEnd },
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        let records = sample_records();
        let mut buf = Vec::new();
        encode_chunk(&records, &mut buf);
        let mut back = Vec::new();
        decode_chunk(&buf, &mut back).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let mut buf = Vec::new();
        encode_chunk(&[], &mut buf);
        let mut back = Vec::new();
        decode_chunk(&buf, &mut back).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncation_at_any_byte_is_an_error_not_a_panic() {
        let records = sample_records();
        let mut buf = Vec::new();
        encode_chunk(&records, &mut buf);
        for cut in 0..buf.len() {
            let mut out = Vec::new();
            assert!(decode_chunk(&buf[..cut], &mut out).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn absurd_count_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut out = Vec::new();
        let err = decode_chunk(&buf, &mut out).unwrap_err();
        assert!(err.is_corrupt());
    }

    fn arb_record(seed: (u64, u64, u32, u32, u64, u8)) -> TraceRecord {
        let (seq, cycle, tid, pc, addr, sel) = seed;
        let kind = match sel % 8 {
            0 => TraceKind::ThreadStart,
            1 => TraceKind::ThreadEnd,
            2 => TraceKind::Store { addr },
            3 => TraceKind::Branch { taken: false },
            4 => TraceKind::Branch { taken: true },
            5 => TraceKind::Load { addr, dep: None },
            s => TraceKind::Load {
                addr,
                dep: Some(RawDep { store_pc: pc ^ 0x5555, load_pc: pc, inter_thread: s == 7 }),
            },
        };
        TraceRecord { seq, cycle, tid, pc, kind }
    }

    proptest! {
        #[test]
        fn roundtrip_random_records(
            seeds in prop::collection::vec(
                (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>())
                    .prop_map(|(a, b, c, d)| (a, b, c, d, a ^ b, c as u8)),
                0..200,
            )
        ) {
            let records: Vec<TraceRecord> = seeds.into_iter().map(arb_record).collect();
            let mut buf = Vec::new();
            encode_chunk(&records, &mut buf);
            let mut back = Vec::new();
            decode_chunk(&buf, &mut back).unwrap();
            prop_assert_eq!(back, records);
        }

        #[test]
        fn mutated_chunk_never_panics(
            flip_at in any::<u64>(),
            flip_bits in 1u8..255,
        ) {
            let records = sample_records();
            let mut buf = Vec::new();
            encode_chunk(&records, &mut buf);
            let idx = (flip_at % buf.len() as u64) as usize;
            buf[idx] ^= flip_bits;
            // Either decodes to something or errors — never panics/OOMs.
            let mut out = Vec::new();
            let _ = decode_chunk(&buf, &mut out);
        }
    }
}
