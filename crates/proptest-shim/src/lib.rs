//! # proptest (in-tree shim)
//!
//! A minimal, dependency-free stand-in for the real
//! [`proptest`](https://crates.io/crates/proptest) crate, so the workspace's
//! property-based suites compile and run **with no registry access** (this
//! repo must build fully offline — see `act-rng`). It implements exactly the
//! surface those suites use:
//!
//! - the [`proptest!`] macro (multiple `#[test]` fns per invocation, an
//!   optional leading `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - strategies: [`any`], integer and float ranges, tuples (arity 2–4),
//!   [`prop::collection::vec`], and [`Strategy::prop_map`],
//! - [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk** — the panic message reports the case number and the
//! failed assertion instead. Generation is deterministic per (test name,
//! case index), so failures reproduce exactly on re-run. If the registry is
//! available and shrinking is wanted, point the `proptest` dev-dependency
//! back at crates.io; the test sources need no change.

use act_rng::rngs::StdRng;
use act_rng::{Rng as _, SeedableRng as _};

/// Run-time knobs, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (the only knob the repo uses).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// The generator handed to strategies: a seeded [`StdRng`].
pub type TestRng = StdRng;

/// The generator for one case of one property: seeded from an FNV-1a hash
/// of the test name mixed with the case index, so each property explores
/// its own stream and failures reproduce run-to-run.
pub fn rng_for(test_name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator, mirroring the used subset of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`, as in real proptest.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Marker for types with a full-domain strategy (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies, mirroring `proptest::collection` (re-exported as
/// `prop::collection` by the prelude, which is how the suites name it).
pub mod collection {
    use super::{Strategy, TestRng};
    use act_rng::Rng as _;

    /// Length specification for [`vec`]: an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the suites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// The `prop::` namespace (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random cases of the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::rng_for(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: Result<(), $crate::TestCaseError> = (|| { $body Ok(()) })();
                    if let Err($crate::TestCaseError(msg)) = __result {
                        panic!(
                            "proptest case {}/{} failed for `{}`: {}",
                            case + 1, cfg.cases, stringify!($name), msg
                        );
                    }
                }
            }
        )+
    };
    (
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($arg in $strat),+ ) $body )+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y), "y = {} escaped", y);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u8..4, any::<bool>()), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, _) in &v {
                prop_assert!(*a < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..10) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (0u32..10).prop_map(|x| x * 2);
        let mut rng = crate::rng_for("prop_map_transforms", 0);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1000);
            }
        }
        always_fails();
    }
}
