//! Request workers: a pool of threads draining the daemon's bounded job
//! queue ([`act_fleet::BoundedQueue`]), each request executed inside
//! `catch_unwind` — the same crash-isolation discipline as `act-fleet`'s
//! campaign workers, so one poisoned request becomes an `ERROR` reply, not
//! a dead daemon.
//!
//! # Coalescing scheduler
//!
//! Workers do not dispatch one diagnose request at a time. A worker that
//! pops a batchable diagnose job becomes the *leader* of a micro-batch: it
//! drains every queued job targeting the same [`ModelKey`] (and briefly
//! waits — the gather window — for stragglers) up to the configured batch
//! size, then runs the whole batch through
//! [`act_core::diagnosis::diagnose_trace_batch`] and answers every member.
//! Replies bound for the same v4 session go out as one buffered write.
//! The win on a loaded daemon is amortization: one worker wakeup, one
//! model-cache lookup, one classify sweep, and one reply syscall per
//! *batch* instead of per request — while the batched kernel is
//! bit-identical to the sequential one, so coalescing is invisible in the
//! reply bytes. Fault-hook workloads (`__`-prefixed) are never coalesced;
//! their per-request semantics (panic/sleep injection) must hold exactly.

use crate::cache::{CacheOutcome, ModelCache, ModelKey};
use crate::proto::{ModelSpec, Reply, Request};
use crate::server::{send_reply, stored_summary, Conn, ServerStats, SessionShared};
use act_core::diagnosis::{diagnose_trace, diagnose_trace_batch};
use act_core::postprocess::Diagnosis;
use act_fleet::{panic_message, BoundedQueue};
use act_obs::{events, Level};
use act_trace::io::{trace_from_bytes, trace_to_bytes};
use act_trace::Trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How workers coalesce diagnose requests into micro-batches.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchPolicy {
    /// Most requests per micro-batch; `1` disables coalescing.
    pub size: usize,
    /// How long a leader waits for same-model companions before
    /// dispatching what it has.
    pub wait: Duration,
}

/// Where a finished request's reply goes: a one-shot connection (the
/// v1–v3 model — and plain v4 requests outside a session) or a slot on a
/// multiplexed v4 session.
pub(crate) enum Responder {
    /// Reply, then drop the connection (one request per connection).
    OneShot {
        /// The connection the reply is written to.
        conn: Conn,
        /// Protocol version the request arrived with; the reply is
        /// stamped with it so old clients can decode what they get back.
        version: u8,
        /// Echoed on v4 one-shot replies; 0 below v4.
        request_id: u32,
    },
    /// Reply onto a session's shared writer and release its window slot.
    Session {
        /// The session the request arrived on.
        shared: Arc<SessionShared>,
        /// Which in-flight request this answers.
        request_id: u32,
    },
}

impl Responder {
    /// Deliver `reply` wherever this request came from.
    pub(crate) fn respond(self, reply: &Reply, stats: &ServerStats) {
        match self {
            Responder::OneShot { mut conn, version, request_id } => {
                send_reply(&mut conn, version, request_id, reply, stats);
            }
            Responder::Session { shared, request_id } => {
                shared.send_final(request_id, reply, stats);
            }
        }
    }
}

/// What a worker executes.
pub(crate) enum Work {
    /// An ordinary parsed request.
    Request(Request),
    /// A streamed `DIAGNOSE` whose trace the session already parsed
    /// chunk-by-chunk (the decode half of the decode→classify pipeline).
    DiagnoseTrace(ModelSpec, Box<Trace>),
}

/// One accepted request, queued for a worker.
pub(crate) struct Job {
    /// Where the reply goes.
    pub responder: Responder,
    /// The work itself (only diagnosable/trainable/corpus requests are
    /// queued; `STATUS` and `SHUTDOWN` are answered inline).
    pub work: Work,
    /// When the acceptor enqueued it — the deadline clock starts here, so
    /// time spent *queued* counts against the request.
    pub accepted: Instant,
}

/// Spawn `n` worker threads draining `queue` until it is closed and empty.
pub(crate) fn spawn_workers(
    n: usize,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    stats: Arc<ServerStats>,
    deadline: Duration,
    policy: BatchPolicy,
) -> Vec<JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let queue = queue.clone();
            let cache = cache.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name(format!("act-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = queue.pop() {
                        dispatch(job, &queue, &cache, &stats, deadline, policy);
                    }
                })
                .expect("spawn worker thread")
        })
        .collect()
}

/// The model a piece of work can coalesce under, or `None` when it must
/// run alone: non-diagnose requests, and the reserved `__` fault-hook
/// workloads whose injected panic/sleep must stay scoped to exactly one
/// request.
fn batch_key(work: &Work) -> Option<ModelKey> {
    let spec = match work {
        Work::Request(Request::Diagnose(spec, _)) => spec,
        Work::DiagnoseTrace(spec, _) => spec,
        Work::Request(_) => return None,
    };
    if spec.workload.starts_with("__") {
        return None;
    }
    Some(ModelKey::from(spec))
}

/// Route one popped job: gather a micro-batch around a batchable diagnose
/// leader, or fall through to the classic one-job path.
fn dispatch(
    job: Job,
    queue: &BoundedQueue<Job>,
    cache: &ModelCache,
    stats: &ServerStats,
    deadline: Duration,
    policy: BatchPolicy,
) {
    let key = if policy.size > 1 { batch_key(&job.work) } else { None };
    let Some(key) = key else {
        process(job, cache, stats, deadline);
        return;
    };
    let mut batch = vec![job];
    // The gather window is absolute: once it passes, `drain_matching`
    // only returns companions that are *already* queued and never parks,
    // so a lone request is dispatched at most `policy.wait` after its
    // leader popped — a slow trickle of matches can fill the batch but
    // cannot stall it.
    let gather_until = Instant::now() + policy.wait;
    while batch.len() < policy.size {
        let want = policy.size - batch.len();
        let more =
            queue.drain_matching(want, gather_until, |j| batch_key(&j.work).as_ref() == Some(&key));
        if more.is_empty() {
            break;
        }
        batch.extend(more);
    }
    stats.note_batch(batch.len());
    process_batch(batch, cache, stats, deadline);
}

/// Count and emit one expired request; build its `ERROR` reply.
fn deadline_reply(waited: Duration, deadline: Duration, stats: &ServerStats) -> Reply {
    stats.bump_deadline_expired();
    events().emit(
        Level::Warn,
        "serve.deadline",
        format!(
            "request expired after {}ms queued (limit {}ms)",
            waited.as_millis(),
            deadline.as_millis()
        ),
    );
    Reply::Error(format!(
        "deadline exceeded: request waited {}ms in queue (limit {}ms)",
        waited.as_millis(),
        deadline.as_millis()
    ))
}

/// Count one finished reply the way the `STATUS` block expects.
fn count_reply(reply: &Reply, stats: &ServerStats) {
    match reply {
        Reply::Trained(_) | Reply::Diagnosis(_) | Reply::Stored(_) | Reply::TraceData(_) => {
            stats.bump_served()
        }
        Reply::Error(_) => stats.bump_errored(),
        _ => {}
    }
}

/// Execute one job: deadline check, crash-isolated request handling, reply.
fn process(job: Job, cache: &ModelCache, stats: &ServerStats, deadline: Duration) {
    let Job { responder, work, accepted } = job;
    let waited = accepted.elapsed();
    let reply = if waited > deadline {
        deadline_reply(waited, deadline, stats)
    } else {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_work(&work, cache, stats)));
        stats.record_service(started.elapsed());
        match outcome {
            Ok(reply) => reply,
            Err(payload) => {
                stats.bump_crashed();
                let message = panic_message(&*payload);
                events().emit(
                    Level::Warn,
                    "serve.worker",
                    format!("request crashed (isolated): {message}"),
                );
                Reply::Error(format!("request crashed: {message}"))
            }
        }
    };
    count_reply(&reply, stats);
    responder.respond(&reply, stats);
}

/// Execute one gathered micro-batch: per-member deadline checks and trace
/// parses (failures answered individually), one model-cache resolution
/// shared by every member, one batched classify sweep, then replies —
/// grouped per session into a single write. The whole sweep runs inside
/// `catch_unwind`; if it panics, every member is retried alone so one
/// poisoned trace cannot take down its batch-mates.
fn process_batch(batch: Vec<Job>, cache: &ModelCache, stats: &ServerStats, deadline: Duration) {
    let mut finished: Vec<(Responder, Reply)> = Vec::with_capacity(batch.len());
    let mut ready: Vec<(Responder, ModelSpec, Trace)> = Vec::with_capacity(batch.len());
    for job in batch {
        let Job { responder, work, accepted } = job;
        let waited = accepted.elapsed();
        if waited > deadline {
            finished.push((responder, deadline_reply(waited, deadline, stats)));
            continue;
        }
        match work {
            Work::Request(Request::Diagnose(spec, bytes)) => match trace_from_bytes(&bytes) {
                Ok(trace) => ready.push((responder, spec, trace)),
                Err(e) => {
                    finished.push((responder, Reply::Error(format!("bad trace payload: {e}"))))
                }
            },
            Work::DiagnoseTrace(spec, trace) => ready.push((responder, spec, *trace)),
            // `batch_key` admits only the two diagnose shapes; anything
            // else is a scheduler bug, but answer it normally anyway.
            work @ Work::Request(_) => {
                process(Job { responder, work, accepted }, cache, stats, deadline);
            }
        }
    }
    if !ready.is_empty() {
        let started = Instant::now();
        // The first member's spec resolves (or trains) the model — exactly
        // the request that would have trained it under sequential dispatch.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let spec0 = &ready[0].1;
            let (model, outcome) = cache.get_or_train(spec0).map_err(|e| e.to_string())?;
            let traces: Vec<&Trace> = ready.iter().map(|(_, _, t)| t).collect();
            let diags =
                diagnose_trace_batch(&model.store, &model.correct, &traces, model.norm_code_len);
            let replies: Vec<Reply> = ready
                .iter()
                .zip(diags.iter())
                .enumerate()
                .map(|(i, ((_, spec, _), diag))| {
                    // Members after the leader see a memory hit, same as
                    // they would arriving right behind it sequentially.
                    let tag = if i == 0 { outcome } else { CacheOutcome::Memory };
                    Reply::Diagnosis(render_diagnosis(&spec.workload, tag, diag))
                })
                .collect();
            Ok::<_, String>((outcome, replies))
        }));
        stats.record_service(started.elapsed());
        match result {
            Ok(Ok((outcome, replies))) => {
                stats.note_cache(outcome);
                for _ in 1..ready.len() {
                    stats.note_cache(CacheOutcome::Memory);
                }
                finished.extend(ready.into_iter().map(|(r, _, _)| r).zip(replies));
            }
            Ok(Err(msg)) => {
                for (responder, _, _) in ready {
                    finished.push((responder, Reply::Error(msg.clone())));
                }
            }
            Err(payload) => {
                let message = panic_message(&*payload);
                events().emit(
                    Level::Warn,
                    "serve.worker",
                    format!("batch crashed (isolated): {message}; retrying members alone"),
                );
                for (responder, spec, trace) in ready {
                    let work = Work::DiagnoseTrace(spec, Box::new(trace));
                    let one = catch_unwind(AssertUnwindSafe(|| handle_work(&work, cache, stats)));
                    let reply = match one {
                        Ok(reply) => reply,
                        Err(p) => {
                            stats.bump_crashed();
                            let m = panic_message(&*p);
                            events().emit(
                                Level::Warn,
                                "serve.worker",
                                format!("request crashed (isolated): {m}"),
                            );
                            Reply::Error(format!("request crashed: {m}"))
                        }
                    };
                    finished.push((responder, reply));
                }
            }
        }
    }
    for (_, reply) in &finished {
        count_reply(reply, stats);
    }
    respond_batch(finished, stats);
}

/// Deliver a batch's replies: one-shot connections answer directly, and
/// replies sharing a session are concatenated into a single buffered
/// write via [`SessionShared::send_final_batch`].
fn respond_batch(finished: Vec<(Responder, Reply)>, stats: &ServerStats) {
    let mut sessions: Vec<(Arc<SessionShared>, Vec<(u32, Reply)>)> = Vec::new();
    for (responder, reply) in finished {
        match responder {
            Responder::OneShot { mut conn, version, request_id } => {
                send_reply(&mut conn, version, request_id, &reply, stats);
            }
            Responder::Session { shared, request_id } => {
                match sessions.iter_mut().find(|(s, _)| Arc::ptr_eq(s, &shared)) {
                    Some((_, replies)) => replies.push((request_id, reply)),
                    None => sessions.push((shared, vec![(request_id, reply)])),
                }
            }
        }
    }
    for (shared, replies) in sessions {
        if let [(request_id, reply)] = &replies[..] {
            shared.send_final(*request_id, reply, stats);
        } else {
            shared.send_final_batch(&replies, stats);
        }
    }
}

/// Map queued work to its reply. Runs *inside* `catch_unwind`: panics out
/// of the diagnosis stack (malformed topologies, workload asserts,
/// injected faults) surface as `ERROR` frames.
fn handle_work(work: &Work, cache: &ModelCache, stats: &ServerStats) -> Reply {
    match work {
        Work::Request(request) => handle_request(request, cache, stats),
        Work::DiagnoseTrace(spec, trace) => {
            if let Some(reply) = fault_hook(spec) {
                return reply;
            }
            let (model, outcome) = match cache.get_or_train(spec) {
                Ok(pair) => pair,
                Err(e) => return Reply::Error(e.to_string()),
            };
            stats.note_cache(outcome);
            let diag = diagnose_trace(&model.store, &model.correct, trace, model.norm_code_len);
            Reply::Diagnosis(render_diagnosis(&spec.workload, outcome, &diag))
        }
    }
}

fn handle_request(request: &Request, cache: &ModelCache, stats: &ServerStats) -> Reply {
    match request {
        Request::Train(spec) => {
            if let Some(reply) = fault_hook(spec) {
                return reply;
            }
            match cache.get_or_train(spec) {
                Ok((model, outcome)) => {
                    stats.note_cache(outcome);
                    if outcome != CacheOutcome::Memory {
                        events().emit(Level::Info, "serve.model", model.summary.clone());
                    }
                    Reply::Trained(format!("{} [{}]", model.summary, outcome_tag(outcome)))
                }
                Err(e) => Reply::Error(e.to_string()),
            }
        }
        Request::Diagnose(spec, trace_bytes) => {
            if let Some(reply) = fault_hook(spec) {
                return reply;
            }
            let trace = match trace_from_bytes(trace_bytes) {
                Ok(t) => t,
                Err(e) => return Reply::Error(format!("bad trace payload: {e}")),
            };
            let (model, outcome) = match cache.get_or_train(spec) {
                Ok(pair) => pair,
                Err(e) => return Reply::Error(e.to_string()),
            };
            stats.note_cache(outcome);
            let diag = diagnose_trace(&model.store, &model.correct, &trace, model.norm_code_len);
            Reply::Diagnosis(render_diagnosis(&spec.workload, outcome, &diag))
        }
        Request::TracePut { key, workload, trace } => {
            let Some(corpus) = cache.corpus() else {
                return Reply::Error(
                    "no corpus store configured; start the daemon with --corpus".into(),
                );
            };
            let mut c = corpus.lock().expect("corpus lock");
            match c.put_trace_bytes(key, workload, trace) {
                Ok(info) => Reply::Stored(stored_summary(key, &info)),
                Err(e) => Reply::Error(format!("trace put failed: {e}")),
            }
        }
        Request::TraceGet { key } => {
            let Some(corpus) = cache.corpus() else {
                return Reply::Error(
                    "no corpus store configured; start the daemon with --corpus".into(),
                );
            };
            let c = corpus.lock().expect("corpus lock");
            match c.get_trace(key) {
                Ok(trace) => Reply::TraceData(trace_to_bytes(&trace)),
                Err(e) => Reply::Error(format!("trace get failed: {e}")),
            }
        }
        // STATUS and SHUTDOWN never reach the queue (acceptor fast path),
        // and the session kinds are handled on the session reader.
        Request::Status | Request::Shutdown => {
            Reply::Error("status/shutdown are acceptor-handled".into())
        }
        Request::Hello { .. }
        | Request::TracePutStart { .. }
        | Request::DiagnoseStart(_)
        | Request::StreamChunk(_)
        | Request::StreamEnd { .. } => Reply::Error("session frames are session-handled".into()),
    }
}

/// Reserved `__`-prefixed workload names inject faults for testing the
/// daemon's isolation properties (documented in `PROTOCOL.md`):
/// `__panic` panics inside the worker, `__sleep` holds the worker for
/// `seed` milliseconds. Neither touches the model cache.
fn fault_hook(spec: &ModelSpec) -> Option<Reply> {
    match spec.workload.as_str() {
        "__panic" => panic!("injected fault: __panic workload"),
        "__sleep" => {
            std::thread::sleep(Duration::from_millis(spec.seed));
            Some(Reply::Trained(format!("slept {}ms", spec.seed)))
        }
        _ => None,
    }
}

fn outcome_tag(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Memory => "cache-hit",
        CacheOutcome::Disk => "cache-hit:disk",
        CacheOutcome::Store => "cache-hit:store",
        CacheOutcome::Trained => "trained",
    }
}

/// Render a diagnosis as the `DIAGNOSIS` reply text: one header line of
/// `key=value` counters, then one `#<rank>` line per suspect (top 10).
fn render_diagnosis(workload: &str, outcome: CacheOutcome, diag: &Diagnosis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "diagnosis workload={} model={} ranked={} logged={} distinct={} pruned={} filter_pct={:.1}",
        workload,
        outcome_tag(outcome),
        diag.ranked.len(),
        diag.total_logged,
        diag.distinct,
        diag.pruned,
        diag.filter_pct()
    )
    .expect("string write");
    for (i, c) in diag.ranked.iter().take(10).enumerate() {
        let deps: Vec<String> = c
            .deps
            .iter()
            .map(|d| {
                format!("{}->{}{}", d.store_pc, d.load_pc, if d.inter_thread { "*" } else { "" })
            })
            .collect();
        writeln!(
            out,
            "#{} nn={:.3} matched={} occurrences={} tid={} deps={}",
            i + 1,
            c.output,
            c.matched,
            c.occurrences,
            c.tid,
            deps.join(",")
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_core::postprocess::RankedSequence;
    use act_sim::events::RawDep;

    #[test]
    fn diagnosis_rendering_is_grep_stable() {
        let diag = Diagnosis {
            ranked: vec![RankedSequence {
                deps: vec![
                    RawDep { store_pc: 7, load_pc: 9, inter_thread: true },
                    RawDep { store_pc: 3, load_pc: 5, inter_thread: false },
                ],
                output: 0.123,
                matched: 1,
                cycle: 42,
                tid: 2,
                occurrences: 4,
            }],
            total_logged: 10,
            distinct: 6,
            pruned: 5,
        };
        let text = render_diagnosis("apache", CacheOutcome::Trained, &diag);
        assert!(text.starts_with("diagnosis workload=apache model=trained ranked=1 "));
        assert!(text.contains("#1 nn=0.123 matched=1 occurrences=4 tid=2 deps=7->9*,3->5"));
    }

    #[test]
    fn sleep_hook_replies_without_touching_the_cache() {
        let mut spec = ModelSpec::new("__sleep");
        spec.seed = 1;
        let reply = fault_hook(&spec).expect("sleep hook fires");
        assert!(matches!(reply, Reply::Trained(s) if s.contains("slept 1ms")));
        assert!(fault_hook(&ModelSpec::new("fft")).is_none());
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_hook_panics() {
        let _ = fault_hook(&ModelSpec::new("__panic"));
    }
}
