//! Request workers: a pool of threads draining the daemon's bounded job
//! queue ([`act_fleet::BoundedQueue`]), each request executed inside
//! `catch_unwind` — the same crash-isolation discipline as `act-fleet`'s
//! campaign workers, so one poisoned request becomes an `ERROR` reply, not
//! a dead daemon.

use crate::cache::{CacheOutcome, ModelCache};
use crate::proto::{ModelSpec, Reply, Request};
use crate::server::{send_reply, stored_summary, Conn, ServerStats, SessionShared};
use act_core::diagnosis::diagnose_trace;
use act_core::postprocess::Diagnosis;
use act_fleet::{panic_message, BoundedQueue};
use act_obs::{events, Level};
use act_trace::io::{trace_from_bytes, trace_to_bytes};
use act_trace::Trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a finished request's reply goes: a one-shot connection (the
/// v1–v3 model — and plain v4 requests outside a session) or a slot on a
/// multiplexed v4 session.
pub(crate) enum Responder {
    /// Reply, then drop the connection (one request per connection).
    OneShot {
        /// The connection the reply is written to.
        conn: Conn,
        /// Protocol version the request arrived with; the reply is
        /// stamped with it so old clients can decode what they get back.
        version: u8,
        /// Echoed on v4 one-shot replies; 0 below v4.
        request_id: u32,
    },
    /// Reply onto a session's shared writer and release its window slot.
    Session {
        /// The session the request arrived on.
        shared: Arc<SessionShared>,
        /// Which in-flight request this answers.
        request_id: u32,
    },
}

impl Responder {
    /// Deliver `reply` wherever this request came from.
    pub(crate) fn respond(self, reply: &Reply, stats: &ServerStats) {
        match self {
            Responder::OneShot { mut conn, version, request_id } => {
                send_reply(&mut conn, version, request_id, reply, stats);
            }
            Responder::Session { shared, request_id } => {
                shared.send_final(request_id, reply, stats);
            }
        }
    }
}

/// What a worker executes.
pub(crate) enum Work {
    /// An ordinary parsed request.
    Request(Request),
    /// A streamed `DIAGNOSE` whose trace the session already parsed
    /// chunk-by-chunk (the decode half of the decode→classify pipeline).
    DiagnoseTrace(ModelSpec, Box<Trace>),
}

/// One accepted request, queued for a worker.
pub(crate) struct Job {
    /// Where the reply goes.
    pub responder: Responder,
    /// The work itself (only diagnosable/trainable/corpus requests are
    /// queued; `STATUS` and `SHUTDOWN` are answered inline).
    pub work: Work,
    /// When the acceptor enqueued it — the deadline clock starts here, so
    /// time spent *queued* counts against the request.
    pub accepted: Instant,
}

/// Spawn `n` worker threads draining `queue` until it is closed and empty.
pub(crate) fn spawn_workers(
    n: usize,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    stats: Arc<ServerStats>,
    deadline: Duration,
) -> Vec<JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let queue = queue.clone();
            let cache = cache.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name(format!("act-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = queue.pop() {
                        process(job, &cache, &stats, deadline);
                    }
                })
                .expect("spawn worker thread")
        })
        .collect()
}

/// Execute one job: deadline check, crash-isolated request handling, reply.
fn process(job: Job, cache: &ModelCache, stats: &ServerStats, deadline: Duration) {
    let Job { responder, work, accepted } = job;
    let waited = accepted.elapsed();
    let reply = if waited > deadline {
        stats.bump_deadline_expired();
        events().emit(
            Level::Warn,
            "serve.deadline",
            format!(
                "request expired after {}ms queued (limit {}ms)",
                waited.as_millis(),
                deadline.as_millis()
            ),
        );
        Reply::Error(format!(
            "deadline exceeded: request waited {}ms in queue (limit {}ms)",
            waited.as_millis(),
            deadline.as_millis()
        ))
    } else {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_work(&work, cache, stats)));
        stats.record_service(started.elapsed());
        match outcome {
            Ok(reply) => reply,
            Err(payload) => {
                stats.bump_crashed();
                let message = panic_message(&*payload);
                events().emit(
                    Level::Warn,
                    "serve.worker",
                    format!("request crashed (isolated): {message}"),
                );
                Reply::Error(format!("request crashed: {message}"))
            }
        }
    };
    match &reply {
        Reply::Trained(_) | Reply::Diagnosis(_) | Reply::Stored(_) | Reply::TraceData(_) => {
            stats.bump_served()
        }
        Reply::Error(_) => stats.bump_errored(),
        _ => {}
    }
    responder.respond(&reply, stats);
}

/// Map queued work to its reply. Runs *inside* `catch_unwind`: panics out
/// of the diagnosis stack (malformed topologies, workload asserts,
/// injected faults) surface as `ERROR` frames.
fn handle_work(work: &Work, cache: &ModelCache, stats: &ServerStats) -> Reply {
    match work {
        Work::Request(request) => handle_request(request, cache, stats),
        Work::DiagnoseTrace(spec, trace) => {
            if let Some(reply) = fault_hook(spec) {
                return reply;
            }
            let (model, outcome) = match cache.get_or_train(spec) {
                Ok(pair) => pair,
                Err(e) => return Reply::Error(e.to_string()),
            };
            stats.note_cache(outcome);
            let diag = diagnose_trace(&model.store, &model.correct, trace, model.norm_code_len);
            Reply::Diagnosis(render_diagnosis(&spec.workload, outcome, &diag))
        }
    }
}

fn handle_request(request: &Request, cache: &ModelCache, stats: &ServerStats) -> Reply {
    match request {
        Request::Train(spec) => {
            if let Some(reply) = fault_hook(spec) {
                return reply;
            }
            match cache.get_or_train(spec) {
                Ok((model, outcome)) => {
                    stats.note_cache(outcome);
                    if outcome != CacheOutcome::Memory {
                        events().emit(Level::Info, "serve.model", model.summary.clone());
                    }
                    Reply::Trained(format!("{} [{}]", model.summary, outcome_tag(outcome)))
                }
                Err(e) => Reply::Error(e.to_string()),
            }
        }
        Request::Diagnose(spec, trace_bytes) => {
            if let Some(reply) = fault_hook(spec) {
                return reply;
            }
            let trace = match trace_from_bytes(trace_bytes) {
                Ok(t) => t,
                Err(e) => return Reply::Error(format!("bad trace payload: {e}")),
            };
            let (model, outcome) = match cache.get_or_train(spec) {
                Ok(pair) => pair,
                Err(e) => return Reply::Error(e.to_string()),
            };
            stats.note_cache(outcome);
            let diag = diagnose_trace(&model.store, &model.correct, &trace, model.norm_code_len);
            Reply::Diagnosis(render_diagnosis(&spec.workload, outcome, &diag))
        }
        Request::TracePut { key, workload, trace } => {
            let Some(corpus) = cache.corpus() else {
                return Reply::Error(
                    "no corpus store configured; start the daemon with --corpus".into(),
                );
            };
            let mut c = corpus.lock().expect("corpus lock");
            match c.put_trace_bytes(key, workload, trace) {
                Ok(info) => Reply::Stored(stored_summary(key, &info)),
                Err(e) => Reply::Error(format!("trace put failed: {e}")),
            }
        }
        Request::TraceGet { key } => {
            let Some(corpus) = cache.corpus() else {
                return Reply::Error(
                    "no corpus store configured; start the daemon with --corpus".into(),
                );
            };
            let c = corpus.lock().expect("corpus lock");
            match c.get_trace(key) {
                Ok(trace) => Reply::TraceData(trace_to_bytes(&trace)),
                Err(e) => Reply::Error(format!("trace get failed: {e}")),
            }
        }
        // STATUS and SHUTDOWN never reach the queue (acceptor fast path),
        // and the session kinds are handled on the session reader.
        Request::Status | Request::Shutdown => {
            Reply::Error("status/shutdown are acceptor-handled".into())
        }
        Request::Hello { .. }
        | Request::TracePutStart { .. }
        | Request::DiagnoseStart(_)
        | Request::StreamChunk(_)
        | Request::StreamEnd { .. } => Reply::Error("session frames are session-handled".into()),
    }
}

/// Reserved `__`-prefixed workload names inject faults for testing the
/// daemon's isolation properties (documented in `PROTOCOL.md`):
/// `__panic` panics inside the worker, `__sleep` holds the worker for
/// `seed` milliseconds. Neither touches the model cache.
fn fault_hook(spec: &ModelSpec) -> Option<Reply> {
    match spec.workload.as_str() {
        "__panic" => panic!("injected fault: __panic workload"),
        "__sleep" => {
            std::thread::sleep(Duration::from_millis(spec.seed));
            Some(Reply::Trained(format!("slept {}ms", spec.seed)))
        }
        _ => None,
    }
}

fn outcome_tag(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Memory => "cache-hit",
        CacheOutcome::Disk => "cache-hit:disk",
        CacheOutcome::Store => "cache-hit:store",
        CacheOutcome::Trained => "trained",
    }
}

/// Render a diagnosis as the `DIAGNOSIS` reply text: one header line of
/// `key=value` counters, then one `#<rank>` line per suspect (top 10).
fn render_diagnosis(workload: &str, outcome: CacheOutcome, diag: &Diagnosis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "diagnosis workload={} model={} ranked={} logged={} distinct={} pruned={} filter_pct={:.1}",
        workload,
        outcome_tag(outcome),
        diag.ranked.len(),
        diag.total_logged,
        diag.distinct,
        diag.pruned,
        diag.filter_pct()
    )
    .expect("string write");
    for (i, c) in diag.ranked.iter().take(10).enumerate() {
        let deps: Vec<String> = c
            .deps
            .iter()
            .map(|d| {
                format!("{}->{}{}", d.store_pc, d.load_pc, if d.inter_thread { "*" } else { "" })
            })
            .collect();
        writeln!(
            out,
            "#{} nn={:.3} matched={} occurrences={} tid={} deps={}",
            i + 1,
            c.output,
            c.matched,
            c.occurrences,
            c.tid,
            deps.join(",")
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_core::postprocess::RankedSequence;
    use act_sim::events::RawDep;

    #[test]
    fn diagnosis_rendering_is_grep_stable() {
        let diag = Diagnosis {
            ranked: vec![RankedSequence {
                deps: vec![
                    RawDep { store_pc: 7, load_pc: 9, inter_thread: true },
                    RawDep { store_pc: 3, load_pc: 5, inter_thread: false },
                ],
                output: 0.123,
                matched: 1,
                cycle: 42,
                tid: 2,
                occurrences: 4,
            }],
            total_logged: 10,
            distinct: 6,
            pruned: 5,
        };
        let text = render_diagnosis("apache", CacheOutcome::Trained, &diag);
        assert!(text.starts_with("diagnosis workload=apache model=trained ranked=1 "));
        assert!(text.contains("#1 nn=0.123 matched=1 occurrences=4 tid=2 deps=7->9*,3->5"));
    }

    #[test]
    fn sleep_hook_replies_without_touching_the_cache() {
        let mut spec = ModelSpec::new("__sleep");
        spec.seed = 1;
        let reply = fault_hook(&spec).expect("sleep hook fires");
        assert!(matches!(reply, Reply::Trained(s) if s.contains("slept 1ms")));
        assert!(fault_hook(&ModelSpec::new("fft")).is_none());
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_hook_panics() {
        let _ = fault_hook(&ModelSpec::new("__panic"));
    }
}
