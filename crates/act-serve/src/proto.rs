//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message — request or reply — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ACTS"
//! 4       1     protocol version (1 through 4)
//! 5       1     frame kind (see [`FrameKind`])
//! 6       4     payload length, little-endian u32 (<= MAX_PAYLOAD)
//! 10      4     request id, little-endian u32 (v4 frames ONLY)
//! 10|14   n     payload
//! ```
//!
//! Version 2 adds exactly one reply kind, [`FrameKind::StatusMetrics`]:
//! the `STATUS` text block plus a serialized
//! [`MetricsSnapshot`](act_obs::MetricsSnapshot). The server answers in
//! the version the request arrived with — a v1 `STATUS` still gets the
//! plain [`FrameKind::StatusText`] reply — so old clients and old servers
//! interoperate with new ones in both directions.
//!
//! Version 3 adds the corpus-store frames: [`FrameKind::TracePut`] ships a
//! correct-run trace into the daemon's `--corpus` store (answered by
//! [`FrameKind::Stored`]) and [`FrameKind::TraceGet`] reads one back
//! (answered by [`FrameKind::TraceData`]). v1/v2 clients never send these
//! kinds, and the daemon never volunteers them, so compatibility is again
//! two-way; a daemon running without `--corpus` answers them with `ERROR`.
//!
//! Version 4 adds multiplexed, pipelined sessions and streaming ingest.
//! Every v4 frame carries a client-chosen `request_id` between the header
//! and the payload; v1–v3 frames stay bit-for-bit identical to what they
//! always were (no request id on the wire). A v4 connection that opens
//! with [`FrameKind::Hello`] becomes a *session*: many requests may be in
//! flight at once (bounded by the window the [`FrameKind::HelloAck`]
//! grants), replies may arrive in any order and are matched by request id,
//! and `BUSY` applies per request, not per connection. Streaming ingest
//! rides on sessions: [`FrameKind::TracePutStart`] /
//! [`FrameKind::DiagnoseStart`] open a chunked upload,
//! [`FrameKind::StreamChunk`] frames (each <= [`MAX_CHUNK`]) carry the
//! trace text incrementally, and [`FrameKind::StreamEnd`] seals it with a
//! running CRC-32 and total length — so a trace larger than one frame's
//! [`MAX_PAYLOAD`] can be ingested without ever being materialized whole.
//!
//! The v1–v3 connection model is one-shot: a client connects, writes one
//! request frame, reads one reply frame, and the connection closes. A v4
//! frame whose kind is not `HELLO` is served on the same one-shot path
//! (with its request id echoed), so plain v4 clients need no session.
//! `BUSY` semantics stay exact in both models: a rejected request was
//! never queued. See `crates/act-serve/PROTOCOL.md` for the full
//! specification.
//!
//! Payload schemas are hand-rolled little-endian (the workspace is offline
//! and std-only — no serde): length-prefixed strings and byte blobs plus
//! fixed-width integers, via [`Cursor`].

use act_obs::MetricsSnapshot;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"ACTS";
/// Newest protocol version this implementation speaks (v4 = multiplexed
/// pipelined sessions + streaming ingest).
pub const VERSION: u8 = 4;
/// First version whose frames carry a request id after the header.
pub const SESSION_VERSION: u8 = 4;
/// Oldest protocol version still accepted.
pub const MIN_VERSION: u8 = 1;
/// Upper bound on payload length; longer declared lengths are rejected
/// *before* any allocation, so a corrupt or hostile length prefix cannot
/// balloon memory.
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Upper bound on one [`FrameKind::StreamChunk`] payload. Far below
/// [`MAX_PAYLOAD`] on purpose: chunks interleave with other requests'
/// frames on a multiplexed session, so one chunk must never hog the pipe.
pub const MAX_CHUNK: u32 = 4 << 20;
/// Bytes of frame header before the payload (before the v4 request id).
pub const HEADER_LEN: usize = 10;

/// What a frame carries. Requests are < 0x80, replies >= 0x80.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Request: train (or load) a model for a workload key.
    Train = 0x01,
    /// Request: diagnose a shipped failing trace against a model.
    Diagnose = 0x02,
    /// Request: the daemon's plain-text counters block.
    Status = 0x03,
    /// Request: graceful drain and exit.
    Shutdown = 0x04,
    /// Request (v3): store a correct-run trace in the daemon's corpus.
    TracePut = 0x05,
    /// Request (v3): read a stored trace back from the corpus.
    TraceGet = 0x06,
    /// Request (v4): open a multiplexed session; payload is the desired
    /// in-flight window (0 = server default).
    Hello = 0x07,
    /// Request (v4): open a chunked corpus upload for `(key, workload)`.
    TracePutStart = 0x08,
    /// Request (v4): open a chunked diagnose upload for a model spec.
    DiagnoseStart = 0x09,
    /// Request (v4): one chunk of an open upload (raw trace text bytes,
    /// <= [`MAX_CHUNK`]); shares the opener's request id.
    StreamChunk = 0x0a,
    /// Request (v4): seal an open upload with its CRC-32 and total length.
    StreamEnd = 0x0b,
    /// Reply to [`FrameKind::Train`]: training summary text.
    Trained = 0x81,
    /// Reply to [`FrameKind::Diagnose`]: the ranked suspect list, text.
    Diagnosis = 0x82,
    /// Reply to [`FrameKind::Status`]: the counters block, text.
    StatusText = 0x83,
    /// Reply to [`FrameKind::Shutdown`]: acknowledged, draining.
    Bye = 0x84,
    /// Reply to [`FrameKind::Status`] (v2): the counters block *plus* a
    /// serialized metrics snapshot.
    StatusMetrics = 0x85,
    /// Reply to [`FrameKind::TracePut`] (v3): stored; text summary.
    Stored = 0x86,
    /// Reply to [`FrameKind::TraceGet`] (v3): the trace, `act-trace::io`
    /// v1 text bytes.
    TraceData = 0x87,
    /// Reply to [`FrameKind::Hello`] (v4): session open; payload is the
    /// granted in-flight window.
    HelloAck = 0x88,
    /// Reply: the job queue is full — retry later (backpressure; the
    /// request was *not* accepted).
    Busy = 0xe0,
    /// Reply: the request failed; payload is the error message.
    Error = 0xe1,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        use FrameKind::*;
        Some(match v {
            0x01 => Train,
            0x02 => Diagnose,
            0x03 => Status,
            0x04 => Shutdown,
            0x05 => TracePut,
            0x06 => TraceGet,
            0x07 => Hello,
            0x08 => TracePutStart,
            0x09 => DiagnoseStart,
            0x0a => StreamChunk,
            0x0b => StreamEnd,
            0x81 => Trained,
            0x82 => Diagnosis,
            0x83 => StatusText,
            0x84 => Bye,
            0x85 => StatusMetrics,
            0x86 => Stored,
            0x87 => TraceData,
            0x88 => HelloAck,
            0xe0 => Busy,
            0xe1 => Error,
            _ => return None,
        })
    }
}

/// One protocol frame: a version, a kind, a request id, and the raw
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version the frame was (or will be) stamped with. The
    /// server echoes the request's version on its reply so v1 clients
    /// never see a frame their `read_frame` rejects.
    pub version: u8,
    /// What the payload means.
    pub kind: FrameKind,
    /// Request id (v4). Present on the wire only when `version >= `
    /// [`SESSION_VERSION`]; a reply carries the id of the request it
    /// answers. Always 0 for v1–v3 frames.
    pub request_id: u32,
    /// Schema depends on `kind`; see the module docs and `PROTOCOL.md`.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame stamped with the newest [`VERSION`] and request id 0.
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Frame {
        Frame { version: VERSION, kind, request_id: 0, payload }
    }

    /// The same frame restamped for a peer speaking `version`. Dropping
    /// below [`SESSION_VERSION`] zeroes the request id (it has no wire
    /// representation there).
    pub fn with_version(mut self, version: u8) -> Frame {
        self.version = version;
        if version < SESSION_VERSION {
            self.request_id = 0;
        }
        self
    }

    /// The same frame tagged with a session request id.
    pub fn with_request(mut self, request_id: u32) -> Frame {
        self.request_id = request_id;
        self
    }
}

/// Everything that can go wrong reading or interpreting a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The stream ended before the declared payload arrived.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
    },
    /// The payload did not match its kind's schema.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::Oversized(n) => {
                write!(f, "declared payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            ProtoError::Truncated { expected } => {
                write!(f, "stream ended before the declared {expected}-byte payload arrived")
            }
            ProtoError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Write one frame to `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD`] (a caller bug: requests
/// are built by this crate and replies are bounded text).
pub fn write_frame<W: Write>(mut w: W, frame: &Frame) -> io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 4 + frame.payload.len());
    encode_frame(&mut buf, frame);
    w.write_all(&buf)?;
    w.flush()
}

/// Append one frame's wire bytes to `buf` without touching a socket — the
/// building block for batched replies, where a worker concatenates every
/// frame of a micro-batch and hands the writer a single `write_all`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD`] (a caller bug: requests
/// are built by this crate and replies are bounded text).
pub fn encode_frame(buf: &mut Vec<u8>, frame: &Frame) {
    assert!(frame.payload.len() <= MAX_PAYLOAD as usize, "frame payload too large");
    buf.extend_from_slice(&MAGIC);
    buf.push(frame.version);
    buf.push(frame.kind as u8);
    buf.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    if frame.version >= SESSION_VERSION {
        buf.extend_from_slice(&frame.request_id.to_le_bytes());
    }
    buf.extend_from_slice(&frame.payload);
}

/// Read one frame from `r`, validating magic, version, kind, and length
/// before allocating for the payload.
///
/// # Errors
///
/// Returns [`ProtoError`] for I/O failures, bad headers, oversized declared
/// lengths, and truncated payloads.
pub fn read_frame<R: Read>(mut r: R) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated { expected: HEADER_LEN }
        } else {
            ProtoError::Io(e)
        }
    })?;
    if header[0..4] != MAGIC {
        return Err(ProtoError::BadMagic([header[0], header[1], header[2], header[3]]));
    }
    if !(MIN_VERSION..=VERSION).contains(&header[4]) {
        return Err(ProtoError::BadVersion(header[4]));
    }
    let version = header[4];
    let kind = FrameKind::from_u8(header[5]).ok_or(ProtoError::UnknownKind(header[5]))?;
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let request_id = if version >= SESSION_VERSION {
        let mut id = [0u8; 4];
        r.read_exact(&mut id).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ProtoError::Truncated { expected: 4 }
            } else {
                ProtoError::Io(e)
            }
        })?;
        u32::from_le_bytes(id)
    } else {
        0
    };
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated { expected: len as usize }
        } else {
            ProtoError::Io(e)
        }
    })?;
    Ok(Frame { version, kind, request_id, payload })
}

// ---------------------------------------------------------------------
// Payload schemas.
// ---------------------------------------------------------------------

/// The model key + training parameters a client names in `TRAIN` and
/// `DIAGNOSE` requests. `(workload, seq_len, hidden, seed)` identifies the
/// cached model — `seq_len`/`hidden` pin the network topology (inputs are
/// `FEATURES_PER_DEP * seq_len`), so the cache key is the issue's
/// `(workload, topology, seed)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Workload name (resolved via `act-workloads::registry`). Names
    /// starting with `__` are reserved fault-injection hooks (see
    /// `PROTOCOL.md`).
    pub workload: String,
    /// Base seed for trace collection and training.
    pub seed: u64,
    /// Correct-run traces to train from.
    pub traces: u32,
    /// Dependence-sequence length `N`.
    pub seq_len: u16,
    /// Hidden-layer size.
    pub hidden: u16,
    /// Training epoch cap (0 = the server default).
    pub max_epochs: u32,
}

impl ModelSpec {
    /// Server-default parameters for `workload` (10 traces, the harness's
    /// pinned N = 2 / hidden = 10 topology, default epochs).
    pub fn new(workload: &str) -> Self {
        ModelSpec {
            workload: workload.to_string(),
            seed: 0,
            traces: 10,
            seq_len: 2,
            hidden: 10,
            max_epochs: 0,
        }
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_str(buf, &self.workload);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(&self.traces.to_le_bytes());
        buf.extend_from_slice(&self.seq_len.to_le_bytes());
        buf.extend_from_slice(&self.hidden.to_le_bytes());
        buf.extend_from_slice(&self.max_epochs.to_le_bytes());
    }

    fn decode(c: &mut Cursor<'_>) -> Result<Self, ProtoError> {
        Ok(ModelSpec {
            workload: c.take_str()?,
            seed: c.take_u64()?,
            traces: c.take_u32()?,
            seq_len: c.take_u16()?,
            hidden: c.take_u16()?,
            max_epochs: c.take_u32()?,
        })
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Train (or load from cache/disk) the model for a key.
    Train(ModelSpec),
    /// Diagnose a shipped failing trace (`act-trace::io` v1 bytes) against
    /// the model for a key.
    Diagnose(ModelSpec, Vec<u8>),
    /// Fetch the counters block.
    Status,
    /// Drain and exit.
    Shutdown,
    /// Store a correct-run trace (`act-trace::io` v1 bytes) in the corpus
    /// under `(workload, key)` (v3, daemons started with `--corpus`).
    TracePut {
        /// Corpus entry key.
        key: String,
        /// Workload the trace belongs to.
        workload: String,
        /// `act-trace::io` v1 text bytes.
        trace: Vec<u8>,
    },
    /// Read a stored trace back from the corpus (v3).
    TraceGet {
        /// Corpus entry key.
        key: String,
    },
    /// Open a multiplexed session (v4); must be a connection's first frame.
    Hello {
        /// In-flight window the client wants (0 = server default). The
        /// server grants `min(desired, its own cap)` in the `HELLO_ACK`.
        window: u32,
    },
    /// Open a chunked corpus upload under `(workload, key)` (v4 session).
    TracePutStart {
        /// Corpus entry key.
        key: String,
        /// Workload the trace belongs to.
        workload: String,
    },
    /// Open a chunked diagnose upload for a model key (v4 session).
    DiagnoseStart(ModelSpec),
    /// One chunk of the open upload: raw `act-trace::io` v1 text bytes,
    /// at most [`MAX_CHUNK`] of them (v4 session).
    StreamChunk(Vec<u8>),
    /// Seal the open upload (v4 session). The server verifies both fields
    /// against its own running tallies before committing.
    StreamEnd {
        /// CRC-32 of every chunk byte, in order.
        crc32: u32,
        /// Total chunk bytes.
        total_len: u64,
    },
}

impl Request {
    /// Encode to a wire frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            Request::Train(spec) => {
                let mut payload = Vec::new();
                spec.encode_into(&mut payload);
                Frame::new(FrameKind::Train, payload)
            }
            Request::Diagnose(spec, trace) => {
                let mut payload = Vec::new();
                spec.encode_into(&mut payload);
                put_bytes(&mut payload, trace);
                Frame::new(FrameKind::Diagnose, payload)
            }
            Request::Status => Frame::new(FrameKind::Status, Vec::new()),
            Request::Shutdown => Frame::new(FrameKind::Shutdown, Vec::new()),
            Request::TracePut { key, workload, trace } => {
                let mut payload = Vec::new();
                put_str(&mut payload, key);
                put_str(&mut payload, workload);
                put_bytes(&mut payload, trace);
                Frame::new(FrameKind::TracePut, payload)
            }
            Request::TraceGet { key } => {
                let mut payload = Vec::new();
                put_str(&mut payload, key);
                Frame::new(FrameKind::TraceGet, payload)
            }
            Request::Hello { window } => {
                Frame::new(FrameKind::Hello, window.to_le_bytes().to_vec())
            }
            Request::TracePutStart { key, workload } => {
                let mut payload = Vec::new();
                put_str(&mut payload, key);
                put_str(&mut payload, workload);
                Frame::new(FrameKind::TracePutStart, payload)
            }
            Request::DiagnoseStart(spec) => {
                let mut payload = Vec::new();
                spec.encode_into(&mut payload);
                Frame::new(FrameKind::DiagnoseStart, payload)
            }
            Request::StreamChunk(bytes) => {
                assert!(bytes.len() <= MAX_CHUNK as usize, "stream chunk over MAX_CHUNK");
                Frame::new(FrameKind::StreamChunk, bytes.clone())
            }
            Request::StreamEnd { crc32, total_len } => {
                let mut payload = Vec::new();
                payload.extend_from_slice(&crc32.to_le_bytes());
                payload.extend_from_slice(&total_len.to_le_bytes());
                Frame::new(FrameKind::StreamEnd, payload)
            }
        }
    }

    /// Decode a request frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] when the frame is a reply kind or
    /// its payload does not match the schema.
    pub fn from_frame(frame: &Frame) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(&frame.payload);
        let req = match frame.kind {
            FrameKind::Train => Request::Train(ModelSpec::decode(&mut c)?),
            FrameKind::Diagnose => {
                let spec = ModelSpec::decode(&mut c)?;
                let trace = c.take_bytes()?;
                Request::Diagnose(spec, trace)
            }
            FrameKind::Status => Request::Status,
            FrameKind::Shutdown => Request::Shutdown,
            FrameKind::TracePut => {
                let key = c.take_str()?;
                let workload = c.take_str()?;
                let trace = c.take_bytes()?;
                Request::TracePut { key, workload, trace }
            }
            FrameKind::TraceGet => Request::TraceGet { key: c.take_str()? },
            FrameKind::Hello => Request::Hello { window: c.take_u32()? },
            FrameKind::TracePutStart => {
                let key = c.take_str()?;
                let workload = c.take_str()?;
                Request::TracePutStart { key, workload }
            }
            FrameKind::DiagnoseStart => Request::DiagnoseStart(ModelSpec::decode(&mut c)?),
            FrameKind::StreamChunk => {
                if frame.payload.len() > MAX_CHUNK as usize {
                    return Err(ProtoError::Malformed(format!(
                        "stream chunk of {} bytes exceeds the {MAX_CHUNK}-byte cap",
                        frame.payload.len()
                    )));
                }
                return Ok(Request::StreamChunk(frame.payload.clone()));
            }
            FrameKind::StreamEnd => {
                let crc32 = c.take_u32()?;
                let total_len = c.take_u64()?;
                Request::StreamEnd { crc32, total_len }
            }
            other => return Err(ProtoError::Malformed(format!("{other:?} is not a request"))),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A decoded reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Training finished (or the model was already cached); text summary.
    Trained(String),
    /// The ranked suspect list, rendered as text (see `PROTOCOL.md`).
    Diagnosis(String),
    /// The counters block.
    StatusText(String),
    /// The counters block plus the daemon's full metrics snapshot
    /// (protocol v2; v1 requesters get [`Reply::StatusText`] instead).
    StatusMetrics(String, MetricsSnapshot),
    /// The trace was stored in the corpus; text summary (v3).
    Stored(String),
    /// A stored trace, `act-trace::io` v1 text bytes (v3).
    TraceData(Vec<u8>),
    /// Session open (v4); the granted in-flight window.
    HelloAck {
        /// How many requests the client may keep in flight at once.
        window: u32,
    },
    /// Shutdown acknowledged; the daemon is draining.
    Bye,
    /// Queue full — the request was rejected, not accepted-then-dropped.
    Busy,
    /// The request failed (bad workload, crash, deadline, parse error...).
    Error(String),
}

impl Reply {
    /// Encode to a wire frame.
    pub fn to_frame(&self) -> Frame {
        let (kind, payload) = match self {
            Reply::Trained(s) => (FrameKind::Trained, s.clone().into_bytes()),
            Reply::Diagnosis(s) => (FrameKind::Diagnosis, s.clone().into_bytes()),
            Reply::StatusText(s) => (FrameKind::StatusText, s.clone().into_bytes()),
            Reply::StatusMetrics(s, snap) => {
                let mut payload = Vec::new();
                put_str(&mut payload, s);
                payload.extend_from_slice(&snap.to_bytes());
                (FrameKind::StatusMetrics, payload)
            }
            Reply::Stored(s) => (FrameKind::Stored, s.clone().into_bytes()),
            Reply::TraceData(bytes) => (FrameKind::TraceData, bytes.clone()),
            Reply::HelloAck { window } => (FrameKind::HelloAck, window.to_le_bytes().to_vec()),
            Reply::Bye => (FrameKind::Bye, Vec::new()),
            Reply::Busy => (FrameKind::Busy, Vec::new()),
            Reply::Error(s) => (FrameKind::Error, s.clone().into_bytes()),
        };
        Frame::new(kind, payload)
    }

    /// Decode a reply frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] when the frame is a request kind
    /// or a text payload is not UTF-8.
    pub fn from_frame(frame: &Frame) -> Result<Reply, ProtoError> {
        let text = |payload: &[u8]| {
            String::from_utf8(payload.to_vec())
                .map_err(|_| ProtoError::Malformed("reply text is not UTF-8".into()))
        };
        Ok(match frame.kind {
            FrameKind::Trained => Reply::Trained(text(&frame.payload)?),
            FrameKind::Diagnosis => Reply::Diagnosis(text(&frame.payload)?),
            FrameKind::StatusText => Reply::StatusText(text(&frame.payload)?),
            FrameKind::StatusMetrics => {
                let mut c = Cursor::new(&frame.payload);
                let status = c.take_str()?;
                let snap = MetricsSnapshot::from_bytes(c.rest)
                    .map_err(|e| ProtoError::Malformed(e.to_string()))?;
                Reply::StatusMetrics(status, snap)
            }
            FrameKind::Stored => Reply::Stored(text(&frame.payload)?),
            FrameKind::TraceData => Reply::TraceData(frame.payload.clone()),
            FrameKind::HelloAck => {
                let mut c = Cursor::new(&frame.payload);
                let window = c.take_u32()?;
                c.finish()?;
                Reply::HelloAck { window }
            }
            FrameKind::Bye => Reply::Bye,
            FrameKind::Busy => Reply::Busy,
            FrameKind::Error => Reply::Error(text(&frame.payload)?),
            other => return Err(ProtoError::Malformed(format!("{other:?} is not a reply"))),
        })
    }
}

// ---------------------------------------------------------------------
// Little-endian cursor helpers.
// ---------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
    buf.extend_from_slice(b);
}

struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { rest: bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.rest.len() < n {
            return Err(ProtoError::Malformed(format!(
                "payload truncated: wanted {n} more bytes, have {}",
                self.rest.len()
            )));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn take_u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn take_u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn take_bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.take_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn take_str(&mut self) -> Result<String, ProtoError> {
        String::from_utf8(self.take_bytes()?)
            .map_err(|_| ProtoError::Malformed("string field is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!("{} trailing payload bytes", self.rest.len())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ModelSpec {
        ModelSpec {
            workload: "apache".into(),
            seed: 7,
            traces: 10,
            seq_len: 2,
            hidden: 10,
            max_epochs: 300,
        }
    }

    #[test]
    fn frame_round_trips_over_a_byte_stream() {
        let frame = Frame::new(FrameKind::Diagnosis, b"ranked=3".to_vec());
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        assert_eq!(&wire[0..4], b"ACTS");
        assert_eq!(wire[4], VERSION);
        let back = read_frame(wire.as_slice()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn v1_frames_still_read_and_replies_restamp_for_old_clients() {
        // A v1 client's request (old wire bytes) must decode on a new
        // server, surfacing the version it arrived with.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Status.to_frame().with_version(1)).unwrap();
        assert_eq!(wire[4], 1);
        let frame = read_frame(wire.as_slice()).unwrap();
        assert_eq!(frame.version, 1);
        assert_eq!(Request::from_frame(&frame).unwrap(), Request::Status);

        // A new server's reply to that client is stamped v1, so the old
        // `read_frame` (which accepted only version 1) parses it.
        let reply = Reply::StatusText("act-serve status\nrequests_served 0\n".into());
        let mut wire = Vec::new();
        write_frame(&mut wire, &reply.to_frame().with_version(frame.version)).unwrap();
        assert_eq!(wire[4], 1);
        let back = Reply::from_frame(&read_frame(wire.as_slice()).unwrap()).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn status_metrics_reply_round_trips() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("requests_served", 5);
        snap.push_gauge("queue_depth", 2);
        snap.push_histogram(
            "service_us",
            act_obs::HistogramSnapshot { bounds: vec![100, 1000], counts: vec![3, 1, 1], sum: 42 },
        );
        let reply = Reply::StatusMetrics("act-serve status\n".into(), snap);
        let frame = reply.to_frame();
        assert_eq!(frame.version, VERSION);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let back = Reply::from_frame(&read_frame(wire.as_slice()).unwrap()).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn status_metrics_rejects_corrupt_snapshot_bytes() {
        let mut frame = Reply::StatusMetrics("s".into(), MetricsSnapshot::new()).to_frame();
        frame.payload.push(0xff);
        assert!(matches!(Reply::from_frame(&frame), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn v4_frames_carry_the_request_id_and_v3_frames_do_not() {
        // v4: 4 extra wire bytes between header and payload.
        let frame = Request::Status.to_frame().with_request(0xdead_beef);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        assert_eq!(wire.len(), HEADER_LEN + 4);
        assert_eq!(&wire[10..14], &0xdead_beefu32.to_le_bytes());
        let back = read_frame(wire.as_slice()).unwrap();
        assert_eq!(back.request_id, 0xdead_beef);

        // v3: exactly the old bytes, and restamping drops the id.
        let frame = Request::Status.to_frame().with_request(7).with_version(3);
        assert_eq!(frame.request_id, 0, "restamp below v4 zeroes the id");
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        assert_eq!(wire.len(), HEADER_LEN, "v3 wire layout unchanged");
        assert_eq!(read_frame(wire.as_slice()).unwrap().request_id, 0);
    }

    #[test]
    fn session_requests_round_trip() {
        let reqs = [
            Request::Hello { window: 0 },
            Request::Hello { window: 16 },
            Request::TracePutStart { key: "seq-clean-7".into(), workload: "seq".into() },
            Request::DiagnoseStart(spec()),
            Request::StreamChunk(b"L 0 5 0 14 100\n".to_vec()),
            Request::StreamEnd { crc32: 0xCBF4_3926, total_len: 1 << 33 },
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let frame = req.to_frame().with_request(i as u32 + 1);
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let back = read_frame(wire.as_slice()).unwrap();
            assert_eq!(back.request_id, i as u32 + 1);
            assert_eq!(Request::from_frame(&back).unwrap(), req);
        }
    }

    #[test]
    fn hello_ack_round_trips_and_oversized_chunks_are_rejected() {
        let reply = Reply::HelloAck { window: 32 };
        let mut wire = Vec::new();
        write_frame(&mut wire, &reply.to_frame().with_request(1)).unwrap();
        let back = read_frame(wire.as_slice()).unwrap();
        assert_eq!(Reply::from_frame(&back).unwrap(), reply);

        let frame = Frame::new(FrameKind::StreamChunk, vec![0u8; MAX_CHUNK as usize + 1]);
        assert!(matches!(Request::from_frame(&frame), Err(ProtoError::Malformed(_))));
        let ok = Frame::new(FrameKind::StreamChunk, vec![0u8; MAX_CHUNK as usize]);
        assert!(Request::from_frame(&ok).is_ok());
    }

    #[test]
    fn every_request_round_trips() {
        let reqs = [
            Request::Train(spec()),
            Request::Diagnose(spec(), b"acttrace v1 10\n".to_vec()),
            Request::Status,
            Request::Shutdown,
            Request::TracePut {
                key: "seq-clean-7".into(),
                workload: "seq".into(),
                trace: b"acttrace v1 10\n".to_vec(),
            },
            Request::TraceGet { key: "seq-clean-7".into() },
            Request::Hello { window: 8 },
            Request::TracePutStart { key: "seq-clean-7".into(), workload: "seq".into() },
            Request::DiagnoseStart(spec()),
            Request::StreamChunk(b"S 1 6 0 15 200\n".to_vec()),
            Request::StreamEnd { crc32: 42, total_len: 99 },
        ];
        for req in reqs {
            let frame = req.to_frame();
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let back = Request::from_frame(&read_frame(wire.as_slice()).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn every_reply_round_trips() {
        let replies = [
            Reply::Trained("topology 10x10x1".into()),
            Reply::Diagnosis("ranked=2\n#1 ...".into()),
            Reply::StatusText("requests_served 5".into()),
            Reply::StatusMetrics("requests_served 5".into(), MetricsSnapshot::new()),
            Reply::Stored("stored seq-clean-7 (3.2x)".into()),
            Reply::TraceData(b"acttrace v1 10\n".to_vec()),
            Reply::HelloAck { window: 32 },
            Reply::Bye,
            Reply::Busy,
            Reply::Error("unknown workload".into()),
        ];
        for reply in replies {
            let frame = reply.to_frame();
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let back = Reply::from_frame(&read_frame(wire.as_slice()).unwrap()).unwrap();
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Status.to_frame()).unwrap();
        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        assert!(matches!(read_frame(bad_magic.as_slice()), Err(ProtoError::BadMagic(_))));
        let mut bad_version = wire.clone();
        bad_version[4] = 99;
        assert!(matches!(read_frame(bad_version.as_slice()), Err(ProtoError::BadVersion(99))));
        let mut bad_kind = wire;
        bad_kind[5] = 0x7f;
        assert!(matches!(read_frame(bad_kind.as_slice()), Err(ProtoError::UnknownKind(0x7f))));
    }

    #[test]
    fn rejects_oversized_declared_length_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(VERSION);
        wire.push(FrameKind::Status as u8);
        wire.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(read_frame(wire.as_slice()), Err(ProtoError::Oversized(_))));
    }

    #[test]
    fn rejects_truncated_header_and_payload() {
        // Truncated mid-header.
        assert!(matches!(read_frame(&b"ACTS"[..]), Err(ProtoError::Truncated { .. })));
        // Header promises 100 bytes; stream has 3.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(VERSION);
        wire.push(FrameKind::Error as u8);
        wire.extend_from_slice(&100u32.to_le_bytes());
        wire.extend_from_slice(&7u32.to_le_bytes()); // v4 request id
        wire.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(wire.as_slice()),
            Err(ProtoError::Truncated { expected: 100 })
        ));
        // A v4 header with no request id behind it is truncated too.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(VERSION);
        wire.push(FrameKind::Status as u8);
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_frame(wire.as_slice()), Err(ProtoError::Truncated { expected: 4 })));
    }

    #[test]
    fn rejects_schema_violations() {
        // Trailing garbage after a well-formed spec.
        let mut frame = Request::Train(spec()).to_frame();
        frame.payload.push(0);
        assert!(matches!(Request::from_frame(&frame), Err(ProtoError::Malformed(_))));
        // Truncated spec.
        let mut frame = Request::Train(spec()).to_frame();
        frame.payload.truncate(4);
        assert!(matches!(Request::from_frame(&frame), Err(ProtoError::Malformed(_))));
        // Reply kind decoded as request and vice versa.
        assert!(Request::from_frame(&Reply::Busy.to_frame()).is_err());
        assert!(Reply::from_frame(&Request::Status.to_frame()).is_err());
    }
}
