//! act-serve: diagnosis-as-a-service for ACT.
//!
//! The paper's workflow is offline: run the instrumented program, collect
//! communication traces, train per-thread models, diagnose a failing run.
//! This crate wraps that pipeline in a long-lived daemon so a fleet of
//! production machines can *ship* a failing trace to a central diagnosis
//! service instead of carrying the training stack themselves — the
//! software analogue of the paper's centralized offline analysis step.
//!
//! Architecture (all std, no external dependencies):
//!
//! ```text
//!  clients ── TCP / Unix socket ──► acceptor threads
//!                  │                    │  STATUS / SHUTDOWN answered inline
//!                  │ HELLO (v4)         ▼
//!                  ▼            BoundedQueue<Job>  ── full ──► BUSY reply
//!          session reader ────────────►│  (pipelined requests, streamed
//!          (windowed, chunked)         │   chunks decoded on the session)
//!                                      ▼
//!                            worker pool (catch_unwind)
//!                                      │
//!                                      ▼
//!                     ModelCache: memory ─► disk ─► train
//!                                      │
//!                                      ▼
//!                    diagnose_trace ─► ranked suspect list reply
//! ```
//!
//! - [`proto`] — the length-prefixed binary frame protocol, including the
//!   v4 multiplexed-session and chunked-stream frames (see `PROTOCOL.md`
//!   for the wire spec).
//! - [`server`] — listeners, acceptors, session readers, backpressure,
//!   graceful drain.
//! - [`pool`] — crash-isolated request workers.
//! - [`cache`] — the LRU model cache keyed by (workload, topology, seed),
//!   persisted through `act-core`'s weight store.
//! - [`client`] — the transport vocabulary ([`Endpoint`], [`ClientConfig`],
//!   ...) plus deprecated one-shot request shims; application code should
//!   use the `act-client` crate's typed `Client` façade instead.

pub mod cache;
pub mod client;
pub(crate) mod pool;
pub mod proto;
pub mod server;

pub use cache::{CacheOutcome, Model, ModelCache, ModelKey};
#[allow(deprecated)] // the shims stay re-exported until every caller has moved to act-client
pub use client::{
    connect_tcp, request, request_timeout, request_with, ClientConfig, ClientError, Endpoint,
    RetryPolicy,
};
pub use proto::{Frame, FrameKind, ModelSpec, ProtoError, Reply, Request};
pub use server::{ServeConfig, Server, ServerStats};
