//! The daemon: listeners, acceptor threads, the bounded job queue, and the
//! counters block behind `STATUS`.
//!
//! Life of a request: an acceptor thread accepts the connection, reads one
//! frame, and either answers inline (`STATUS`, `SHUTDOWN` — always
//! serviceable, even with a full queue) or wraps the connection + request
//! into a [`Job`](crate::pool::Job) and `try_push`es it onto the bounded
//! queue. A full queue yields an immediate `BUSY` reply — the request was
//! *refused*, never accepted-then-dropped. Workers drain the queue (see
//! [`crate::pool`]); `SHUTDOWN` (or [`Server::shutdown`], which the CLI
//! wires to SIGINT) stops the acceptors, closes the queue, and lets the
//! workers finish every accepted job before [`Server::join`] returns.

use crate::cache::{CacheOutcome, ModelCache};
use crate::pool::{spawn_workers, Job};
use crate::proto::{read_frame, write_frame, Reply, Request, VERSION};
use act_fleet::BoundedQueue;
use act_obs::{events, latency_bounds_us, Counter, Gauge, Histogram, Level, Registry};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long acceptors sleep between polls of an idle listener (they poll so
/// the shutdown flag is noticed without a wakeup connection).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A client connection, TCP or Unix-domain.
pub(crate) enum Conn {
    /// TCP (remote or loopback) client.
    Tcp(TcpStream),
    /// Unix-domain-socket client (local, no network stack).
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn set_timeouts(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
            Conn::Unix(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (`"127.0.0.1:0"` picks an ephemeral port). At
    /// least one of `tcp_addr`/`unix_path` must be set.
    pub tcp_addr: Option<String>,
    /// Unix-domain-socket path (a stale socket file is replaced).
    pub unix_path: Option<PathBuf>,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Directory for persisted models (`None` = in-memory cache only).
    pub model_dir: Option<PathBuf>,
    /// Corpus store directory (`None` = no `TRACE_PUT`/`TRACE_GET`; the
    /// directory is created and initialized on first use).
    pub corpus_dir: Option<PathBuf>,
    /// Models kept resident in the LRU cache.
    pub cache_capacity: usize,
    /// Per-request deadline, measured from acceptance; a job popped after
    /// its deadline is answered with an error instead of being processed.
    pub deadline: Duration,
    /// Socket read/write timeout for each connection.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            unix_path: None,
            workers: act_fleet::default_workers(),
            queue_depth: 64,
            model_dir: None,
            corpus_dir: None,
            cache_capacity: 32,
            deadline: Duration::from_secs(120),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters behind `STATUS` — the daemon's observability surface, backed
/// by a per-server [`act_obs::Registry`] so the whole set serializes as
/// one [`MetricsSnapshot`](act_obs::MetricsSnapshot) in v2 `STATUS`
/// replies. Per-server (not the process-global registry) because the
/// tests boot several daemons in one process and their counters must not
/// mix. Request/reply counters are per [`FrameKind`](crate::FrameKind);
/// service time is a fixed-bucket latency histogram.
pub struct ServerStats {
    registry: Registry,
    accepted: Counter,
    served: Counter,
    errored: Counter,
    rejected_busy: Counter,
    crashed: Counter,
    deadline_expired: Counter,
    proto_errors: Counter,
    cache_memory_hits: Counter,
    cache_disk_loads: Counter,
    cache_store_loads: Counter,
    cache_trained: Counter,
    req_train: Counter,
    req_diagnose: Counter,
    req_status: Counter,
    req_shutdown: Counter,
    req_trace_put: Counter,
    req_trace_get: Counter,
    reply_trained: Counter,
    reply_diagnosis: Counter,
    reply_status: Counter,
    reply_bye: Counter,
    reply_busy: Counter,
    reply_error: Counter,
    reply_stored: Counter,
    reply_trace_data: Counter,
    uptime_ms: Gauge,
    queue_depth: Gauge,
    models_resident: Gauge,
    service_us: Histogram,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh stats over a fresh registry (all zeros).
    pub fn new() -> ServerStats {
        let registry = Registry::new();
        ServerStats {
            accepted: registry.counter("requests_accepted"),
            served: registry.counter("requests_served"),
            errored: registry.counter("requests_errored"),
            rejected_busy: registry.counter("requests_rejected_busy"),
            crashed: registry.counter("requests_crashed"),
            deadline_expired: registry.counter("requests_deadline_expired"),
            proto_errors: registry.counter("protocol_errors"),
            cache_memory_hits: registry.counter("cache_memory_hits"),
            cache_disk_loads: registry.counter("cache_disk_loads"),
            cache_store_loads: registry.counter("cache_store_loads"),
            cache_trained: registry.counter("cache_trained"),
            req_train: registry.counter("req_train"),
            req_diagnose: registry.counter("req_diagnose"),
            req_status: registry.counter("req_status"),
            req_shutdown: registry.counter("req_shutdown"),
            req_trace_put: registry.counter("req_trace_put"),
            req_trace_get: registry.counter("req_trace_get"),
            reply_trained: registry.counter("reply_trained"),
            reply_diagnosis: registry.counter("reply_diagnosis"),
            reply_status: registry.counter("reply_status"),
            reply_bye: registry.counter("reply_bye"),
            reply_busy: registry.counter("reply_busy"),
            reply_error: registry.counter("reply_error"),
            reply_stored: registry.counter("reply_stored"),
            reply_trace_data: registry.counter("reply_trace_data"),
            uptime_ms: registry.gauge("uptime_ms"),
            queue_depth: registry.gauge("queue_depth"),
            models_resident: registry.gauge("models_resident"),
            service_us: registry.histogram("service_us", &latency_bounds_us()),
            registry,
        }
    }

    /// The registry every counter lives in, so sibling subsystems (the
    /// corpus store's metrics) can join the same `STATUS` snapshot.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn bump_accepted(&self) {
        self.accepted.inc();
    }

    pub(crate) fn bump_served(&self) {
        self.served.inc();
    }

    pub(crate) fn bump_errored(&self) {
        self.errored.inc();
    }

    pub(crate) fn bump_rejected(&self) {
        self.rejected_busy.inc();
    }

    pub(crate) fn bump_crashed(&self) {
        self.crashed.inc();
    }

    pub(crate) fn bump_deadline_expired(&self) {
        self.deadline_expired.inc();
    }

    pub(crate) fn bump_proto_errors(&self) {
        self.proto_errors.inc();
    }

    /// Count one decoded request by frame kind.
    pub(crate) fn note_request(&self, request: &Request) {
        match request {
            Request::Train(_) => self.req_train.inc(),
            Request::Diagnose(..) => self.req_diagnose.inc(),
            Request::Status => self.req_status.inc(),
            Request::Shutdown => self.req_shutdown.inc(),
            Request::TracePut { .. } => self.req_trace_put.inc(),
            Request::TraceGet { .. } => self.req_trace_get.inc(),
        }
    }

    /// Count one written reply by frame kind.
    pub(crate) fn note_reply(&self, reply: &Reply) {
        match reply {
            Reply::Trained(_) => self.reply_trained.inc(),
            Reply::Diagnosis(_) => self.reply_diagnosis.inc(),
            Reply::StatusText(_) | Reply::StatusMetrics(..) => self.reply_status.inc(),
            Reply::Bye => self.reply_bye.inc(),
            Reply::Busy => self.reply_busy.inc(),
            Reply::Error(_) => self.reply_error.inc(),
            Reply::Stored(_) => self.reply_stored.inc(),
            Reply::TraceData(_) => self.reply_trace_data.inc(),
        }
    }

    pub(crate) fn note_cache(&self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Memory => self.cache_memory_hits.inc(),
            CacheOutcome::Disk => self.cache_disk_loads.inc(),
            CacheOutcome::Store => self.cache_store_loads.inc(),
            CacheOutcome::Trained => self.cache_trained.inc(),
        }
    }

    pub(crate) fn record_service(&self, elapsed: Duration) {
        self.service_us.observe(elapsed.as_micros() as u64);
    }

    /// Requests answered `BUSY`.
    pub fn rejected_busy(&self) -> u64 {
        self.rejected_busy.get()
    }

    /// Requests whose handler panicked (isolated; daemon kept serving).
    pub fn crashed(&self) -> u64 {
        self.crashed.get()
    }

    /// Model-cache hits (memory, model-dir disk, or corpus store — no
    /// retraining in any of them).
    pub fn cache_hits(&self) -> u64 {
        self.cache_memory_hits.get() + self.cache_disk_loads.get() + self.cache_store_loads.get()
    }

    /// Every metric as one snapshot — what a v2 `STATUS` reply carries.
    /// The point-in-time gauges (uptime, queue depth, resident models)
    /// are stamped first so the snapshot is self-contained.
    pub fn metrics_snapshot(
        &self,
        uptime: Duration,
        queue_len: usize,
        models_resident: usize,
    ) -> act_obs::MetricsSnapshot {
        self.uptime_ms.set(uptime.as_millis() as i64);
        self.queue_depth.set(queue_len as i64);
        self.models_resident.set(models_resident as i64);
        self.registry.snapshot()
    }

    /// Render the plain-text `STATUS` block: `key value` per line. The
    /// keys are the v1 wire surface — scripts grep them — so the legacy
    /// aggregates (`cache_hits` = memory + disk, `cache_misses` =
    /// trained-from-scratch) are preserved verbatim.
    pub fn render(&self, uptime: Duration, queue_len: usize, models_resident: usize) -> String {
        use std::fmt::Write as _;
        let service = self.service_us.snapshot();
        let (p50, p99) = (service.quantile(0.50), service.quantile(0.99));
        let mut out = String::from("act-serve status\n");
        let mut line = |k: &str, v: u64| writeln!(out, "{k} {v}").expect("string write");
        line("uptime_ms", uptime.as_millis() as u64);
        line("requests_accepted", self.accepted.get());
        line("requests_served", self.served.get());
        line("requests_errored", self.errored.get());
        line("requests_rejected_busy", self.rejected_busy.get());
        line("requests_crashed", self.crashed.get());
        line("requests_deadline_expired", self.deadline_expired.get());
        line("protocol_errors", self.proto_errors.get());
        line("cache_hits", self.cache_hits());
        line("cache_misses", self.cache_trained.get());
        line("models_resident", models_resident as u64);
        line("queue_depth", queue_len as u64);
        writeln!(out, "service_ms_p50 {:.3}", p50 as f64 / 1e3).expect("string write");
        writeln!(out, "service_ms_p99 {:.3}", p99 as f64 / 1e3).expect("string write");
        out
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send a `SHUTDOWN` frame) and then
/// [`Server::join`].
pub struct Server {
    stats: Arc<ServerStats>,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    started: Instant,
}

impl Server {
    /// Bind the listeners and spawn acceptors + workers.
    ///
    /// # Errors
    ///
    /// Fails when no listener is configured, a bind fails, or `workers` /
    /// `queue_depth` / `cache_capacity` is zero.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidInput, what.to_string());
        if cfg.workers == 0 {
            return Err(invalid("workers must be >= 1"));
        }
        if cfg.queue_depth == 0 {
            return Err(invalid("queue depth must be >= 1"));
        }
        if cfg.cache_capacity == 0 {
            return Err(invalid("cache capacity must be >= 1"));
        }
        if cfg.tcp_addr.is_none() && cfg.unix_path.is_none() {
            return Err(invalid("at least one of tcp_addr/unix_path is required"));
        }

        let stats = Arc::new(ServerStats::default());
        let queue = Arc::new(BoundedQueue::new(cfg.queue_depth));
        let mut cache = ModelCache::new(cfg.cache_capacity, cfg.model_dir.clone());
        if let Some(dir) = &cfg.corpus_dir {
            let corpus = act_store::Corpus::open_or_init(dir)
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corpus at {}: {e}", dir.display()),
                    )
                })?
                .with_registry(stats.registry());
            cache = cache.with_corpus(Arc::new(Mutex::new(corpus)));
        }
        let cache = Arc::new(cache);
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp_addr {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            threads.push(spawn_acceptor(
                "act-serve-accept-tcp",
                move || listener.accept().map(|(s, _)| Conn::Tcp(s)),
                queue.clone(),
                cache.clone(),
                stats.clone(),
                shutdown.clone(),
                cfg.io_timeout,
                Instant::now(),
            )?);
        }
        if let Some(path) = &cfg.unix_path {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            threads.push(spawn_acceptor(
                "act-serve-accept-unix",
                move || listener.accept().map(|(s, _)| Conn::Unix(s)),
                queue.clone(),
                cache.clone(),
                stats.clone(),
                shutdown.clone(),
                cfg.io_timeout,
                Instant::now(),
            )?);
        }
        threads.extend(spawn_workers(
            cfg.workers,
            queue.clone(),
            cache.clone(),
            stats.clone(),
            cfg.deadline,
        ));

        events().emit(
            Level::Info,
            "serve.start",
            format!(
                "daemon up: {} workers, queue depth {}, listening on {}",
                cfg.workers,
                cfg.queue_depth,
                match (&tcp_addr, &cfg.unix_path) {
                    (Some(a), Some(p)) => format!("{a} and {}", p.display()),
                    (Some(a), None) => a.to_string(),
                    (None, Some(p)) => p.display().to_string(),
                    (None, None) => unreachable!("validated above"),
                }
            ),
        );
        Ok(Server {
            stats,
            queue,
            cache,
            shutdown,
            threads,
            tcp_addr,
            unix_path: cfg.unix_path,
            started: Instant::now(),
        })
    }

    /// The bound TCP address (with the real port when `:0` was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Live counters (shared with the acceptors and workers).
    pub fn stats(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// The current `STATUS` block.
    pub fn status_text(&self) -> String {
        self.stats.render(self.started.elapsed(), self.queue.len(), self.cache.resident())
    }

    /// Begin graceful drain: stop accepting, let workers finish accepted
    /// jobs. Idempotent; also triggered by a `SHUTDOWN` frame.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether a drain has started.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Wait for the drain to finish (acceptors stopped, every accepted job
    /// answered). Removes the Unix socket file on the way out.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Spawn one acceptor thread over a nonblocking `accept` closure.
#[allow(clippy::too_many_arguments)]
fn spawn_acceptor(
    name: &str,
    mut accept: impl FnMut() -> io::Result<Conn> + Send + 'static,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
    started: Instant,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(name.to_string()).spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match accept() {
                Ok(conn) => {
                    handle_connection(conn, &queue, &cache, &stats, &shutdown, io_timeout, started)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                // Transient accept errors (e.g. aborted handshakes) must
                // not kill the acceptor.
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    })
}

/// Read one request frame and either answer inline, enqueue, or reject.
fn handle_connection(
    mut conn: Conn,
    queue: &BoundedQueue<Job>,
    cache: &ModelCache,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    io_timeout: Duration,
    started: Instant,
) {
    let _ = conn.set_timeouts(io_timeout);
    let (version, request) = match read_frame(&mut conn) {
        Ok(frame) => match Request::from_frame(&frame) {
            Ok(req) => (frame.version, req),
            Err(e) => {
                stats.bump_proto_errors();
                send_reply(
                    &mut conn,
                    frame.version,
                    &Reply::Error(format!("bad request: {e}")),
                    stats,
                );
                return;
            }
        },
        Err(e) => {
            stats.bump_proto_errors();
            send_reply(&mut conn, VERSION, &Reply::Error(format!("bad request: {e}")), stats);
            return;
        }
    };
    stats.note_request(&request);
    match request {
        // Always answerable, even with a saturated queue — that is the
        // point of handling them on the acceptor.
        Request::Status => {
            let text = stats.render(started.elapsed(), queue.len(), cache.resident());
            // v2 requesters get the metrics snapshot; v1 requesters get
            // the plain text block their decoder knows.
            let reply = if version >= 2 {
                let snap = stats.metrics_snapshot(started.elapsed(), queue.len(), cache.resident());
                Reply::StatusMetrics(text, snap)
            } else {
                Reply::StatusText(text)
            };
            send_reply(&mut conn, version, &reply, stats);
        }
        Request::Shutdown => {
            send_reply(&mut conn, version, &Reply::Bye, stats);
            events().emit(Level::Info, "serve.shutdown", "shutdown requested; draining");
            shutdown.store(true, Ordering::SeqCst);
            queue.close();
        }
        req @ (Request::Train(_)
        | Request::Diagnose(..)
        | Request::TracePut { .. }
        | Request::TraceGet { .. }) => {
            let job = Job { conn, version, request: req, accepted: Instant::now() };
            match queue.try_push(job) {
                Ok(()) => stats.bump_accepted(),
                Err(mut job) => {
                    stats.bump_rejected();
                    events().emit(Level::Debug, "serve.busy", "queue full: request rejected");
                    send_reply(&mut job.conn, version, &Reply::Busy, stats);
                }
            }
        }
    }
}

/// Count and write one reply, stamped with the requester's protocol
/// version so v1 clients never see a frame they cannot decode.
pub(crate) fn send_reply(conn: &mut Conn, version: u8, reply: &Reply, stats: &ServerStats) {
    stats.note_reply(reply);
    // A vanished client is its own problem; the daemon moves on.
    let _ = write_frame(conn, &reply.to_frame().with_version(version));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_render_has_the_required_counters() {
        let stats = ServerStats::default();
        stats.bump_accepted();
        stats.bump_served();
        stats.bump_rejected();
        stats.bump_crashed();
        stats.note_cache(CacheOutcome::Memory);
        stats.note_cache(CacheOutcome::Trained);
        stats.record_service(Duration::from_millis(4));
        let text = stats.render(Duration::from_secs(1), 3, 2);
        for needle in [
            "requests_served 1",
            "requests_rejected_busy 1",
            "requests_crashed 1",
            "cache_hits 1",
            "cache_misses 1",
            "queue_depth 3",
            "models_resident 2",
            "service_ms_p50",
            "service_ms_p99",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn metrics_snapshot_carries_counters_gauges_and_latency() {
        let stats = ServerStats::default();
        stats.note_request(&Request::Status);
        stats.note_request(&Request::Train(crate::proto::ModelSpec::new("fft")));
        stats.note_reply(&Reply::Busy);
        stats.bump_served();
        stats.note_cache(CacheOutcome::Disk);
        stats.record_service(Duration::from_micros(180));
        let snap = stats.metrics_snapshot(Duration::from_secs(2), 5, 1);
        assert_eq!(snap.counter("req_status"), Some(1));
        assert_eq!(snap.counter("req_train"), Some(1));
        assert_eq!(snap.counter("reply_busy"), Some(1));
        assert_eq!(snap.counter("requests_served"), Some(1));
        assert_eq!(snap.counter("cache_disk_loads"), Some(1));
        assert_eq!(snap.gauge("uptime_ms"), Some(2000));
        assert_eq!(snap.gauge("queue_depth"), Some(5));
        assert_eq!(snap.gauge("models_resident"), Some(1));
        let service = snap.histogram("service_us").expect("latency histogram");
        assert_eq!(service.count(), 1);
        // Identical after a wire round-trip — what a v2 STATUS carries.
        let bytes = snap.to_bytes();
        assert_eq!(act_obs::MetricsSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn start_rejects_degenerate_configs() {
        let bad = |f: fn(&mut ServeConfig)| {
            let mut cfg = ServeConfig::default();
            f(&mut cfg);
            Server::start(cfg).err().expect("config must be rejected")
        };
        assert!(bad(|c| c.workers = 0).to_string().contains("workers"));
        assert!(bad(|c| c.queue_depth = 0).to_string().contains("queue depth"));
        assert!(bad(|c| c.cache_capacity = 0).to_string().contains("cache"));
        assert!(bad(|c| {
            c.tcp_addr = None;
            c.unix_path = None;
        })
        .to_string()
        .contains("at least one"));
    }
}
