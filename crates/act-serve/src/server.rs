//! The daemon: listeners, acceptor threads, the bounded job queue, and the
//! counters block behind `STATUS`.
//!
//! Life of a request: an acceptor thread accepts the connection, reads one
//! frame, and either answers inline (`STATUS`, `SHUTDOWN` — always
//! serviceable, even with a full queue) or wraps the connection + request
//! into a [`Job`](crate::pool::Job) and `try_push`es it onto the bounded
//! queue. A full queue yields an immediate `BUSY` reply — the request was
//! *refused*, never accepted-then-dropped. Workers drain the queue (see
//! [`crate::pool`]); `SHUTDOWN` (or [`Server::shutdown`], which the CLI
//! wires to SIGINT) stops the acceptors, closes the queue, and lets the
//! workers finish every accepted job before [`Server::join`] returns.

use crate::cache::{CacheOutcome, ModelCache};
use crate::pool::{spawn_workers, Job};
use crate::proto::{read_frame, write_frame, Reply, Request};
use act_fleet::BoundedQueue;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long acceptors sleep between polls of an idle listener (they poll so
/// the shutdown flag is noticed without a wakeup connection).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A client connection, TCP or Unix-domain.
pub(crate) enum Conn {
    /// TCP (remote or loopback) client.
    Tcp(TcpStream),
    /// Unix-domain-socket client (local, no network stack).
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn set_timeouts(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
            Conn::Unix(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (`"127.0.0.1:0"` picks an ephemeral port). At
    /// least one of `tcp_addr`/`unix_path` must be set.
    pub tcp_addr: Option<String>,
    /// Unix-domain-socket path (a stale socket file is replaced).
    pub unix_path: Option<PathBuf>,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Directory for persisted models (`None` = in-memory cache only).
    pub model_dir: Option<PathBuf>,
    /// Models kept resident in the LRU cache.
    pub cache_capacity: usize,
    /// Per-request deadline, measured from acceptance; a job popped after
    /// its deadline is answered with an error instead of being processed.
    pub deadline: Duration,
    /// Socket read/write timeout for each connection.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            unix_path: None,
            workers: act_fleet::default_workers(),
            queue_depth: 64,
            model_dir: None,
            cache_capacity: 32,
            deadline: Duration::from_secs(120),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters behind `STATUS` — the daemon's first observability surface.
/// Everything is monotonic except the service-time reservoir (a capped
/// ring of recent samples for the percentiles).
#[derive(Debug, Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    served: AtomicU64,
    errored: AtomicU64,
    rejected_busy: AtomicU64,
    crashed: AtomicU64,
    deadline_expired: AtomicU64,
    proto_errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    service_us: Mutex<Vec<u64>>,
}

/// Most recent service-time samples kept for the percentiles.
const SERVICE_SAMPLES: usize = 4096;

impl ServerStats {
    pub(crate) fn bump_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_errored(&self) {
        self.errored.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_rejected(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_crashed(&self) {
        self.crashed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_proto_errors(&self) {
        self.proto_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_cache(&self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Memory | CacheOutcome::Disk => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed)
            }
            CacheOutcome::Trained => self.cache_misses.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub(crate) fn record_service(&self, elapsed: Duration) {
        let mut samples = self.service_us.lock().expect("stats lock");
        if samples.len() >= SERVICE_SAMPLES {
            // Overwrite round-robin; recency matters more than exactness.
            let at = self.served.load(Ordering::Relaxed) as usize % SERVICE_SAMPLES;
            samples[at] = elapsed.as_micros() as u64;
        } else {
            samples.push(elapsed.as_micros() as u64);
        }
    }

    /// Requests answered `BUSY`.
    pub fn rejected_busy(&self) -> u64 {
        self.rejected_busy.load(Ordering::Relaxed)
    }

    /// Requests whose handler panicked (isolated; daemon kept serving).
    pub fn crashed(&self) -> u64 {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Model-cache hits (memory or disk — no retraining either way).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Render the plain-text `STATUS` block: `key value` per line.
    pub fn render(&self, uptime: Duration, queue_len: usize, models_resident: usize) -> String {
        use std::fmt::Write as _;
        let (p50, p99) = {
            let samples = self.service_us.lock().expect("stats lock");
            percentiles(&samples)
        };
        let mut out = String::from("act-serve status\n");
        let mut line = |k: &str, v: u64| writeln!(out, "{k} {v}").expect("string write");
        line("uptime_ms", uptime.as_millis() as u64);
        line("requests_accepted", self.accepted.load(Ordering::Relaxed));
        line("requests_served", self.served.load(Ordering::Relaxed));
        line("requests_errored", self.errored.load(Ordering::Relaxed));
        line("requests_rejected_busy", self.rejected_busy.load(Ordering::Relaxed));
        line("requests_crashed", self.crashed.load(Ordering::Relaxed));
        line("requests_deadline_expired", self.deadline_expired.load(Ordering::Relaxed));
        line("protocol_errors", self.proto_errors.load(Ordering::Relaxed));
        line("cache_hits", self.cache_hits.load(Ordering::Relaxed));
        line("cache_misses", self.cache_misses.load(Ordering::Relaxed));
        line("models_resident", models_resident as u64);
        line("queue_depth", queue_len as u64);
        writeln!(out, "service_ms_p50 {:.3}", p50 as f64 / 1e3).expect("string write");
        writeln!(out, "service_ms_p99 {:.3}", p99 as f64 / 1e3).expect("string write");
        out
    }
}

/// (p50, p99) of `samples` in microseconds; zeros when empty.
fn percentiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    (at(0.50), at(0.99))
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send a `SHUTDOWN` frame) and then
/// [`Server::join`].
pub struct Server {
    stats: Arc<ServerStats>,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    started: Instant,
}

impl Server {
    /// Bind the listeners and spawn acceptors + workers.
    ///
    /// # Errors
    ///
    /// Fails when no listener is configured, a bind fails, or `workers` /
    /// `queue_depth` / `cache_capacity` is zero.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidInput, what.to_string());
        if cfg.workers == 0 {
            return Err(invalid("workers must be >= 1"));
        }
        if cfg.queue_depth == 0 {
            return Err(invalid("queue depth must be >= 1"));
        }
        if cfg.cache_capacity == 0 {
            return Err(invalid("cache capacity must be >= 1"));
        }
        if cfg.tcp_addr.is_none() && cfg.unix_path.is_none() {
            return Err(invalid("at least one of tcp_addr/unix_path is required"));
        }

        let stats = Arc::new(ServerStats::default());
        let queue = Arc::new(BoundedQueue::new(cfg.queue_depth));
        let cache = Arc::new(ModelCache::new(cfg.cache_capacity, cfg.model_dir.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp_addr {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            threads.push(spawn_acceptor(
                "act-serve-accept-tcp",
                move || listener.accept().map(|(s, _)| Conn::Tcp(s)),
                queue.clone(),
                cache.clone(),
                stats.clone(),
                shutdown.clone(),
                cfg.io_timeout,
                Instant::now(),
            )?);
        }
        if let Some(path) = &cfg.unix_path {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            threads.push(spawn_acceptor(
                "act-serve-accept-unix",
                move || listener.accept().map(|(s, _)| Conn::Unix(s)),
                queue.clone(),
                cache.clone(),
                stats.clone(),
                shutdown.clone(),
                cfg.io_timeout,
                Instant::now(),
            )?);
        }
        threads.extend(spawn_workers(
            cfg.workers,
            queue.clone(),
            cache.clone(),
            stats.clone(),
            cfg.deadline,
        ));

        Ok(Server {
            stats,
            queue,
            cache,
            shutdown,
            threads,
            tcp_addr,
            unix_path: cfg.unix_path,
            started: Instant::now(),
        })
    }

    /// The bound TCP address (with the real port when `:0` was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Live counters (shared with the acceptors and workers).
    pub fn stats(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// The current `STATUS` block.
    pub fn status_text(&self) -> String {
        self.stats.render(self.started.elapsed(), self.queue.len(), self.cache.resident())
    }

    /// Begin graceful drain: stop accepting, let workers finish accepted
    /// jobs. Idempotent; also triggered by a `SHUTDOWN` frame.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether a drain has started.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Wait for the drain to finish (acceptors stopped, every accepted job
    /// answered). Removes the Unix socket file on the way out.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Spawn one acceptor thread over a nonblocking `accept` closure.
#[allow(clippy::too_many_arguments)]
fn spawn_acceptor(
    name: &str,
    mut accept: impl FnMut() -> io::Result<Conn> + Send + 'static,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
    started: Instant,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(name.to_string()).spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match accept() {
                Ok(conn) => {
                    handle_connection(conn, &queue, &cache, &stats, &shutdown, io_timeout, started)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                // Transient accept errors (e.g. aborted handshakes) must
                // not kill the acceptor.
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    })
}

/// Read one request frame and either answer inline, enqueue, or reject.
fn handle_connection(
    mut conn: Conn,
    queue: &BoundedQueue<Job>,
    cache: &ModelCache,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    io_timeout: Duration,
    started: Instant,
) {
    let _ = conn.set_timeouts(io_timeout);
    let request = match read_frame(&mut conn).and_then(|f| Request::from_frame(&f)) {
        Ok(req) => req,
        Err(e) => {
            stats.bump_proto_errors();
            let _ = write_frame(&mut conn, &Reply::Error(format!("bad request: {e}")).to_frame());
            return;
        }
    };
    match request {
        // Always answerable, even with a saturated queue — that is the
        // point of handling them on the acceptor.
        Request::Status => {
            let text = stats.render(started.elapsed(), queue.len(), cache.resident());
            let _ = write_frame(&mut conn, &Reply::StatusText(text).to_frame());
        }
        Request::Shutdown => {
            let _ = write_frame(&mut conn, &Reply::Bye.to_frame());
            shutdown.store(true, Ordering::SeqCst);
            queue.close();
        }
        req @ (Request::Train(_) | Request::Diagnose(..)) => {
            let job = Job { conn, request: req, accepted: Instant::now() };
            match queue.try_push(job) {
                Ok(()) => stats.bump_accepted(),
                Err(mut job) => {
                    stats.bump_rejected();
                    let _ = write_frame(&mut job.conn, &Reply::Busy.to_frame());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_render_has_the_required_counters() {
        let stats = ServerStats::default();
        stats.bump_accepted();
        stats.bump_served();
        stats.bump_rejected();
        stats.bump_crashed();
        stats.note_cache(CacheOutcome::Memory);
        stats.note_cache(CacheOutcome::Trained);
        stats.record_service(Duration::from_millis(4));
        let text = stats.render(Duration::from_secs(1), 3, 2);
        for needle in [
            "requests_served 1",
            "requests_rejected_busy 1",
            "requests_crashed 1",
            "cache_hits 1",
            "cache_misses 1",
            "queue_depth 3",
            "models_resident 2",
            "service_ms_p50",
            "service_ms_p99",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<u64> = (1..=100).collect();
        let (p50, p99) = percentiles(&samples);
        assert_eq!(p50, 51);
        assert_eq!(p99, 99);
        assert_eq!(percentiles(&[]), (0, 0));
    }

    #[test]
    fn start_rejects_degenerate_configs() {
        let bad = |f: fn(&mut ServeConfig)| {
            let mut cfg = ServeConfig::default();
            f(&mut cfg);
            Server::start(cfg).err().expect("config must be rejected")
        };
        assert!(bad(|c| c.workers = 0).to_string().contains("workers"));
        assert!(bad(|c| c.queue_depth = 0).to_string().contains("queue depth"));
        assert!(bad(|c| c.cache_capacity = 0).to_string().contains("cache"));
        assert!(bad(|c| {
            c.tcp_addr = None;
            c.unix_path = None;
        })
        .to_string()
        .contains("at least one"));
    }
}
